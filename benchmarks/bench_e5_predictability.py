"""E5 — Table: predictability metrics of the discovered policies.

The second evaluation axis: evict(a) and fill(a) per policy (Reineke et
al.'s metrics), computed exactly by adversarial search.  Known closed
forms are asserted: evict(LRU) = a, evict(FIFO) = 2a - 1,
evict(PLRU) = (a/2) log2 a + 1; the one-bit and age-based policies have
unbounded fill, and random replacement is not analysable at all.
"""

import math

import pytest

from repro.eval import predictability_of_policy
from repro.policies import make_policy
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced

POLICIES = ["lru", "fifo", "plru", "bitplru", "nru", "srrip", "qlru_h00_m1", "random"]
WAYS = [2, 4, 8]


def _metric_cell(task: tuple[str, int]):
    """One (policy, ways) predictability computation (runner cell)."""
    name, ways = task
    return predictability_of_policy(name, make_policy(name, ways))


@traced("e5.metrics")
def compute_metrics(jobs: int = 0):
    cells = [(name, ways) for ways in WAYS for name in POLICIES]
    runner = ExperimentRunner(jobs=jobs)
    return runner.map(
        _metric_cell, cells, labels=[f"{name}/{ways}w" for name, ways in cells]
    )


def test_e5_predictability(benchmark, save_result, jobs):
    results = benchmark.pedantic(compute_metrics, args=(jobs,), rounds=1, iterations=1)
    rows = [
        [
            r.policy,
            r.ways,
            r.evict if r.evict is not None else "-",
            r.fill if r.fill is not None else "-",
            r.note,
        ]
        for r in results
    ]
    table = format_table(
        ["policy", "ways", "evict", "fill", "note"],
        rows,
        title="E5: predictability metrics (smaller = friendlier to WCET analysis)",
    )
    save_result(
        "e5_predictability",
        table,
        data={"columns": ["policy", "ways", "evict", "fill", "note"], "rows": rows},
        params={"policies": POLICIES, "ways": WAYS, "jobs": jobs},
    )

    by_key = {(r.policy, r.ways): r for r in results}
    for ways in WAYS:
        assert by_key[("lru", ways)].evict == ways
        assert by_key[("lru", ways)].fill == 2 * ways
        assert by_key[("fifo", ways)].evict == 2 * ways - 1
        expected_plru = ways // 2 * int(math.log2(ways)) + 1
        assert by_key[("plru", ways)].evict == expected_plru
        assert by_key[("random", ways)].evict is None
    # One-bit policies: bounded evict, unbounded fill.
    assert by_key[("bitplru", 8)].evict is not None
    assert by_key[("bitplru", 8)].fill is None
