"""E11 (extension) — Table: provable hits per policy (WCET analysis).

The predictability metrics of E5 feed an actual analysis here: the
minimum-life-span construction turns the LRU must/may analysis into a
sound analysis for any deterministic policy.  On a loop nest whose
observed hit ratio is identical across policies, the *provable* hit
fraction collapses with the policy's mls — LRU > PLRU > bit-PLRU >
FIFO — which is the paper's predictability argument end to end.
"""

import pytest

from repro.analysis import analyze, check_soundness, generic_analysis, simple_loop
from repro.analysis.generic import mls_metric_policy
from repro.cache import Cache, CacheConfig
from repro.policies import make_policy
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced

CONFIG = CacheConfig("L1", 1024, 4)  # 4 sets, 4-way
POLICIES = ["lru", "plru", "slru", "bitplru", "nru", "fifo"]


def build_program():
    stride = CONFIG.way_size
    preheader = [0, stride, 2 * stride, 64]
    body = [0, stride, 2 * stride, 64, 64 + stride]
    return simple_loop(preheader, body)


def observed_hit_ratio(program, policy_name: str, paths: int = 30) -> float:
    hits = accesses = 0
    for path in program.random_paths(paths, seed=1):
        cache = Cache(CONFIG, policy_name)
        for block_name in path:
            for address in program.blocks[block_name].accesses:
                accesses += 1
                hits += 1 if cache.access(address).hit else 0
    return hits / accesses if accesses else 0.0


def _policy_cell(name: str):
    """Analyse + soundness-check one policy on the loop nest (runner cell)."""
    program = build_program()
    policy = make_policy(name, CONFIG.ways)
    mls = mls_metric_policy(policy)
    result = (
        analyze(program, CONFIG)
        if name == "lru"
        else generic_analysis(program, CONFIG, policy)
    )
    violations = check_soundness(program, CONFIG, result, policy=name, paths=25)
    assert violations == [], (name, violations)
    row = [
        name,
        mls if mls is not None else "-",
        round(result.guaranteed_hit_fraction, 3),
        round(observed_hit_ratio(program, name), 3),
    ]
    return row, result.guaranteed_hit_fraction


@traced("e11.wcet")
def compute_rows(jobs: int = 0):
    runner = ExperimentRunner(jobs=jobs)
    cells = runner.map(_policy_cell, POLICIES, labels=list(POLICIES))
    rows = [row for row, _fraction in cells]
    fractions = {name: fraction for name, (_row, fraction) in zip(POLICIES, cells)}
    return rows, fractions


def test_e11_provable_hits(benchmark, save_result, jobs):
    rows, fractions = benchmark.pedantic(compute_rows, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["policy", "mls", "proven hit fraction", "observed hit ratio"],
        rows,
        title="E11: provable vs observed hits on a loop nest (4-way)",
    )
    save_result(
        "e11_wcet",
        table,
        data={
            "columns": ["policy", "mls", "proven hit fraction", "observed hit ratio"],
            "rows": rows,
            "fractions": fractions,
        },
        params={"policies": POLICIES, "config": CONFIG.describe(), "jobs": jobs},
    )
    # The predictability ordering: LRU proves the most, FIFO nothing.
    assert fractions["lru"] >= fractions["plru"] >= fractions["bitplru"]
    assert fractions["bitplru"] > fractions["fifo"]
    assert fractions["fifo"] == 0.0
    assert fractions["lru"] > 0.3


def test_e11_analysis_timing(benchmark):
    """Timing kernel: one full must/may analysis of the loop nest."""
    program = build_program()
    result = benchmark(lambda: analyze(program, CONFIG))
    assert result.classifications
