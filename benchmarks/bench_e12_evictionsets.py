"""E12 (extension) — Table: eviction-set discovery on a sliced LLC.

The paper's set targeting is arithmetic; sliced LLCs (Sandy Bridge
onwards) hash the set index, so conflicting addresses must be found by
group testing.  This experiment discovers minimal eviction sets on a
simulated hash-indexed cache and reports the cost, for several
associativities, verifying against the simulator's ground-truth mapping
— exactness the real attacks can only infer statistically.
"""

import pytest

from repro.cache import CacheConfig
from repro.core.evictionsets import PlatformEvictionTester, find_eviction_set
from repro.hardware import HardwarePlatform, LevelSpec, ProcessorSpec
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced

CASES = [
    (8 * 1024, 4),
    (32 * 1024, 8),
    (64 * 1024, 16),
]


def discover(task: tuple[int, int]):
    size, ways = task
    spec = ProcessorSpec(
        name=f"sliced-{ways}w",
        description="hashed LLC testbench",
        levels=(
            LevelSpec(CacheConfig("LLC", size, ways, index_hash="xor-fold"), "lru"),
        ),
    )
    platform = HardwarePlatform(spec)
    buffer = platform.allocate(1 << 23)
    # Candidate pool: enough lines that the victim's set gets >= ways.
    num_sets = platform.level_config("LLC").num_sets
    pool_lines = max(4 * ways * num_sets, 1024)
    pool = [buffer.base + k * 64 for k in range(pool_lines)]
    victim = buffer.base + (1 << 22)
    tester = PlatformEvictionTester(platform, "LLC")
    found = find_eviction_set(tester, victim, pool, target_size=ways)
    codec = platform.hierarchy.level("LLC").codec
    victim_set = codec.decompose(platform.translate(victim)).set_index
    member_sets = {codec.decompose(platform.translate(a)).set_index for a in found}
    return {
        "ways": ways,
        "sets": num_sets,
        "pool": len(pool),
        "found": len(found),
        "tests": tester.tests,
        "loads": platform.loads_performed,
        "exact": member_sets == {victim_set},
    }


@traced("e12.evictionsets")
def run_all(jobs: int = 0):
    runner = ExperimentRunner(jobs=jobs)
    return runner.map(
        discover, CASES, labels=[f"{size // 1024}KiB/{ways}w" for size, ways in CASES]
    )


def test_e12_eviction_set_discovery(benchmark, save_result, jobs):
    results = benchmark.pedantic(run_all, args=(jobs,), rounds=1, iterations=1)
    rows = [
        [
            r["ways"],
            r["sets"],
            r["pool"],
            r["found"],
            r["tests"],
            r["loads"],
            "yes" if r["exact"] else "NO",
        ]
        for r in results
    ]
    table = format_table(
        ["ways", "sets", "pool lines", "set size found", "tests", "loads", "all in victim set"],
        rows,
        title="E12: minimal eviction sets on a hash-indexed (sliced) cache",
    )
    save_result(
        "e12_evictionsets",
        table,
        data={"cases": results},
        params={"cases": [list(case) for case in CASES], "jobs": jobs},
    )
    for r in results:
        assert r["found"] == r["ways"]  # LRU: minimal set = associativity
        assert r["exact"]
