"""BENCH — cold versus warm automaton compilation via the artifact store.

The acceptance benchmark for :mod:`repro.kernels.store`: every
deterministic E3 policy is resolved at 8 ways twice against a fresh
store directory — once cold (BFS compile + ``expand_all`` + persist) and
once warm (memory caches dropped, automaton deserialized from disk).
The warm pass must be at least 5x faster in total, and every warm
resolution must be a disk load (``kernel.compile.miss == 0``).  Results
land in ``benchmarks/results/bench_compile_cache.txt`` with metrics and
ledger sidecars, plus the ``BENCH_compile_cache.json`` trajectory point
(an ExperimentResult envelope, validated in CI by
``python -m repro.obs.result``).

The store directory is a per-run temp dir so the cold pass is genuinely
cold regardless of any populated repo-local ``.repro-cache/``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.kernels import clear_compile_cache, compiled_for_factory
from repro.kernels import store
from repro.obs import metrics as obs_metrics
from repro.obs.result import ExperimentResult
from repro.util.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: The deterministic (compilable) slice of the E3 policy set.
POLICIES = ["lru", "fifo", "plru", "bitplru", "nru", "srrip", "lip"]
WAYS = 8


def _resolve_all(policies):
    """Resolve + persist each policy from empty memory caches.

    Returns (per-policy report, total seconds).  ``store.warm`` is the
    same warm point the parallel runner and the ``cache warm`` CLI use.
    """
    clear_compile_cache()
    start = time.perf_counter()
    report = store.warm((name, (), WAYS) for name in policies)
    return report, time.perf_counter() - start


def test_bench_compile_cache_cold_vs_warm(save_result, tmp_path):
    """Acceptance: a populated store makes compilation >= 5x faster."""
    store.set_cache_dir(tmp_path / "repro-cache")
    try:
        obs_metrics.DEFAULT.reset()
        cold_report, cold_seconds = _resolve_all(POLICIES)
        cold_counters = obs_metrics.DEFAULT.snapshot()["counters"]

        obs_metrics.DEFAULT.reset()
        warm_report, warm_seconds = _resolve_all(POLICIES)
        warm_counters = obs_metrics.DEFAULT.snapshot()["counters"]

        # Warm resolutions must all be disk loads, and frozen automata
        # must agree with their BFS-built originals state for state.
        assert warm_counters.get("kernel.compile.miss", 0) == 0
        assert warm_counters.get("kernel.compile.load", 0) == len(POLICIES)
        for name, cold, warm in zip(POLICIES, cold_report, warm_report):
            assert cold["status"] == "persisted", (name, cold)
            assert warm["states"] == cold["states"], name
            compiled = compiled_for_factory(name, (), WAYS)
            assert compiled is not None and compiled.frozen
    finally:
        store.set_cache_dir(None)
        clear_compile_cache()

    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    rows = [
        [
            cold["policy"],
            cold["states"],
            f"{cold['seconds']:.3f}",
            f"{warm['seconds']:.3f}",
            f"{cold['seconds'] / warm['seconds']:.1f}x" if warm["seconds"] else "-",
        ]
        for cold, warm in zip(cold_report, warm_report)
    ]
    rows.append(["TOTAL", "-", f"{cold_seconds:.3f}", f"{warm_seconds:.3f}",
                 f"{speedup:.1f}x"])
    table = format_table(
        ["policy", "states", "cold s", "warm s", "speedup"],
        rows,
        title=f"BENCH compile cache: cold BFS vs warm disk load @ {WAYS} ways",
    )

    data = {
        "policies": {
            cold["policy"]: {
                "states": cold["states"],
                "cold_seconds": cold["seconds"],
                "warm_seconds": warm["seconds"],
            }
            for cold, warm in zip(cold_report, warm_report)
        },
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "cold_counters": {
            key: value for key, value in cold_counters.items()
            if key.startswith("kernel.compile.")
        },
        "warm_counters": {
            key: value for key, value in warm_counters.items()
            if key.startswith("kernel.compile.")
        },
        "schema_version": store.SCHEMA_VERSION,
    }
    params = {"policies": POLICIES, "ways": WAYS}
    save_result("bench_compile_cache", table, data=data, params=params)

    point = ExperimentResult(
        name="bench_compile_cache",
        params=json.loads(json.dumps(params, default=str)),
        data=json.loads(json.dumps(data, default=str)),
        metrics=obs_metrics.DEFAULT.snapshot(),
    )
    trajectory = RESULTS_DIR / "BENCH_compile_cache.json"
    trajectory.write_text(point.to_json(indent=2) + "\n")
    print(f"[trajectory point saved to {trajectory}]")

    assert speedup >= 5.0, (
        f"warm store only {speedup:.1f}x faster than cold compilation "
        f"({cold_seconds:.3f}s -> {warm_seconds:.3f}s)"
    )
