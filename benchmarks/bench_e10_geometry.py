"""E10 (extension) — Table: measured cache geometries.

Companion to the policy tables: the geometry of each catalog L1 is
re-measured from scratch (line size, exact capacity, associativity, set
count) and must match the data sheet — including Atom's non-power-of-two
24 KiB, 6-way configuration.
"""

import pytest

from repro.core.geometry import GeometryInference, PlatformAddressOracle
from repro.hardware import PROCESSORS, HardwarePlatform, get_processor
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced


def _geometry_cell(name: str) -> list[object]:
    """Measure one processor's L1 geometry (runner cell)."""
    spec = get_processor(name)
    platform = HardwarePlatform(spec, seed=0)
    truth = platform.level_config("L1")
    oracle = PlatformAddressOracle(platform, "L1")
    finding = GeometryInference(oracle).infer()
    match = (
        finding.total_size == truth.size
        and finding.ways == truth.ways
        and finding.line_size == truth.line_size
    )
    return [
        name,
        finding.describe(),
        truth.describe().split(": ", 1)[1],
        "yes" if match else "NO",
    ]


@traced("e10.geometry")
def measure_all(jobs: int = 0):
    names = sorted(PROCESSORS)
    runner = ExperimentRunner(jobs=jobs)
    return runner.map(_geometry_cell, names, labels=names)


def test_e10_geometry(benchmark, save_result, jobs):
    rows = benchmark.pedantic(measure_all, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["processor", "measured L1 geometry", "data sheet", "match"],
        rows,
        title="E10: measured vs. data-sheet L1 geometries",
    )
    save_result(
        "e10_geometry",
        table,
        data={
            "columns": ["processor", "measured L1 geometry", "data sheet", "match"],
            "rows": rows,
        },
        params={"processors": sorted(PROCESSORS), "jobs": jobs},
    )
    assert all(row[3] == "yes" for row in rows)


def test_e10_geometry_timing(benchmark):
    """Timing kernel: one full L1 geometry inference."""
    platform = HardwarePlatform(get_processor("nehalem-like"), seed=0)

    def run():
        oracle = PlatformAddressOracle(platform, "L1")
        return GeometryInference(oracle).infer()

    finding = benchmark(run)
    assert finding.total_size == 32 * 1024
