"""E9 (extension) — Table: adaptivity survey of last-level caches.

Post-paper work showed that Ivy Bridge-era L3 caches *adapt* through set
dueling, breaking the one-policy-per-cache assumption.  This extension
experiment samples sets of each catalog L3 (plus one known-adaptive
stand-in) and classifies them: a fixed-policy cache classifies uniformly,
a dueling cache exposes deterministic leader sets amid nondeterministic
followers.
"""

import pytest

from repro.core.adaptive import AdaptivitySurvey
from repro.hardware import HardwarePlatform, HardwareSetOracle, get_processor
from repro.policies.dueling import DuelController
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced

#: (processor, level, sampled set indices are chosen below)
TARGETS = [
    ("sandybridge-like", "L3"),
    ("haswell-adaptive-like", "L3"),
]


def _survey_cell(task: tuple[str, str]):
    """Survey one (processor, level) target on a fresh platform."""
    processor, level = task
    spec = get_processor(processor)
    platform = HardwarePlatform(spec, seed=0)
    config = platform.level_config(level)
    controller = DuelController(config.num_sets)
    leaders = [s for s in range(config.num_sets) if controller.is_primary_leader(s)]
    seconds = [s for s in range(config.num_sets) if controller.is_secondary_leader(s)]
    # Sample: one true primary leader, one secondary, four followers.
    sample = [leaders[0], seconds[0]] + [5, 33, 301, 523]
    survey = AdaptivitySurvey(
        lambda set_index: HardwareSetOracle(
            platform, level, set_index=set_index, max_blocks=128
        ),
        ways=config.ways,
        level=level,
    )
    report = survey.survey(sample)
    rows = []
    for classification in report.classifications:
        rows.append(
            [
                processor,
                level,
                classification.set_index,
                classification.kind,
                classification.policy_name or "-",
            ]
        )
    rows.append([processor, level, "->", report.summary(), ""])
    return rows, report


@traced("e9.survey")
def survey_all(jobs: int = 0):
    runner = ExperimentRunner(jobs=jobs)
    surveyed = runner.map(
        _survey_cell, TARGETS, labels=[f"{proc}/{level}" for proc, level in TARGETS]
    )
    rows = []
    verdicts = {}
    for (processor, _level), (cell_rows, report) in zip(TARGETS, surveyed):
        rows.extend(cell_rows)
        verdicts[processor] = report
    return rows, verdicts


def test_e9_adaptivity_survey(benchmark, save_result, jobs):
    rows, verdicts = benchmark.pedantic(survey_all, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["processor", "level", "set", "kind", "policy"],
        rows,
        title="E9: per-set classification and adaptivity verdicts",
    )
    save_result(
        "e9_adaptive",
        table,
        data={
            "columns": ["processor", "level", "set", "kind", "policy"],
            "rows": rows,
            "verdicts": {
                processor: report.summary()
                for processor, report in verdicts.items()
            },
        },
        params={"targets": TARGETS, "jobs": jobs},
    )
    # The fixed bit-PLRU L3 must classify uniformly ...
    assert not verdicts["sandybridge-like"].adaptive
    assert verdicts["sandybridge-like"].fixed_policy == "bitplru"
    # ... and the DIP L3 must be flagged, with its primary leader found.
    adaptive = verdicts["haswell-adaptive-like"]
    assert adaptive.adaptive
    leader_kinds = {c.kind for c in adaptive.suspected_leaders()}
    assert "named" in leader_kinds
