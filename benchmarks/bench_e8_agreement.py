"""E8 — Table: behavioural agreement between policies.

Random access streams barely separate replacement policies — pairwise
hit/miss agreement sits far above what naive black-box testing can
exploit, which is why the paper crafts targeted access sequences.  The
companion table reports the *shortest* distinguishing probe per policy
pair (via exhaustive search), showing how little separates e.g. PLRU
from LRU.
"""

import pytest

from repro.core.distinguish import bfs_distinguishing_sequence
from repro.eval import agreement_matrix
from repro.policies import make_policy
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced

POLICIES = ["lru", "fifo", "plru", "bitplru", "nru", "srrip"]


@traced("e8.agreement")
def compute_agreement(jobs: int = 0):
    policies = {name: make_policy(name, 8) for name in POLICIES}
    return agreement_matrix(policies, accesses=30_000, seed=0, jobs=jobs)


def test_e8_agreement_matrix(benchmark, save_result, jobs):
    matrix = benchmark.pedantic(compute_agreement, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["policy"] + list(matrix.policies),
        matrix.rows(),
        title="E8a: pairwise hit/miss agreement on one random stream (8-way)",
    )
    save_result(
        "e8_agreement",
        table,
        data={
            "columns": ["policy"] + list(matrix.policies),
            "rows": matrix.rows(),
        },
        params={"policies": POLICIES, "ways": 8, "accesses": 30_000, "jobs": jobs},
    )
    names = matrix.policies
    for name in names:
        assert matrix.value(name, name) == 1.0
    # Every distinct pair agrees most of the time yet never perfectly.
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            assert 0.5 < matrix.value(first, second) < 1.0
    # PLRU tracks LRU more closely than FIFO does.
    assert matrix.value("plru", "lru") > matrix.value("fifo", "lru")


def _distinguisher_cell(task: tuple[str, str]) -> list[object]:
    """Shortest distinguishing probe for one policy pair (runner cell)."""
    first, second = task
    probe = bfs_distinguishing_sequence(
        make_policy(first, 4), make_policy(second, 4), max_depth=10
    )
    return [first, second, len(probe) if probe else "> 10", probe or ""]


@traced("e8.distinguishers")
def shortest_distinguishers(jobs: int = 0):
    pairs = [
        (first, second)
        for i, first in enumerate(POLICIES)
        for second in POLICIES[i + 1 :]
    ]
    runner = ExperimentRunner(jobs=jobs)
    return runner.map(
        _distinguisher_cell, pairs, labels=[f"{a}-vs-{b}" for a, b in pairs]
    )


def test_e8_shortest_distinguishing_probes(benchmark, save_result, jobs):
    rows = benchmark.pedantic(
        shortest_distinguishers, args=(jobs,), rounds=1, iterations=1
    )
    table = format_table(
        ["policy A", "policy B", "probe length", "probe"],
        rows,
        title="E8b: shortest distinguishing probe per policy pair (4-way)",
    )
    save_result(
        "e8_distinguishers",
        table,
        data={
            "columns": ["policy A", "policy B", "probe length", "probe"],
            "rows": rows,
        },
        params={"policies": POLICIES, "ways": 4, "max_depth": 10, "jobs": jobs},
    )
    lengths = {
        (row[0], row[1]): row[2] for row in rows if isinstance(row[2], int)
    }
    # Every pair of these 4-way policies is separable within 10 accesses.
    assert len(lengths) == len(rows)
    assert all(length <= 10 for length in lengths.values())
