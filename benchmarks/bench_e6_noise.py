"""E6 — Figure: inference success rate versus counter noise.

Hardware performance counters over-count; the paper repeats every
measurement and aggregates.  This experiment sweeps the spurious-count
rate and compares single-shot inference against 7-fold repetition with
min-aggregation (spurious events only ever add counts).  Expected shape:
single-shot collapses quickly; repetition stays at 100% across the
realistic range.
"""

import pytest

from repro.cache import CacheConfig
from repro.core import InferenceConfig, VotingOracle, reverse_engineer
from repro.hardware import (
    HardwarePlatform,
    HardwareSetOracle,
    LevelSpec,
    NoiseModel,
    ProcessorSpec,
)
from repro.util.tables import format_table

RATES = [0.0, 0.002, 0.005, 0.01, 0.02, 0.05]
SEEDS = [1, 2, 3]
CONFIG = InferenceConfig(verify_sequences=8, verify_length=40, verify_window=4)


def noisy_processor(rate: float) -> ProcessorSpec:
    return ProcessorSpec(
        name=f"noisy-{rate:g}",
        description="PLRU L1 with noisy counters",
        levels=(LevelSpec(CacheConfig("L1", 4 * 1024, 4), "plru"),),
        noise=NoiseModel(counter_noise_rate=rate),
    )


def attempt(rate: float, repetitions: int, seed: int) -> bool:
    platform = HardwarePlatform(noisy_processor(rate), seed=seed)
    oracle = HardwareSetOracle(platform, "L1", max_blocks=96)
    if repetitions > 1:
        oracle = VotingOracle(oracle, repetitions=repetitions, aggregate="min")
    finding = reverse_engineer(oracle, inference_config=CONFIG)
    return finding.policy_name == "plru"


def run_sweep():
    rows = []
    for rate in RATES:
        single = sum(attempt(rate, 1, seed) for seed in SEEDS)
        repeated = sum(attempt(rate, 7, seed) for seed in SEEDS)
        rows.append(
            [f"{rate:g}", f"{single}/{len(SEEDS)}", f"{repeated}/{len(SEEDS)}"]
        )
    return rows


def test_e6_noise_robustness(benchmark, save_result):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        ["noise rate", "single shot", "7x min-aggregated"],
        rows,
        title="E6: correct inferences of a PLRU L1 under counter noise",
    )
    save_result("e6_noise", table)
    by_rate = {row[0]: row for row in rows}
    # Noise-free: both perfect.
    assert by_rate["0"][1] == by_rate["0"][2] == f"{len(SEEDS)}/{len(SEEDS)}"
    # Repetition keeps every noisy rate perfect.
    for rate in RATES:
        assert by_rate[f"{rate:g}"][2] == f"{len(SEEDS)}/{len(SEEDS)}"
    # Single shot degrades somewhere in the swept range.
    assert any(row[1] != f"{len(SEEDS)}/{len(SEEDS)}" for row in rows)
