"""E6 — Figure: inference success rate versus counter noise.

Hardware performance counters over-count; the paper repeats every
measurement and aggregates.  This experiment sweeps the spurious-count
rate and compares single-shot inference against 7-fold repetition with
min-aggregation (spurious events only ever add counts).  Expected shape:
single-shot collapses quickly; repetition stays at 100% across the
realistic range.
"""

import pytest

from repro.cache import CacheConfig
from repro.core import InferenceConfig, VotingOracle, reverse_engineer
from repro.hardware import (
    HardwarePlatform,
    HardwareSetOracle,
    LevelSpec,
    NoiseModel,
    ProcessorSpec,
)
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced

RATES = [0.0, 0.002, 0.005, 0.01, 0.02, 0.05]
SEEDS = [1, 2, 3]
CONFIG = InferenceConfig(verify_sequences=8, verify_length=40, verify_window=4)


def noisy_processor(rate: float) -> ProcessorSpec:
    return ProcessorSpec(
        name=f"noisy-{rate:g}",
        description="PLRU L1 with noisy counters",
        levels=(LevelSpec(CacheConfig("L1", 4 * 1024, 4), "plru"),),
        noise=NoiseModel(counter_noise_rate=rate),
    )


def attempt(task: tuple[float, int, int]) -> bool:
    """One (rate, repetitions, seed) inference attempt (runner cell)."""
    rate, repetitions, seed = task
    platform = HardwarePlatform(noisy_processor(rate), seed=seed)
    oracle = HardwareSetOracle(platform, "L1", max_blocks=96)
    if repetitions > 1:
        oracle = VotingOracle(oracle, repetitions=repetitions, aggregate="min")
    finding = reverse_engineer(oracle, inference_config=CONFIG)
    return finding.policy_name == "plru"


@traced("e6.sweep")
def run_sweep(jobs: int = 0):
    cells = [
        (rate, repetitions, seed)
        for rate in RATES
        for repetitions in (1, 7)
        for seed in SEEDS
    ]
    runner = ExperimentRunner(jobs=jobs)
    verdicts = dict(zip(cells, runner.map(
        attempt, cells, labels=[f"r{rate:g}/x{reps}/s{seed}" for rate, reps, seed in cells]
    )))
    rows = []
    for rate in RATES:
        single = sum(verdicts[(rate, 1, seed)] for seed in SEEDS)
        repeated = sum(verdicts[(rate, 7, seed)] for seed in SEEDS)
        rows.append(
            [f"{rate:g}", f"{single}/{len(SEEDS)}", f"{repeated}/{len(SEEDS)}"]
        )
    return rows


def test_e6_noise_robustness(benchmark, save_result, jobs):
    rows = benchmark.pedantic(run_sweep, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["noise rate", "single shot", "7x min-aggregated"],
        rows,
        title="E6: correct inferences of a PLRU L1 under counter noise",
    )
    save_result(
        "e6_noise",
        table,
        data={
            "columns": ["noise rate", "single shot", "7x min-aggregated"],
            "rows": rows,
        },
        params={"rates": RATES, "seeds": SEEDS, "jobs": jobs},
    )
    by_rate = {row[0]: row for row in rows}
    # Noise-free: both perfect.
    assert by_rate["0"][1] == by_rate["0"][2] == f"{len(SEEDS)}/{len(SEEDS)}"
    # Repetition keeps every noisy rate perfect.
    for rate in RATES:
        assert by_rate[f"{rate:g}"][2] == f"{len(SEEDS)}/{len(SEEDS)}"
    # Single shot degrades somewhere in the swept range.
    assert any(row[1] != f"{len(SEEDS)}/{len(SEEDS)}" for row in rows)
