"""E2 — Table: inference cost versus associativity.

The paper reports how many measurements its algorithms need.  The cost
of permutation inference grows polynomially with the associativity
(position tables are A x A, each entry needing up to A survival probes);
this benchmark regenerates the measurement and access counts and checks
the growth stays polynomial (roughly cubic for the linear strategy).

Set ``REPRO_MEASURE_DB=1`` to route every cell's oracle through the
persistent measurement DB (:func:`repro.measuredb.wrap_if_enabled`):
the reported measurement/access counts are bit-identical (the DB
oracle's cost accounting is logical), but a rerun against a kept
``REPRO_CACHE_DIR`` serves from the database — ``repro-cache report
--diff`` on the two ledgers then shows the oracle wall time collapse.
"""

import os

import pytest

from repro import measuredb
from repro.core import InferenceConfig, PermutationInference, SimulatedSetOracle
from repro.policies import make_policy
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced

WAYS = [2, 4, 8, 16]
POLICIES = ["lru", "fifo", "plru"]


def _cost_cell(task: tuple[str, int]) -> list[object]:
    """One (policy, ways) inference-cost measurement (runner cell)."""
    policy_name, ways = task
    oracle = SimulatedSetOracle(make_policy(policy_name, ways))
    if os.environ.get("REPRO_MEASURE_DB"):
        oracle = measuredb.wrap_if_enabled(oracle)
    result = PermutationInference(
        oracle, config=InferenceConfig(verify_sequences=10)
    ).infer()
    assert result.succeeded, (policy_name, ways)
    return [policy_name, ways, result.measurements, result.accesses]


@traced("e2.costs")
def measure_costs(jobs: int = 0) -> list[list[object]]:
    cells = [(policy, ways) for ways in WAYS for policy in POLICIES]
    runner = ExperimentRunner(jobs=jobs)
    return runner.map(
        _cost_cell, cells, labels=[f"{policy}/{ways}w" for policy, ways in cells]
    )


def test_e2_inference_cost(benchmark, save_result, jobs):
    rows = benchmark.pedantic(measure_costs, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["policy", "ways", "measurements", "accesses"],
        rows,
        title="E2: permutation-inference cost vs associativity (linear strategy)",
    )
    save_result(
        "e2_inference_cost",
        table,
        data={"columns": ["policy", "ways", "measurements", "accesses"], "rows": rows},
        params={"policies": POLICIES, "ways": WAYS, "jobs": jobs},
    )
    # Shape check: cost grows superlinearly but stays polynomial (< A^4).
    lru = {row[1]: row[2] for row in rows if row[0] == "lru"}
    assert lru[16] > lru[8] > lru[4]
    assert lru[16] / lru[4] < (16 / 4) ** 4


def test_e2_single_inference_timing(benchmark):
    """Timing kernel: one full 8-way PLRU inference."""

    def run():
        oracle = SimulatedSetOracle(make_policy("plru", 8))
        return PermutationInference(
            oracle, config=InferenceConfig(verify_sequences=5)
        ).infer()

    result = benchmark(run)
    assert result.succeeded
