"""BENCH — cold versus warm inference via the persistent measurement DB.

The acceptance benchmark for :mod:`repro.measuredb`, shaped like a small
E2 cost grid: every (policy, ways) cell is reverse engineered twice
against a fresh store directory — once cold (every measurement runs on
the simulated substrate and is written back) and once warm (service
memos dropped, the sqlite file preloaded, zero real measurements).  The
oracle stack is the production one for a denoised setup:
``MeasurementDBOracle(VotingOracle(SimulatedSetOracle(policy)))``.

Acceptance, per ISSUE/ROADMAP:

* the warm pass reports ``db.miss == 0`` and ``oracle.measurements == 0``
  (nothing was measured for real);
* warm :class:`InferenceResult`s are bit-identical to cold ones — the
  DB oracle's logical cost accounting keeps ``measurements``/``accesses``
  untouched by persistence;
* the warm pass is at least 5x faster in total.

The compiled-automaton caches are pre-warmed *before* the cold timing,
so the measured speedup is the measurement DB's own, not a replay of
the compile-cache win (``bench_compile_cache`` owns that one).  Results
land in ``benchmarks/results/bench_measuredb.txt`` with metrics and
ledger sidecars, plus the ``BENCH_measuredb.json`` trajectory point.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import kernels, measuredb
from repro.core.inference import PermutationInference
from repro.core.oracle import SimulatedSetOracle, VotingOracle
from repro.kernels import store
from repro.obs import metrics as obs_metrics
from repro.obs.result import ExperimentResult
from repro.policies import make_policy
from repro.util.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"

POLICIES = ["lru", "fifo", "plru"]
WAYS = [4, 8, 16]
REPETITIONS = 5  # voting layer: the paper's denoising schedule


def _infer_cell(name: str, ways: int):
    oracle = measuredb.wrap_if_enabled(
        VotingOracle(
            SimulatedSetOracle(make_policy(name, ways)), repetitions=REPETITIONS
        )
    )
    assert isinstance(oracle, measuredb.MeasurementDBOracle)
    return PermutationInference(oracle, ways=ways).infer()


def _run_grid():
    """Infer every cell; returns (results, per-cell seconds, total)."""
    results, timings = [], []
    start = time.perf_counter()
    for name in POLICIES:
        for ways in WAYS:
            cell_start = time.perf_counter()
            results.append(_infer_cell(name, ways))
            timings.append(time.perf_counter() - cell_start)
    return results, timings, time.perf_counter() - start


def _db_counters() -> dict:
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    return {
        key: value
        for key, value in sorted(counters.items())
        if key.startswith(("db.", "oracle.measurements"))
    }


def test_bench_measuredb_cold_vs_warm(save_result, tmp_path):
    """Acceptance: a populated measurement DB makes reruns >= 5x faster."""
    store.set_cache_dir(tmp_path / "repro-cache")
    try:
        # Pre-warm the automaton caches so the cold pass times the
        # measurements themselves, not PR5's compile/persist path.
        for name in POLICIES:
            for ways in WAYS:
                assert kernels.compiled_for(make_policy(name, ways)) is not None
        measuredb.reset()

        obs_metrics.DEFAULT.reset()
        cold_results, cold_cells, cold_seconds = _run_grid()
        cold_counters = _db_counters()

        # A "new process" over the same database: memos gone, rows kept.
        measuredb.reset()
        obs_metrics.DEFAULT.reset()
        warm_results, warm_cells, warm_seconds = _run_grid()
        warm_counters = _db_counters()

        assert all(result.succeeded for result in cold_results)
        # Bit-identical InferenceResults: same spec, same logical cost.
        assert warm_results == cold_results
        # Zero physical measurements on the warm pass.
        assert warm_counters.get("db.miss", 0) == 0
        assert warm_counters.get("oracle.measurements", 0) == 0
        assert cold_counters.get("db.miss", 0) > 0
        assert warm_counters.get("db.hit", 0) >= cold_counters["db.miss"]
    finally:
        store.set_cache_dir(None)
        measuredb.reset()

    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    cells = [(name, ways) for name in POLICIES for ways in WAYS]
    rows = [
        [
            name,
            ways,
            result.measurements,
            f"{cold:.3f}",
            f"{warm:.3f}",
            f"{cold / warm:.1f}x" if warm else "-",
        ]
        for (name, ways), result, cold, warm in zip(
            cells, cold_results, cold_cells, warm_cells
        )
    ]
    rows.append(
        ["TOTAL", "-", sum(r.measurements for r in cold_results),
         f"{cold_seconds:.3f}", f"{warm_seconds:.3f}", f"{speedup:.1f}x"]
    )
    table = format_table(
        ["policy", "ways", "measurements", "cold s", "warm s", "speedup"],
        rows,
        title=f"BENCH measurement DB: cold measure vs warm preload "
        f"(voting x{REPETITIONS})",
    )

    data = {
        "cells": {
            f"{name}@{ways}": {
                "measurements": result.measurements,
                "accesses": result.accesses,
                "cold_seconds": cold,
                "warm_seconds": warm,
            }
            for (name, ways), result, cold, warm in zip(
                cells, cold_results, cold_cells, warm_cells
            )
        },
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "cold_counters": cold_counters,
        "warm_counters": warm_counters,
        "schema_version": measuredb.SCHEMA_VERSION,
    }
    params = {"policies": POLICIES, "ways": WAYS, "repetitions": REPETITIONS}
    save_result("bench_measuredb", table, data=data, params=params)

    point = ExperimentResult(
        name="bench_measuredb",
        params=json.loads(json.dumps(params, default=str)),
        data=json.loads(json.dumps(data, default=str)),
        metrics=obs_metrics.DEFAULT.snapshot(),
    )
    trajectory = RESULTS_DIR / "BENCH_measuredb.json"
    trajectory.write_text(point.to_json(indent=2) + "\n")
    print(f"[trajectory point saved to {trajectory}]")

    assert speedup >= 5.0, (
        f"warm measurement DB only {speedup:.1f}x faster than cold "
        f"measurement ({cold_seconds:.3f}s -> {warm_seconds:.3f}s)"
    )
