"""BENCH — prefix-trie query planner versus the batched engines.

The acceptance benchmark for :mod:`repro.kernels.trie`: the same
compiled automaton answers the same batches twice, once with the
planner disabled (the plain batched engines — vector lanes when numpy
is present) and once enabled, interleaved in one process so CPU-clock
drift cancels.  Two workloads:

* **E2-shaped stream** — the position-measurement family the paper's
  E2 experiment issues: every query replays the same thrash +
  establishment prefix, re-accesses one establishment block, appends a
  fresh-block eviction tail and probes one block.  Concatenated, the
  batch is a shallow, very wide radix trie (measured sharing ratio
  ~40x), and the headline >= 3x acceptance gate lives here for both
  ``count_misses_batch`` and ``sequence_hits_batch``.  The stream is
  deterministically shuffled: arrival order is whatever the inference
  loop produced, so the batched engines' consecutive-identical-setup
  reuse cannot see the redundancy — the planner's sort can.
* **end-to-end inference** — a full ``PermutationInference.infer`` run
  against ``SimulatedSetOracle`` with the planner on versus off must
  produce *bit-identical* ``InferenceResult``s (the planner changes
  cost, never answers); engagement is asserted through
  ``kernel.trie.plans`` and the run must record zero
  ``kernel.trie.fallbacks``.

Results are bit-compared before any timing claim, land in
``benchmarks/results/bench_trie.txt``, and the acceptance run writes
the ``benchmarks/results/BENCH_trie.json`` trajectory point (an
ExperimentResult envelope, validated in CI by
``python -m repro.obs.result``).

Unlike the vector bench nothing here needs numpy — the scalar replay
is a complete planner — but the 3x bar is calibrated for the numpy CI
runner, where the baseline batched engine is itself vectorized.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.core import InferenceConfig, PermutationInference, SimulatedSetOracle
from repro.kernels import (
    clear_compile_cache,
    compile_policy,
    count_misses_batch,
    sequence_hits_batch,
    trie_disabled,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.result import ExperimentResult
from repro.policies import make_policy
from repro.util.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"

WAYS = 8

#: The E2 position-measurement family: for every (re-accessed block,
#: eviction depth, probed block) triple one query replays the shared
#: establishment prefix.  ways^3 = 512 queries per round.
THRASH_FACTOR = 4

#: Scale multiplier: repeat the family with distinct fresh-block tails
#: so the batch is big enough for stable timing.
ROUNDS = 4


def _skip_if_tracing():
    tracer = obs_trace.ACTIVE
    if tracer is not None:
        pytest.skip("an active tracer routes queries through the scalar oracle")


def _e2_stream(ways=WAYS, rounds=ROUNDS, seed=0):
    """The E2-shaped batch: position measurements at every depth.

    ``setup = thrash || e_0..e_{A-1} || e_hit || fresh_1..fresh_d``,
    ``probe = [e_target]`` — the exact concatenation shape inference's
    position-table stage produces, where everything up to the fresh
    tail is shared by the whole family.  Deterministically shuffled:
    measurements arrive in whatever order the inference loop asked, not
    conveniently grouped by identical setup.
    """
    thrash = [1000 + block for block in range(ways * THRASH_FACTOR)]
    establish = list(range(ways))
    queries = []
    for round_id in range(rounds):
        fresh_base = 2000 + 100 * round_id
        for hit in range(ways):
            base = thrash + establish + [hit]
            for depth in range(1, ways + 1):
                tail = [fresh_base + offset for offset in range(depth)]
                for target in range(ways):
                    queries.append((base + tail, [target]))
    random.Random(seed).shuffle(queries)
    return queries


def _best(fn, repeats):
    result, elapsed = None, float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = min(elapsed, time.perf_counter() - start)
    return result, elapsed


def _ab(fn, repeats=3):
    """Interleaved batched/planned best-of-N; asserts identical results."""
    fn()  # warm: automaton expansion, vector tables
    with trie_disabled():
        batched_result, batched_seconds = _best(fn, repeats)
    planned_result, planned_seconds = _best(fn, repeats)
    assert planned_result == batched_result, "planner result diverged from batched"
    speedup = batched_seconds / planned_seconds if planned_seconds else 0.0
    return batched_seconds, planned_seconds, speedup


def test_bench_trie_speedup(save_result):
    """Acceptance: E2-shaped batches >= 3x, zero fallbacks, identical
    InferenceResults end to end."""
    _skip_if_tracing()
    clear_compile_cache()

    compiled = compile_policy(make_policy("plru", WAYS))
    queries = _e2_stream()
    total_accesses = sum(len(setup) + len(probe) for setup, probe in queries)

    count_batched, count_planned, count_speedup = _ab(
        lambda: count_misses_batch(compiled, queries)
    )
    seq_batched, seq_planned, seq_speedup = _ab(
        lambda: sequence_hits_batch(compiled, queries)
    )

    # End-to-end: the planner must be invisible in the answers.
    def infer():
        oracle = SimulatedSetOracle(make_policy("plru", WAYS))
        config = InferenceConfig(verify_sequences=10)
        return PermutationInference(oracle, config=config).infer()

    infer()  # warm
    with trie_disabled():
        (result_off, infer_off) = _best(infer, 2)
    (result_on, infer_on) = _best(infer, 2)
    assert result_on == result_off, "InferenceResult diverged under the planner"
    assert result_on.succeeded

    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    plans = counters.get("kernel.trie.plans", 0)
    fallbacks = counters.get("kernel.trie.fallbacks", 0)
    nodes = counters.get("kernel.trie.nodes", 0)
    reused = counters.get("kernel.trie.reused_accesses", 0)
    share_ratio = (nodes + reused) / nodes if nodes else 0.0

    rows = [
        ["stream/count_misses", f"{count_batched:.3f}", f"{count_planned:.3f}",
         f"{count_speedup:.2f}x"],
        ["stream/sequence_hits", f"{seq_batched:.3f}", f"{seq_planned:.3f}",
         f"{seq_speedup:.2f}x"],
        ["inference/infer", f"{infer_off:.3f}", f"{infer_on:.3f}",
         f"{(infer_off / infer_on) if infer_on else 0.0:.2f}x"],
    ]
    table = format_table(
        ["workload", "batched s", "planned s", "speedup"],
        rows,
        title=(
            f"BENCH trie: {len(queries)}-query E2 stream "
            f"({total_accesses} accesses, sharing {share_ratio:.1f}x); "
            f"plans={plans} fallbacks={fallbacks}"
        ),
    )

    data = {
        "stream": {
            "queries": len(queries),
            "total_accesses": total_accesses,
            "share_ratio": share_ratio,
            "count_misses": {
                "batched_seconds": count_batched,
                "planned_seconds": count_planned,
                "speedup": count_speedup,
            },
            "sequence_hits": {
                "batched_seconds": seq_batched,
                "planned_seconds": seq_planned,
                "speedup": seq_speedup,
            },
        },
        "inference": {
            "batched_seconds": infer_off,
            "planned_seconds": infer_on,
            "identical_result": True,
        },
        "counters": {
            "kernel.trie.plans": plans,
            "kernel.trie.fallbacks": fallbacks,
            "kernel.trie.nodes": nodes,
            "kernel.trie.reused_accesses": reused,
        },
    }
    params = {
        "ways": WAYS,
        "thrash_factor": THRASH_FACTOR,
        "rounds": ROUNDS,
        "policy": "plru",
        "trie": True,
        "seed": 0,
    }
    save_result("bench_trie", table, data=data, params=params)

    point = ExperimentResult(
        name="bench_trie",
        params=json.loads(json.dumps(params, default=str)),
        data=json.loads(json.dumps(data, default=str)),
        metrics=obs_metrics.DEFAULT.snapshot(),
    )
    trajectory = RESULTS_DIR / "BENCH_trie.json"
    trajectory.write_text(point.to_json(indent=2) + "\n")
    print(f"[trajectory point saved to {trajectory}]")

    assert plans >= 1, "the planner never engaged on the E2 stream"
    assert fallbacks == 0, f"{fallbacks} batches fell back to the batched engines"
    assert count_speedup >= 3.0, (
        f"planned count_misses_batch only {count_speedup:.2f}x over the "
        f"batched engine, below the 3x acceptance bar"
    )
    assert seq_speedup >= 3.0, (
        f"planned sequence_hits_batch only {seq_speedup:.2f}x over the "
        f"batched engine, below the 3x acceptance bar"
    )
