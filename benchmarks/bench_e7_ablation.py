"""E7 — Ablation: position-measurement strategies and thrash prefixes.

Two design choices of the inference procedure are ablated:

* **probe strategy** — scanning the eviction depth linearly vs binary
  searching it.  Binary search needs fewer, slightly longer
  measurements; the advantage grows with associativity.
* **thrash prefix length** — the establishment prefix that puts the set
  into steady state.  Dropping it (factor 0) must break policies whose
  cold-fill arrangement differs from steady state (tree PLRU), which is
  exactly why the paper establishes states through misses on a full set.
"""

import pytest

from repro.core import (
    CachingOracle,
    InferenceConfig,
    PermutationInference,
    SimulatedSetOracle,
)
from repro.policies import make_policy
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced


def _strategy_cell(task: tuple[int, str]) -> list[object]:
    """One (ways, probe strategy) inference (runner cell).

    The oracle is wrapped in a :class:`CachingOracle` and the whole
    inference is then *replayed* against it — the confirmation run a
    careful experimenter performs on real hardware.  A single pass never
    repeats an exact ``(setup, probe)`` pair, so the replay is where the
    cache earns its keep: every query hits, the recovered spec is
    identical, and the measurement cost of the second pass is zero.  The
    ``cached`` column records the replay's (free) query count.
    """
    ways, strategy = task
    config = InferenceConfig(strategy=strategy, verify_sequences=10)
    oracle = CachingOracle(SimulatedSetOracle(make_policy("plru", ways)))
    result = PermutationInference(oracle, config=config).infer()
    assert result.succeeded
    replay = PermutationInference(oracle, config=config).infer()
    assert replay.succeeded and replay.spec == result.spec
    assert replay.measurements == 0  # fully served from the cache
    return [ways, strategy, result.measurements, result.accesses, oracle.cache_hits]


@traced("e7.strategies")
def strategy_rows(jobs: int = 0):
    cells = [(ways, strategy) for ways in (4, 8, 16)
             for strategy in ("linear", "binary")]
    runner = ExperimentRunner(jobs=jobs)
    return runner.map(
        _strategy_cell, cells, labels=[f"{ways}w/{s}" for ways, s in cells]
    )


def test_e7_strategy_ablation(benchmark, save_result, jobs):
    rows = benchmark.pedantic(strategy_rows, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["ways", "strategy", "measurements", "accesses", "cached"],
        rows,
        title="E7a: position-measurement strategy ablation (PLRU target)",
    )
    save_result(
        "e7_strategy_ablation",
        table,
        data={
            "columns": ["ways", "strategy", "measurements", "accesses", "cached"],
            "rows": rows,
        },
        params={"target": "plru", "jobs": jobs},
    )
    cost = {(row[0], row[1]): row[2] for row in rows}
    for ways in (8, 16):
        assert cost[(ways, "binary")] < cost[(ways, "linear")]
    # The saving grows with associativity.
    saving_8 = cost[(8, "linear")] / cost[(8, "binary")]
    saving_16 = cost[(16, "linear")] / cost[(16, "binary")]
    assert saving_16 >= saving_8


def _thrash_cell(factor: int) -> list[object]:
    """One thrash-prefix ablation inference (runner cell)."""
    oracle = CachingOracle(SimulatedSetOracle(make_policy("plru", 8)))
    result = PermutationInference(
        oracle,
        config=InferenceConfig(thrash_factor=factor, verify_sequences=10),
    ).infer()
    return [
        factor,
        "ok" if result.succeeded else f"fails ({result.failure_reason})",
        result.measurements,
    ]


@traced("e7.thrash")
def thrash_rows(jobs: int = 0):
    factors = (0, 1, 2)
    runner = ExperimentRunner(jobs=jobs)
    return runner.map(
        _thrash_cell, factors, labels=[f"thrash-{f}" for f in factors]
    )


def test_e7_thrash_prefix_ablation(benchmark, save_result, jobs):
    rows = benchmark.pedantic(thrash_rows, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["thrash factor", "outcome", "measurements"],
        rows,
        title="E7b: establishment thrash-prefix ablation (8-way tree PLRU)",
    )
    save_result(
        "e7_thrash_ablation",
        table,
        data={
            "columns": ["thrash factor", "outcome", "measurements"],
            "rows": rows,
        },
        params={"target": "plru", "ways": 8, "jobs": jobs},
    )
    by_factor = {row[0]: row[1] for row in rows}
    # Without the prefix the cold-fill arrangement leaks into the model.
    assert by_factor[0] != "ok"
    assert by_factor[1] == by_factor[2] == "ok"
