"""BENCH — vector engine versus the scalar compiled kernel.

The acceptance benchmark for :mod:`repro.kernels.vector`: the same
compiled automata execute the same work twice, once with the vector
engine disabled (the scalar kernel) and once enabled, interleaved in
one process so CPU-clock drift cancels.  Three workloads:

* **trace** — E3-scale whole-cache simulation (2048 sets, 1M accesses)
  where all sets advance lock-step; the headline ≥ 3x acceptance gate
  (measured ~5-10x) lives here;
* **batch** — an oracle-style ``count_misses_batch`` of thousands of
  ``(setup, probe)`` queries; the vector path sums hit columns in numpy
  and never materializes per-access outcomes;
* **sequence batch** — ``sequence_hits_batch``, which *does* pay to
  materialize every outcome as Python bools and so bounds the batch
  speedup from below.

Results are bit-compared cell for cell before any timing claim, land in
``benchmarks/results/bench_vector.txt``, and the acceptance run writes
the ``benchmarks/results/BENCH_vector.json`` trajectory point (an
ExperimentResult envelope, validated in CI by
``python -m repro.obs.result``).

Everything here skips without numpy — the no-numpy CI leg proves the
scalar fallback instead (see tests/test_kernel_vector.py).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.cache import CacheConfig
from repro.kernels import (
    clear_compile_cache,
    compile_policy,
    count_misses_batch,
    sequence_hits_batch,
    try_simulate_trace,
    vector,
    vector_disabled,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.result import ExperimentResult
from repro.policies import make_policy
from repro.util.tables import format_table
from repro.workloads.trace import Trace

RESULTS_DIR = Path(__file__).parent / "results"

pytestmark = pytest.mark.skipif(
    not vector.available(), reason="numpy not installed (vector engine absent)"
)

#: E3-scale trace workload: a 1 MiB / 8-way config is 2048 lock-step lanes.
TRACE_CONFIG = CacheConfig("L2", 1024 * 1024, 8)
TRACE_ACCESSES = 1_000_000
TRACE_POLICIES = ["plru", "lru"]

#: Smoke-scale: 512 lanes, a few hundred thousand accesses.
SMOKE_CONFIG = CacheConfig("L2", 256 * 1024, 8)
SMOKE_ACCESSES = 300_000

#: Oracle-style batch: chunks of queries sharing a setup (the shape
#: candidate identification and inference verification produce).
BATCH_QUERIES = 4096
BATCH_CHUNK = 64
BATCH_PROBE = 40


def _skip_if_tracing():
    tracer = obs_trace.ACTIVE
    if tracer is not None:
        pytest.skip("an active tracer routes traces through the scalar engine")


def _random_trace(name, accesses, lines, seed):
    rng = random.Random(seed)
    return Trace(
        name, tuple(rng.randrange(lines) * 64 for _ in range(accesses))
    )


def _batch_queries(seed=0):
    rng = random.Random(seed)
    queries = []
    for _ in range(BATCH_QUERIES // BATCH_CHUNK):
        setup = [rng.randrange(16) for _ in range(24)]
        for _ in range(BATCH_CHUNK):
            probe = [rng.randrange(16) for _ in range(BATCH_PROBE)]
            queries.append((setup, probe))
    return queries


def _best(fn, repeats):
    result, elapsed = None, float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = min(elapsed, time.perf_counter() - start)
    return result, elapsed


def _ab(fn, repeats=3):
    """Interleaved scalar/vector best-of-N; asserts identical results."""
    fn()  # warm: automaton expansion, vector tables, trace layout
    with vector_disabled():
        scalar_result, scalar_seconds = _best(fn, repeats)
    vector_result, vector_seconds = _best(fn, repeats)
    assert scalar_result == vector_result, "vector result diverged from scalar"
    speedup = scalar_seconds / vector_seconds if vector_seconds else 0.0
    return scalar_seconds, vector_seconds, speedup


def _trace_rows(config, accesses, policies, seed):
    trace = _random_trace(
        f"bench-vector-{config.num_sets}", accesses, config.num_sets * 2048, seed
    )
    rows = {}
    for policy in policies:
        scalar_seconds, vector_seconds, speedup = _ab(
            lambda: try_simulate_trace(trace, config, policy)
        )
        rows[policy] = {
            "scalar_seconds": scalar_seconds,
            "vector_seconds": vector_seconds,
            "speedup": speedup,
        }
    return rows


def test_bench_vector_speedup(save_result):
    """Acceptance: lock-step traces >= 3x; batches reported alongside."""
    _skip_if_tracing()
    clear_compile_cache()

    trace_rows = _trace_rows(TRACE_CONFIG, TRACE_ACCESSES, TRACE_POLICIES, seed=1)

    compiled = compile_policy(make_policy("plru", 8))
    queries = _batch_queries()
    count_scalar, count_vector, count_speedup = _ab(
        lambda: count_misses_batch(compiled, queries)
    )
    seq_scalar, seq_vector, seq_speedup = _ab(
        lambda: sequence_hits_batch(compiled, queries)
    )

    rows = [
        [
            f"trace/{policy}",
            f"{row['scalar_seconds']:.3f}",
            f"{row['vector_seconds']:.3f}",
            f"{row['speedup']:.2f}x",
        ]
        for policy, row in trace_rows.items()
    ] + [
        ["batch/count_misses", f"{count_scalar:.3f}", f"{count_vector:.3f}",
         f"{count_speedup:.2f}x"],
        ["batch/sequence_hits", f"{seq_scalar:.3f}", f"{seq_vector:.3f}",
         f"{seq_speedup:.2f}x"],
    ]
    table = format_table(
        ["workload", "scalar s", "vector s", "speedup"],
        rows,
        title=(
            f"BENCH vector: {TRACE_CONFIG.describe()} x {TRACE_ACCESSES} accesses; "
            f"{BATCH_QUERIES}-query batches"
        ),
    )

    data = {
        "trace": trace_rows,
        "batch": {
            "count_misses": {
                "scalar_seconds": count_scalar,
                "vector_seconds": count_vector,
                "speedup": count_speedup,
            },
            "sequence_hits": {
                "scalar_seconds": seq_scalar,
                "vector_seconds": seq_vector,
                "speedup": seq_speedup,
            },
        },
    }
    params = {
        "trace_config": TRACE_CONFIG.describe(),
        "trace_accesses": TRACE_ACCESSES,
        "trace_policies": TRACE_POLICIES,
        "batch_queries": BATCH_QUERIES,
        "batch_chunk": BATCH_CHUNK,
        "batch_probe": BATCH_PROBE,
        "seed": 1,
    }
    save_result("bench_vector", table, data=data, params=params)

    point = ExperimentResult(
        name="bench_vector",
        params=json.loads(json.dumps(params, default=str)),
        data=json.loads(json.dumps(data, default=str)),
        metrics=obs_metrics.DEFAULT.snapshot(),
    )
    trajectory = RESULTS_DIR / "BENCH_vector.json"
    trajectory.write_text(point.to_json(indent=2) + "\n")
    print(f"[trajectory point saved to {trajectory}]")

    for policy, row in trace_rows.items():
        assert row["speedup"] >= 3.0, (
            f"vector trace speedup for {policy} is {row['speedup']:.2f}x, "
            f"below the 3x acceptance bar"
        )
    # The batch paths shuttle Python lists across the numpy boundary, so
    # their ceiling is lower; this floor guards "vector actually engaged
    # and won", the 3x bar is the trace's.
    assert count_speedup >= 1.3, (
        f"vector count_misses_batch only {count_speedup:.2f}x over scalar"
    )


def test_bench_vector_smoke(save_result):
    """CI perf smoke: a small lock-step trace still clears 3x."""
    _skip_if_tracing()
    clear_compile_cache()

    rows = _trace_rows(SMOKE_CONFIG, SMOKE_ACCESSES, ["plru"], seed=3)
    row = rows["plru"]

    save_result(
        "bench_vector_smoke",
        format_table(
            ["workload", "scalar s", "vector s", "speedup"],
            [["trace/plru", f"{row['scalar_seconds']:.3f}",
              f"{row['vector_seconds']:.3f}", f"{row['speedup']:.2f}x"]],
            title=(
                f"BENCH vector smoke: {SMOKE_CONFIG.describe()} x "
                f"{SMOKE_ACCESSES} accesses"
            ),
        ),
        data=row,
        params={
            "config": SMOKE_CONFIG.describe(),
            "accesses": SMOKE_ACCESSES,
            "policy": "plru",
            "seed": 3,
        },
    )

    assert row["speedup"] >= 3.0, (
        f"vector smoke speedup {row['speedup']:.2f}x below the 3x bar"
    )
