"""E1 — Table: reverse-engineered policies per processor and cache level.

The paper's headline table: for every examined machine, the replacement
policy of each cache level, as inferred purely from measurements.  In
the reproduction the processors are simulated, so the table gains a
ground-truth column the original could not have — every row must match.
"""

import pytest

from repro import (
    PROCESSORS,
    HardwarePlatform,
    HardwareSetOracle,
    InferenceConfig,
    reverse_engineer,
)
from repro.runner import ExperimentRunner
from repro.util.tables import format_table
from repro.obs.spans import traced

#: Trimmed verification keeps the 16-way L3 runs tractable; the method
#: is unchanged.
FAST = InferenceConfig(verify_sequences=10, verify_length=40)


#: Set-dueling policies have no single per-set identity; the correct
#: verdict for them is "unidentified" here, and experiment E9 shows how
#: they are recognised as adaptive instead.
ADAPTIVE_POLICIES = ("dip", "drrip")


def _infer_cell(task: tuple[str, str]) -> list[object]:
    """One (processor, level) inference on a fresh platform (runner cell)."""
    name, level = task
    spec = PROCESSORS[name]
    platform = HardwarePlatform(spec, seed=0)
    level_spec = next(ls for ls in spec.levels if ls.config.name == level)
    oracle = HardwareSetOracle(platform, level)
    finding = reverse_engineer(oracle, inference_config=FAST)
    truth = spec.ground_truth[level]
    if truth in ADAPTIVE_POLICIES:
        match = "yes" if not finding.identified else "NO"
        truth = f"{truth} (adaptive; see E9)"
    else:
        match = "yes" if finding.policy_name == truth else "NO"
    return [
        name,
        level,
        level_spec.config.describe().split(": ", 1)[1],
        finding.summary(),
        truth,
        match,
        finding.measurements,
    ]


@traced("e1.infer")
def infer_all(jobs: int = 0) -> list[list[object]]:
    cells = [
        (name, level_spec.config.name)
        for name in sorted(PROCESSORS)
        for level_spec in PROCESSORS[name].levels
    ]
    runner = ExperimentRunner(jobs=jobs)
    return runner.map(
        _infer_cell, cells, labels=[f"{name}/{level}" for name, level in cells]
    )


def test_e1_inferred_policies(benchmark, save_result, jobs):
    rows = benchmark.pedantic(infer_all, args=(jobs,), rounds=1, iterations=1)
    columns = [
        "processor", "level", "geometry", "inferred", "truth", "match", "measurements"
    ]
    table = format_table(
        columns,
        rows,
        title="E1: reverse-engineered replacement policies (simulated catalog)",
    )
    save_result(
        "e1_inferred_policies",
        table,
        data={"columns": columns, "rows": rows},
        params={"processors": sorted(PROCESSORS), "jobs": jobs},
    )
    mismatches = [row for row in rows if row[5] != "yes"]
    assert not mismatches, f"inference failed on: {mismatches}"
