"""BENCH — compiled kernel versus interpreter on the serial E3 grid.

The acceptance benchmark for :mod:`repro.kernels`: the full E3
miss-ratio grid (every policy x every workload, serial) is timed twice,
once with the kernel disabled (interpreted :class:`repro.cache.Cache`)
and once enabled (compiled automata, direct mode for the randomized /
set-dueling policies).  The matrices must be identical cell for cell and
the kernel run at least 5x faster; both numbers land in
``benchmarks/results/bench_kernel.txt`` and the
``benchmarks/results/BENCH_kernel.json`` trajectory point (an
ExperimentResult envelope, validated in CI by
``python -m repro.obs.result``).

A second, much smaller grid provides the CI perf smoke check with a
deliberately loose bar (>= 1.5x) so runner noise cannot fail the build.

The cold-path tracer installed by ``--obs-trace`` does *not* disengage
the kernel (only a tracer wanting per-access ``cache.*`` events does;
see OBSERVABILITY.md), so both tests run under it — they only skip when
a full-fidelity tracer forces the interpreter, because then there would
be nothing to compare.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cache import CacheConfig
from repro.eval import miss_ratio_matrix
from repro.kernels import clear_compile_cache, compiled_for_factory, kernel_disabled
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.result import ExperimentResult
from repro.runner import clear_memo
from repro.util.tables import format_table
from repro.workloads import workload_suite

RESULTS_DIR = Path(__file__).parent / "results"

# The E3 grid (kept in sync with bench_e3_missratio).
POLICIES = ["lru", "fifo", "plru", "bitplru", "nru", "srrip", "lip", "dip", "random"]
CONFIG = CacheConfig("L2", 64 * 1024, 8)  # 1024 lines

SMOKE_POLICIES = ["lru", "plru", "srrip"]


def _skip_if_tracing():
    tracer = obs_trace.ACTIVE
    if tracer is not None and tracer.wants_cache:
        pytest.skip("a tracer wanting cache.* events forces the interpreter")


def _timed_grid(policies, traces, kernel: bool):
    """One serial grid run; returns (matrix, wall seconds).

    The compile caches are dropped first so the kernel's timing includes
    every automaton compilation it needs — the speedup is end to end,
    not warm-cache flattery.
    """
    clear_memo()
    clear_compile_cache()
    if kernel:
        start = time.perf_counter()
        matrix = miss_ratio_matrix(traces, CONFIG, policies, seed=0, jobs=0,
                                   memoize=False)
        return matrix, time.perf_counter() - start
    with kernel_disabled():
        start = time.perf_counter()
        matrix = miss_ratio_matrix(traces, CONFIG, policies, seed=0, jobs=0,
                                   memoize=False)
        return matrix, time.perf_counter() - start


def _policy_modes(policies, ways):
    """(policy, mode, states) rows read off the compile cache after a run."""
    rows = []
    for name in policies:
        compiled = compiled_for_factory(name, (), ways)
        if compiled is None:
            rows.append([name, "direct", "-"])
        else:
            rows.append([name, "compiled", compiled.num_states])
    return rows


def test_bench_kernel_e3_speedup(save_result):
    """Acceptance: the kernel runs the serial E3 grid >= 5x faster."""
    _skip_if_tracing()
    traces = workload_suite(cache_lines=CONFIG.num_sets * CONFIG.ways, seed=0)

    interpreted, interpreted_seconds = _timed_grid(POLICIES, traces, kernel=False)
    compiled, kernel_seconds = _timed_grid(POLICIES, traces, kernel=True)
    speedup = interpreted_seconds / kernel_seconds if kernel_seconds else 0.0

    modes = _policy_modes(POLICIES, CONFIG.ways)
    table = format_table(
        ["mode", "cells", "seconds", "speedup"],
        [
            ["interpreter", len(interpreted.cells), f"{interpreted_seconds:.3f}", "1.00x"],
            ["kernel", len(compiled.cells), f"{kernel_seconds:.3f}", f"{speedup:.2f}x"],
        ],
        title=f"BENCH kernel: serial E3 grid @ {CONFIG.describe()}",
    ) + "\n\n" + format_table(
        ["policy", "kernel mode", "automaton states"],
        modes,
        title="Per-policy kernel coverage",
    )

    data = {
        "cells": len(interpreted.cells),
        "interpreter_seconds": interpreted_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": speedup,
        "identical": interpreted == compiled,
        "policies": {row[0]: {"mode": row[1], "states": row[2]} for row in modes},
    }
    params = {"policies": POLICIES, "config": CONFIG.describe(), "seed": 0}
    save_result("bench_kernel", table, data=data, params=params)

    # The BENCH_kernel.json trajectory point: same envelope format as the
    # metrics sidecars, fixed name so successive runs can be compared.
    point = ExperimentResult(
        name="bench_kernel",
        params=json.loads(json.dumps(params, default=str)),
        data=json.loads(json.dumps(data, default=str)),
        metrics=obs_metrics.DEFAULT.snapshot(),
    )
    trajectory = RESULTS_DIR / "BENCH_kernel.json"
    trajectory.write_text(point.to_json(indent=2) + "\n")
    print(f"[trajectory point saved to {trajectory}]")

    assert interpreted == compiled, "kernel grid diverged from the interpreter"
    assert speedup >= 5.0, (
        f"kernel speedup {speedup:.2f}x below the 5x acceptance bar "
        f"({interpreted_seconds:.3f}s -> {kernel_seconds:.3f}s)"
    )


def test_bench_kernel_smoke(save_result):
    """CI perf smoke: the kernel beats the interpreter on a small grid."""
    _skip_if_tracing()
    traces = workload_suite(cache_lines=CONFIG.num_sets * CONFIG.ways, seed=0)[:3]

    interpreted, interpreted_seconds = _timed_grid(SMOKE_POLICIES, traces, kernel=False)
    compiled, kernel_seconds = _timed_grid(SMOKE_POLICIES, traces, kernel=True)
    speedup = interpreted_seconds / kernel_seconds if kernel_seconds else 0.0

    save_result(
        "bench_kernel_smoke",
        format_table(
            ["mode", "seconds", "speedup"],
            [
                ["interpreter", f"{interpreted_seconds:.3f}", "1.00x"],
                ["kernel", f"{kernel_seconds:.3f}", f"{speedup:.2f}x"],
            ],
            title="BENCH kernel smoke: small serial E3 grid",
        ),
        data={
            "interpreter_seconds": interpreted_seconds,
            "kernel_seconds": kernel_seconds,
            "speedup": speedup,
            "identical": interpreted == compiled,
        },
        params={"policies": SMOKE_POLICIES, "workloads": len(traces)},
    )

    assert interpreted == compiled
    # Loose on purpose: this guards "kernel actually engaged", the 5x
    # acceptance bar lives in test_bench_kernel_e3_speedup.
    assert speedup >= 1.5, f"kernel only {speedup:.2f}x faster on the smoke grid"
