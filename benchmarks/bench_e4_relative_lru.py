"""E4 — Figure: miss ratio relative to LRU across cache sizes.

The crossover figure: on a working set slightly larger than the cache,
LRU thrashes while LIP/DIP keep most of the loop resident — until the
cache grows past the footprint, where all policies converge.  Series
are normalised to LRU per size, as the paper's relative plots are.
"""

import pytest

from repro.eval import cache_size_sweep
from repro.util.tables import format_table
from repro.workloads import cyclic_loop
from repro.obs.spans import traced

POLICIES = ["lru", "fifo", "plru", "lip", "dip", "srrip"]
SIZES = [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
TRACE = cyclic_loop(640, iterations=12)  # 40 KiB footprint


@traced("e4.sweep")
def compute_sweep(jobs: int = 0):
    return cache_size_sweep(TRACE, SIZES, POLICIES, ways=8, jobs=jobs)


def test_e4_relative_to_lru(benchmark, save_result, jobs):
    points = benchmark.pedantic(compute_sweep, args=(jobs,), rounds=1, iterations=1)

    def ratio(policy, size):
        return next(
            p.miss_ratio for p in points if p.policy == policy and p.cache_size == size
        )

    rows = []
    for size in SIZES:
        base = ratio("lru", size)
        row = [f"{size // 1024} KiB"] + [
            ratio(policy, size) / base if base else 1.0 for policy in POLICIES
        ]
        rows.append(row)
    table = format_table(
        ["cache size"] + POLICIES,
        rows,
        title=f"E4: miss ratio relative to LRU on {TRACE.name} (40 KiB footprint)",
    )
    save_result(
        "e4_relative_lru",
        table,
        data={"columns": ["cache size"] + POLICIES, "rows": rows},
        params={"policies": POLICIES, "sizes": SIZES, "trace": TRACE.name, "jobs": jobs},
    )

    # Shape: below the footprint LIP/DIP beat LRU by a large factor ...
    assert ratio("lip", 32 * 1024) < 0.5 * ratio("lru", 32 * 1024)
    assert ratio("dip", 32 * 1024) < 0.5 * ratio("lru", 32 * 1024)
    # ... and everyone converges once the loop fits.
    for policy in POLICIES:
        assert ratio(policy, 128 * 1024) == pytest.approx(ratio("lru", 128 * 1024))
