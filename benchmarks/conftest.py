"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures
(reconstructed as experiments E1-E8; see DESIGN.md).  Besides the
pytest-benchmark timing, each writes its rows to
``benchmarks/results/<experiment>.txt`` so the numbers survive the run
and can be pasted into EXPERIMENTS.md, plus a
``<experiment>.metrics.json`` sidecar: an ExperimentResult envelope
(see OBSERVABILITY.md) carrying the experiment's structured data and a
snapshot of the run's metrics.

Pass ``--obs-trace`` to additionally record structured events
(``runner.*``, ``oracle.*``, ``infer.*``, ``identify.*`` — the cold-path
kinds; per-access ``cache.*`` events are excluded so tracing does not
distort the timed sections) and write them to
``<experiment>.trace.jsonl`` next to the other artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.result import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Event-kind prefixes recorded under --obs-trace.
TRACE_INCLUDE = ("runner.", "oracle.", "infer.", "identify.")


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=0,
        help="worker processes for experiment grids (0 = serial); results "
        "are bit-identical in both modes (see repro.runner)",
    )
    parser.addoption(
        "--obs-trace",
        action="store_true",
        default=False,
        help="record structured events per experiment and write them to "
        "benchmarks/results/<experiment>.trace.jsonl",
    )


@pytest.fixture(scope="session")
def jobs(request) -> int:
    """Worker count for the experiment runner (0 = serial default)."""
    return request.config.getoption("--jobs")


@pytest.fixture(autouse=True)
def _observe(request):
    """Reset metrics per test; install a tracer when --obs-trace is set.

    Each benchmark therefore sees only its own counters in the metrics
    sidecar, and the tracer's events are available to ``save_result``
    through :data:`repro.obs.trace.ACTIVE`.
    """
    obs_metrics.DEFAULT.reset()
    if request.config.getoption("--obs-trace"):
        with obs_trace.tracing(include=TRACE_INCLUDE):
            yield
    else:
        yield


@pytest.fixture(scope="session")
def save_result():
    """Persist an experiment table plus its ExperimentResult sidecar.

    ``data`` and ``params`` feed the ``<name>.metrics.json`` envelope;
    anything JSON-unfriendly inside them is stringified.  When a tracer
    is active its events are drained to ``<name>.trace.jsonl``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, data=None, params=None) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        result = ExperimentResult(
            name=name,
            params=json.loads(json.dumps(params or {}, default=str)),
            data=json.loads(json.dumps(data if data is not None else {}, default=str)),
            metrics=obs_metrics.DEFAULT.snapshot(),
        )
        sidecar = RESULTS_DIR / f"{name}.metrics.json"
        sidecar.write_text(result.to_json(indent=2) + "\n")
        tracer = obs_trace.ACTIVE
        if tracer is not None and tracer.events:
            trace_path = obs_trace.write_jsonl(
                tracer.events, RESULTS_DIR / f"{name}.trace.jsonl"
            )
            tracer.events.clear()
            print(f"[trace saved to {trace_path}]")
        print(f"\n{text}\n[saved to {path}; metrics sidecar {sidecar}]")

    return _save
