"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures
(reconstructed as experiments E1-E8; see DESIGN.md).  Besides the
pytest-benchmark timing, each writes its rows to
``benchmarks/results/<experiment>.txt`` so the numbers survive the run
and can be pasted into EXPERIMENTS.md, plus a
``<experiment>.metrics.json`` sidecar: an ExperimentResult envelope
(see OBSERVABILITY.md) carrying the experiment's structured data and a
snapshot of the run's metrics, and a ``<experiment>.ledger.json`` run
manifest (git revision, environment, counters, artifact digests) that
``repro-cache report`` can summarize and diff across runs.

Pass ``--obs-trace`` to additionally record structured events
(``runner.*``, ``span.*``, ``kernel.*``, ``oracle.*``, ``infer.*``,
``identify.*`` — the cold-path kinds; per-access ``cache.*`` events are
excluded so tracing neither distorts the timed sections nor disengages
the compiled kernel) and write them to
``<experiment>.trace.jsonl`` next to the other artifacts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.obs import history as obs_history
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.obs.result import ExperimentResult
from repro.kernels import kernel_enabled

RESULTS_DIR = Path(__file__).parent / "results"

#: Event-kind prefixes recorded under --obs-trace.
TRACE_INCLUDE = ("runner.", "span.", "kernel.", "oracle.", "infer.", "identify.")

#: Wall-clock start of the current test, for the ledger (set by _observe).
_CLOCK: dict[str, float] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=0,
        help="worker processes for experiment grids (0 = serial); results "
        "are bit-identical in both modes (see repro.runner)",
    )
    parser.addoption(
        "--obs-trace",
        action="store_true",
        default=False,
        help="record structured events per experiment and write them to "
        "benchmarks/results/<experiment>.trace.jsonl",
    )


@pytest.fixture(scope="session")
def jobs(request) -> int:
    """Worker count for the experiment runner (0 = serial default)."""
    return request.config.getoption("--jobs")


@pytest.fixture(autouse=True)
def _observe(request):
    """Reset metrics and span state per test; trace under --obs-trace.

    Each benchmark therefore sees only its own counters in the metrics
    sidecar — nothing bleeds across benches — and the tracer's events
    are available to ``save_result`` through
    :data:`repro.obs.trace.ACTIVE`.  The wall clock recorded here feeds
    the run ledger.
    """
    obs_metrics.DEFAULT.reset()
    obs_spans.reset()
    _CLOCK["start"] = time.perf_counter()
    if request.config.getoption("--obs-trace"):
        with obs_trace.tracing(include=TRACE_INCLUDE):
            yield
    else:
        yield


@pytest.fixture(scope="session")
def save_result(request):
    """Persist an experiment table plus its sidecar and run ledger.

    ``data`` and ``params`` feed the ``<name>.metrics.json`` envelope;
    anything JSON-unfriendly inside them is stringified.  When a tracer
    is active its events are drained to ``<name>.trace.jsonl``.  Every
    save also writes a ``<name>.ledger.json`` manifest so two runs of
    the same experiment can be compared with ``repro-cache report
    --diff``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, data=None, params=None) -> None:
        params = params or {}
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        snapshot = obs_metrics.DEFAULT.snapshot()
        result = ExperimentResult(
            name=name,
            params=json.loads(json.dumps(params, default=str)),
            data=json.loads(json.dumps(data if data is not None else {}, default=str)),
            metrics=snapshot,
        )
        sidecar = RESULTS_DIR / f"{name}.metrics.json"
        sidecar.write_text(result.to_json(indent=2) + "\n")
        trace_path = None
        tracer = obs_trace.ACTIVE
        if tracer is not None and tracer.events:
            trace_path = obs_trace.write_jsonl(
                tracer.events, RESULTS_DIR / f"{name}.trace.jsonl"
            )
            tracer.events.clear()
            print(f"[trace saved to {trace_path}]")
        wall_seconds = time.perf_counter() - _CLOCK.get("start", time.perf_counter())
        jobs = params.get("jobs", request.config.getoption("--jobs"))
        ledger = obs_ledger.build_ledger(
            name=name,
            params=params,
            wall_seconds=wall_seconds,
            seed=params.get("seed"),
            jobs=int(jobs) if isinstance(jobs, (int, float, str)) and str(jobs).isdigit() else None,
            kernel=kernel_enabled(),
            counters=snapshot.get("counters", {}),
            artifacts=[p for p in (path, sidecar, trace_path) if p is not None],
        )
        ledger_path = obs_ledger.write_ledger(
            ledger, obs_ledger.ledger_path_for(sidecar)
        )
        # Auto-record into the run-history database so `repro-cache
        # history check` and the dashboard see every bench run without a
        # separate ingest step.  Recording never fails the benchmark.
        try:
            recorded = obs_history.record_ledger(ledger, source="bench")
        except Exception:
            recorded = None
        history_note = (
            f"; history run {recorded}" if recorded is not None else ""
        )
        print(f"\n{text}\n[saved to {path}; metrics sidecar {sidecar}; "
              f"ledger {ledger_path}{history_note}]")

    return _save
