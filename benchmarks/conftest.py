"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures
(reconstructed as experiments E1-E8; see DESIGN.md).  Besides the
pytest-benchmark timing, each writes its rows to
``benchmarks/results/<experiment>.txt`` so the numbers survive the run
and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=0,
        help="worker processes for experiment grids (0 = serial); results "
        "are bit-identical in both modes (see repro.runner)",
    )


@pytest.fixture(scope="session")
def jobs(request) -> int:
    """Worker count for the experiment runner (0 = serial default)."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def save_result():
    """Persist an experiment table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
