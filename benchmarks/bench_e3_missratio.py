"""E3 — Figure: miss ratios of the policies across workloads.

The performance half of the paper's evaluation: replay workload traces
under every policy of interest and compare miss ratios.  The figure's
series become the columns of the saved table.  Shape expectations
asserted below: all policies tie on a cache-resident loop, LRU-like
policies thrash on loops just above the cache while insertion policies
(LIP/DIP) survive them, and FIFO trails LRU on reuse-heavy workloads.

The grid runs through :mod:`repro.runner`; pass ``--jobs N`` to fan the
(policy x workload) cells over worker processes.  A companion test
times the serial path against the parallel path and records the speedup
in ``benchmarks/results/e3_runner_speedup.txt``.
"""

import os
import time

import pytest

from repro.cache import CacheConfig
from repro.eval import miss_ratio_matrix
from repro.kernels import kernel_disabled
from repro.runner import clear_memo
from repro.util.tables import format_table
from repro.workloads import workload_suite
from repro.obs.spans import traced

POLICIES = ["lru", "fifo", "plru", "bitplru", "nru", "srrip", "lip", "dip", "random"]
CONFIG = CacheConfig("L2", 64 * 1024, 8)  # 1024 lines


@traced("e3.grid")
def compute_matrix(jobs: int = 0, memoize: bool = True):
    traces = workload_suite(cache_lines=CONFIG.num_sets * CONFIG.ways, seed=0)
    return miss_ratio_matrix(traces, CONFIG, POLICIES, seed=0, jobs=jobs,
                             memoize=memoize)


def test_e3_missratio_matrix(benchmark, save_result, jobs):
    matrix = benchmark.pedantic(compute_matrix, args=(jobs,), rounds=1, iterations=1)
    table = format_table(
        ["workload"] + matrix.policies(),
        matrix.rows(),
        title=f"E3: miss ratios @ {CONFIG.describe()}",
    )
    save_result(
        "e3_missratio",
        table,
        data=matrix.to_experiment_result().data,
        params={"policies": POLICIES, "config": CONFIG.describe(), "seed": 0},
    )

    # Shape assertions (the paper's qualitative findings).
    assert matrix.ratio("lru", "loop-friendly") == matrix.ratio("fifo", "loop-friendly")
    assert matrix.ratio("lip", "loop-thrashing") < 0.5 < matrix.ratio("lru", "loop-thrashing")
    assert matrix.ratio("dip", "loop-thrashing") < 0.5
    assert matrix.ratio("fifo", "skewed") > matrix.ratio("lru", "skewed")
    assert matrix.ratio("plru", "skewed") == pytest.approx(
        matrix.ratio("lru", "skewed"), rel=0.1
    )


def test_e3_simulation_throughput(benchmark):
    """Timing kernel: one policy x one workload simulation."""
    from repro.eval import simulate_trace
    from repro.workloads import APP_MODELS

    trace = APP_MODELS["skewed"].trace(cache_lines=CONFIG.num_sets * CONFIG.ways, seed=0)

    stats = benchmark(lambda: simulate_trace(trace, CONFIG, "plru"))
    assert stats.accesses == len(trace)


def test_e3_runner_speedup(save_result, jobs):
    """Acceptance timing: the E3 grid, serial versus parallel.

    Records wall-clock seconds for the serial path and for the parallel
    runner (``--jobs`` when given, else one worker per core, capped at
    4).  The >= 2x assertion only applies on machines with at least four
    cores and four workers — on smaller runners the numbers are recorded
    but not asserted, since the speedup cannot physically appear.
    """
    cores = os.cpu_count() or 1
    workers = jobs if jobs and jobs > 1 else min(4, cores)

    # Pin both sides to the interpreter: this test measures how the
    # *runner* scales, and the compiled kernel (benchmarked separately in
    # bench_kernel.py) would shrink per-cell work until pool startup
    # noise dominates the ratio.
    with kernel_disabled():
        clear_memo()
        start = time.perf_counter()
        serial_matrix = compute_matrix(jobs=0, memoize=False)
        serial_seconds = time.perf_counter() - start

        clear_memo()
        start = time.perf_counter()
        parallel_matrix = compute_matrix(jobs=workers, memoize=False)
        parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    table = format_table(
        ["mode", "cells", "seconds", "speedup"],
        [
            ["serial", len(serial_matrix.cells), f"{serial_seconds:.3f}", "1.00x"],
            [
                f"jobs={workers}",
                len(parallel_matrix.cells),
                f"{parallel_seconds:.3f}",
                f"{speedup:.2f}x",
            ],
        ],
        title=f"E3 runner speedup ({cores} cores)",
    )
    save_result(
        "e3_runner_speedup",
        table,
        data={
            "cells": len(serial_matrix.cells),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "identical": serial_matrix == parallel_matrix,
        },
        params={"cores": cores, "workers": workers},
    )

    # Determinism is unconditional; the speedup bar needs the cores.
    assert serial_matrix == parallel_matrix
    if cores >= 4 and workers >= 4:
        assert speedup >= 2.0, f"expected >= 2x with jobs={workers}, got {speedup:.2f}x"
