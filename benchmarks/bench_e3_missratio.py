"""E3 — Figure: miss ratios of the policies across workloads.

The performance half of the paper's evaluation: replay workload traces
under every policy of interest and compare miss ratios.  The figure's
series become the columns of the saved table.  Shape expectations
asserted below: all policies tie on a cache-resident loop, LRU-like
policies thrash on loops just above the cache while insertion policies
(LIP/DIP) survive them, and FIFO trails LRU on reuse-heavy workloads.
"""

import pytest

from repro.cache import CacheConfig
from repro.eval import miss_ratio_matrix
from repro.util.tables import format_table
from repro.workloads import workload_suite

POLICIES = ["lru", "fifo", "plru", "bitplru", "nru", "srrip", "lip", "dip", "random"]
CONFIG = CacheConfig("L2", 64 * 1024, 8)  # 1024 lines


def compute_matrix():
    traces = workload_suite(cache_lines=CONFIG.num_sets * CONFIG.ways, seed=0)
    return miss_ratio_matrix(traces, CONFIG, POLICIES, seed=0)


def test_e3_missratio_matrix(benchmark, save_result):
    matrix = benchmark.pedantic(compute_matrix, rounds=1, iterations=1)
    table = format_table(
        ["workload"] + matrix.policies(),
        matrix.rows(),
        title=f"E3: miss ratios @ {CONFIG.describe()}",
    )
    save_result("e3_missratio", table)

    # Shape assertions (the paper's qualitative findings).
    assert matrix.ratio("lru", "loop-friendly") == matrix.ratio("fifo", "loop-friendly")
    assert matrix.ratio("lip", "loop-thrashing") < 0.5 < matrix.ratio("lru", "loop-thrashing")
    assert matrix.ratio("dip", "loop-thrashing") < 0.5
    assert matrix.ratio("fifo", "skewed") > matrix.ratio("lru", "skewed")
    assert matrix.ratio("plru", "skewed") == pytest.approx(
        matrix.ratio("lru", "skewed"), rel=0.1
    )


def test_e3_simulation_throughput(benchmark):
    """Timing kernel: one policy x one workload simulation."""
    from repro.eval import simulate_trace
    from repro.workloads import APP_MODELS

    trace = APP_MODELS["skewed"].trace(cache_lines=CONFIG.num_sets * CONFIG.ways, seed=0)

    stats = benchmark(lambda: simulate_trace(trace, CONFIG, "plru"))
    assert stats.accesses == len(trace)
