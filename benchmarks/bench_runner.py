"""BENCH — persistent worker pool versus a fresh pool per round.

The acceptance benchmark for the PR-8 runner: the same experiment grid
(every workload-suite trace under three policies, memoization off so
every cell really executes) is driven for ``ROUNDS`` rounds twice —

* **baseline**: ``ExperimentRunner(reuse_pool=False)``, which builds a
  private worker pool for every ``map()`` call and tears it down after,
  the pre-PR-8 per-round lifecycle (workers re-fork, trace broadcasts
  re-ship, kernel caches re-warm every round);
* **persistent**: one process-wide pool spawned lazily on the first
  round and reused for the rest, traces broadcast once over shared
  memory, chunk sizes adapted from observed cell timings.

Acceptance, per ISSUE/ROADMAP:

* both legs produce matrices bit-identical to the serial reference;
* the persistent leg's ledger shows ``runner.pool.spawned == 1`` (and
  rounds-1 reuses);
* the persistent leg is at least 2x faster overall.

Results land in ``benchmarks/results/bench_runner.txt`` with metrics
and ledger sidecars, plus the ``BENCH_runner.json`` trajectory point.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cache import CacheConfig
from repro.obs import metrics as obs_metrics
from repro.obs.result import ExperimentResult
from repro.runner import (
    ExperimentRunner,
    SimCell,
    clear_memo,
    run_sim_cells,
    shutdown_pool,
)
from repro.util.tables import format_table
from repro.workloads import workload_suite

RESULTS_DIR = Path(__file__).parent / "results"

# One policy over the full workload suite: enough compute for honest
# timings, small enough that per-round pool startup (what this bench
# measures) dominates the baseline leg on small CI boxes.
POLICIES = ["lru"]
CONFIG = CacheConfig("L2", 8 * 1024, 8)
ROUNDS = 8
JOBS = 4


def _grid_cells() -> list[SimCell]:
    traces = workload_suite(cache_lines=CONFIG.num_sets * CONFIG.ways, seed=0)
    return [
        SimCell.make(trace, CONFIG, policy, seed=1)
        for policy in POLICIES
        for trace in traces
    ]


def _run_rounds(cells, make_runner):
    """Run the grid ROUNDS times; returns (matrix, per-round seconds)."""
    matrix = None
    timings = []
    runner = make_runner()
    for _ in range(ROUNDS):
        clear_memo()  # every round re-executes every cell
        start = time.perf_counter()
        results = run_sim_cells(cells, runner=runner, memoize=False)
        timings.append(time.perf_counter() - start)
        assert matrix is None or results == matrix, "rounds must agree"
        matrix = results
    return matrix, timings


def _runner_counters() -> dict:
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    return {
        key: value
        for key, value in sorted(counters.items())
        if key.startswith("runner.")
    }


def test_bench_runner_persistent_pool(save_result):
    """Acceptance: the persistent pool makes grid rounds >= 2x faster."""
    cells = _grid_cells()
    shutdown_pool()

    # Serial reference: the bit-identity ground truth.
    serial_matrix, _ = _run_rounds(cells, lambda: ExperimentRunner())

    obs_metrics.DEFAULT.reset()
    baseline_matrix, baseline_rounds = _run_rounds(
        cells, lambda: ExperimentRunner(jobs=JOBS, reuse_pool=False)
    )
    baseline_counters = _runner_counters()

    obs_metrics.DEFAULT.reset()
    persistent_runner = ExperimentRunner(jobs=JOBS)
    try:
        persistent_matrix, persistent_rounds = _run_rounds(
            cells, lambda: persistent_runner
        )
        persistent_counters = _runner_counters()
    finally:
        shutdown_pool()

    assert baseline_matrix == serial_matrix
    assert persistent_matrix == serial_matrix
    # The pool lifecycle contract: one spawn, reused every later round.
    assert persistent_counters["runner.pool.spawned"] == 1
    assert persistent_counters["runner.pool.reused"] >= ROUNDS - 1
    assert baseline_counters["runner.pool.spawned"] == ROUNDS
    # Every cell ran in a worker in both legs.
    per_leg = ROUNDS * len(cells)
    assert persistent_counters.get("runner.cells.parallel") == per_leg
    assert baseline_counters.get("runner.cells.parallel") == per_leg
    # The transport plane engaged: traces went out as shm broadcasts.
    assert persistent_counters.get("runner.shm.broadcasts", 0) >= 1

    baseline_seconds = sum(baseline_rounds)
    persistent_seconds = sum(persistent_rounds)
    speedup = baseline_seconds / persistent_seconds if persistent_seconds else 0.0

    rows = [
        [index, f"{cold:.3f}", f"{warm:.3f}", f"{cold / warm:.1f}x" if warm else "-"]
        for index, (cold, warm) in enumerate(zip(baseline_rounds, persistent_rounds))
    ]
    rows.append(
        [
            "TOTAL",
            f"{baseline_seconds:.3f}",
            f"{persistent_seconds:.3f}",
            f"{speedup:.1f}x",
        ]
    )
    table = format_table(
        ["round", "fresh-pool s", "persistent s", "speedup"],
        rows,
        title=f"BENCH runner: per-round pools vs persistent pool "
        f"({len(cells)} cells x {ROUNDS} rounds, jobs={JOBS})",
    )

    data = {
        "rounds": ROUNDS,
        "cells": len(cells),
        "baseline_rounds": baseline_rounds,
        "persistent_rounds": persistent_rounds,
        "baseline_seconds": baseline_seconds,
        "persistent_seconds": persistent_seconds,
        "speedup": speedup,
        "baseline_counters": baseline_counters,
        "persistent_counters": persistent_counters,
    }
    params = {
        "policies": POLICIES,
        "config": CONFIG.name,
        "rounds": ROUNDS,
        "jobs": JOBS,
    }
    save_result("bench_runner", table, data=data, params=params)

    point = ExperimentResult(
        name="bench_runner",
        params=json.loads(json.dumps(params, default=str)),
        data=json.loads(json.dumps(data, default=str)),
        metrics=obs_metrics.DEFAULT.snapshot(),
    )
    trajectory = RESULTS_DIR / "BENCH_runner.json"
    trajectory.write_text(point.to_json(indent=2) + "\n")
    print(f"[trajectory point saved to {trajectory}]")

    assert speedup >= 2.0, (
        f"persistent pool only {speedup:.1f}x faster than per-round pools "
        f"({baseline_seconds:.3f}s -> {persistent_seconds:.3f}s)"
    )
