"""One-bit recency policies: bit-PLRU ("MRU") and NRU.

Both keep a single *recently used* bit per way and evict a way whose bit
is clear.  They differ in when the bits saturate:

* **Bit-PLRU / MRU**: setting the last remaining zero bit immediately
  clears all *other* bits (the accessed way keeps its set bit).  This is
  the "MRU" policy in the nanoBench taxonomy.
* **NRU**: bits saturate silently; only when a victim is needed and no
  zero bit exists are all bits cleared, then the leftmost way is evicted.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.policies.base import ReplacementPolicy
from repro.policies.registry import register


@register(tags=("default-eval", "default-predictability"))
class BitPlruPolicy(ReplacementPolicy):
    """Bit-PLRU (a.k.a. MRU replacement): eager bit reset on saturation."""

    NAME = "bitplru"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._bits = [0] * ways

    def _mark(self, way: int) -> None:
        self._bits[way] = 1
        if all(self._bits):
            self._bits = [0] * self.ways
            self._bits[way] = 1

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._mark(way)

    def evict(self) -> int:
        for way, bit in enumerate(self._bits):
            if bit == 0:
                return way
        raise AssertionError("bit-PLRU invariant violated: no zero bit")

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._mark(way)

    def reset(self) -> None:
        self._bits = [0] * self.ways

    def state_key(self) -> Hashable:
        return tuple(self._bits)

    def clone(self) -> "BitPlruPolicy":
        copy = BitPlruPolicy(self.ways)
        copy._bits = list(self._bits)
        return copy


@register(tags=("default-predictability",))
class NruPolicy(ReplacementPolicy):
    """Not-recently-used: lazy bit reset during victim search."""

    NAME = "nru"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._bits = [0] * ways

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._bits[way] = 1

    def evict(self) -> int:
        for way, bit in enumerate(self._bits):
            if bit == 0:
                return way
        # All ways recently used: clear every bit and restart the search.
        self._bits = [0] * self.ways
        return 0

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._bits[way] = 1

    def reset(self) -> None:
        self._bits = [0] * self.ways

    def state_key(self) -> Hashable:
        return tuple(self._bits)

    def clone(self) -> "NruPolicy":
        copy = NruPolicy(self.ways)
        copy._bits = list(self._bits)
        return copy
