"""Replacement policy interface.

A :class:`ReplacementPolicy` instance manages the replacement state of a
*single cache set* with a fixed number of ways.  The cache simulator owns
the mapping from tags to ways and drives the policy through three events:

* :meth:`ReplacementPolicy.touch` — an access hit way ``w``;
* :meth:`ReplacementPolicy.evict` — a miss occurred in a full set and a
  victim way must be chosen (may mutate state, e.g. RRIP aging);
* :meth:`ReplacementPolicy.fill` — a new block was installed in way ``w``
  (either the victim or a previously invalid way).

Policies that need cache-global coordination (set dueling in DIP/DRRIP)
share a context object created once per cache via
:meth:`ReplacementPolicy.create_shared`; standalone instances create a
private context so a policy is always usable on its own.

Determinism contract: policies that do not draw randomness must expose
their full state through :meth:`ReplacementPolicy.state_key` so that the
predictability analyses in :mod:`repro.eval.predictability` can enumerate
the reachable state space.  Randomized policies return ``None`` there.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable

from repro.errors import ConfigurationError
from repro.util.rng import SeededRng


class SharedContext:
    """Base class for cache-global policy state (e.g. duel counters).

    The default context carries nothing; policies using set dueling
    subclass it.
    """

    def reset(self) -> None:
        """Reset cache-global state; called when the owning cache resets."""


class ReplacementPolicy(ABC):
    """Replacement state of one cache set.

    Subclasses must set :attr:`NAME` (the registry key) and may set
    :attr:`DETERMINISTIC` to ``False`` for randomized policies.
    """

    NAME: str = ""
    DETERMINISTIC: bool = True

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {ways}")
        self.ways = ways

    # -- cache-global coordination -------------------------------------
    @classmethod
    def create_shared(cls, num_sets: int, rng: SeededRng | None = None) -> SharedContext:
        """Create the cache-global context shared by all sets of a cache."""
        return SharedContext()

    # -- event interface ------------------------------------------------
    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""

    @abstractmethod
    def evict(self) -> int:
        """Choose (and account for) a victim way in a full set."""

    @abstractmethod
    def fill(self, way: int) -> None:
        """Record that a new block was installed in ``way``."""

    @abstractmethod
    def reset(self) -> None:
        """Return to the initial (power-on) state."""

    # -- introspection ---------------------------------------------------
    @abstractmethod
    def state_key(self) -> Hashable | None:
        """Hashable canonical state, or None for randomized policies."""

    @abstractmethod
    def clone(self) -> "ReplacementPolicy":
        """Deep copy sharing the same cache-global context, if any."""

    # -- helpers ----------------------------------------------------------
    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise ValueError(f"way {way} out of range for {self.ways}-way set")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ways={self.ways}>"
