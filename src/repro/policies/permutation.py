"""Permutation policies: the formal policy class of the paper.

A permutation policy of associativity *A* orders the blocks of a set in
*positions* ``0 .. A-1``.  Position ``A-1`` is the eviction position.  The
policy is fully described by:

* ``hit_perms`` — *A* permutations; a hit on the block in position ``i``
  moves every block from its old position ``p`` to ``hit_perms[i][p]``;
* ``miss_perm`` — one permutation; on a miss the block in position
  ``A-1`` is evicted, every surviving block moves from ``p`` to
  ``miss_perm[p]``, and the incoming block takes position
  ``miss_perm[A-1]``.

The classic policies are instances:

* LRU: a hit promotes to position 0, a miss inserts at position 0
  (``miss_perm = (1, 2, ..., A-1, 0)``).
* FIFO: hits are the identity, misses insert at position 0.
* Tree-PLRU: also a permutation policy (Abel & Reineke, RTAS 2013); its
  vectors are *derived computationally* from the tree implementation by
  :func:`repro.core.permutation.derive_spec_from_policy`.

Because the class is finitely parameterised and the state is observable
through hits and misses alone, permutation policies are learnable from
black-box measurements — the core idea the paper exploits.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError, UnknownPolicyError
from repro.policies.base import ReplacementPolicy
from repro.policies.registry import register_builder


def _is_permutation(vector: Sequence[int], size: int) -> bool:
    return len(vector) == size and sorted(vector) == list(range(size))


def apply_permutation(order: Sequence, perm: Sequence[int]) -> list:
    """Move item at position ``p`` to position ``perm[p]`` for all p."""
    result = [None] * len(order)
    for position, item in enumerate(order):
        result[perm[position]] = item
    return result


def compose(outer: Sequence[int], inner: Sequence[int]) -> tuple[int, ...]:
    """Return the permutation "apply ``inner`` first, then ``outer``"."""
    return tuple(outer[inner[p]] for p in range(len(inner)))


def invert(perm: Sequence[int]) -> tuple[int, ...]:
    """Return the inverse permutation."""
    result = [0] * len(perm)
    for position, target in enumerate(perm):
        result[target] = position
    return tuple(result)


def identity(size: int) -> tuple[int, ...]:
    """Return the identity permutation of the given size."""
    return tuple(range(size))


@dataclass(frozen=True)
class PermutationSpec:
    """Immutable description of a permutation policy.

    Attributes:
        ways: associativity A.
        hit_perms: A permutations; ``hit_perms[i][p]`` is the new position
            of the block that was in position ``p`` when the block in
            position ``i`` is hit.
        miss_perm: movement of blocks on a miss; ``miss_perm[ways - 1]``
            is the position the incoming block is inserted at.
    """

    ways: int
    hit_perms: tuple[tuple[int, ...], ...]
    miss_perm: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ConfigurationError("ways must be >= 1")
        if len(self.hit_perms) != self.ways:
            raise ConfigurationError(
                f"need {self.ways} hit permutations, got {len(self.hit_perms)}"
            )
        for i, perm in enumerate(self.hit_perms):
            if not _is_permutation(perm, self.ways):
                raise ConfigurationError(f"hit_perms[{i}] = {perm} is not a permutation")
        if not _is_permutation(self.miss_perm, self.ways):
            raise ConfigurationError(f"miss_perm = {self.miss_perm} is not a permutation")

    @property
    def eviction_position(self) -> int:
        """The position whose occupant is evicted on a miss (always A-1)."""
        return self.ways - 1

    @property
    def insertion_position(self) -> int:
        """The position a newly inserted block receives."""
        return self.miss_perm[self.ways - 1]

    def conjugate(self, relabel: Sequence[int]) -> "PermutationSpec":
        """Rename positions by ``relabel`` (old position -> new position).

        The relabeling must fix the eviction position; otherwise the
        resulting spec would not describe the same observable behaviour.
        """
        if not _is_permutation(relabel, self.ways):
            raise ConfigurationError(f"{relabel} is not a permutation")
        if relabel[self.ways - 1] != self.ways - 1:
            raise ConfigurationError("relabeling must fix the eviction position")
        inverse = invert(relabel)
        new_hits = [None] * self.ways
        for i in range(self.ways):
            # A hit on new position j is a hit on old position inverse[j].
            new_hits[relabel[i]] = compose(relabel, compose(self.hit_perms[i], inverse))
        new_miss = compose(relabel, compose(self.miss_perm, inverse))
        return PermutationSpec(self.ways, tuple(new_hits), new_miss)

    def describe(self) -> str:
        """Multi-line human-readable rendering of the vectors."""
        lines = [f"permutation policy, {self.ways} ways"]
        for i, perm in enumerate(self.hit_perms):
            lines.append(f"  hit@{i}:  {list(perm)}")
        lines.append(f"  miss:   {list(self.miss_perm)} (insert at {self.insertion_position})")
        return "\n".join(lines)


def lru_spec(ways: int) -> PermutationSpec:
    """The LRU policy as a permutation spec."""
    hits = []
    for i in range(ways):
        perm = [0] * ways
        for p in range(ways):
            if p == i:
                perm[p] = 0
            elif p < i:
                perm[p] = p + 1
            else:
                perm[p] = p
        hits.append(tuple(perm))
    miss = tuple(list(range(1, ways)) + [0])
    return PermutationSpec(ways, tuple(hits), miss)


def fifo_spec(ways: int) -> PermutationSpec:
    """The FIFO policy as a permutation spec."""
    hits = tuple(identity(ways) for _ in range(ways))
    miss = tuple(list(range(1, ways)) + [0])
    return PermutationSpec(ways, hits, miss)


class PermutationPolicy(ReplacementPolicy):
    """Replacement policy driven by a :class:`PermutationSpec`.

    The state is the list ``order`` with ``order[p]`` the way currently in
    position ``p``.  Filling a way that is not in the eviction position
    (an invalid-way fill) first swaps that way into the eviction position;
    since invalid ways carry no meaningful history this matches hardware
    behaviour, and fills that follow :meth:`evict` are unaffected.
    """

    NAME = "permutation"

    # State is kept twice: ``_order[p]`` is the way in position ``p`` and
    # ``_position[w]`` is the position of way ``w``.  The inverse map
    # turns the ``list.index`` scan that used to start every touch/fill
    # into one list lookup; both maps are rebuilt in the single pass that
    # applies a permutation, so the invariant costs nothing extra.

    def __init__(self, ways: int, spec: PermutationSpec) -> None:
        super().__init__(ways)
        if spec.ways != ways:
            raise ConfigurationError(f"spec is for {spec.ways} ways, policy has {ways}")
        self.spec = spec
        self._order = list(range(ways))
        self._position = list(range(ways))

    def position_of(self, way: int) -> int:
        """Return the current position of ``way`` (0 = most protected side)."""
        self._check_way(way)
        return self._position[way]

    def _permute(self, perm: Sequence[int]) -> None:
        """Apply ``perm`` to the order, updating both maps in one pass."""
        new_order = [0] * self.ways
        position = self._position
        for old_position, way in enumerate(self._order):
            new_position = perm[old_position]
            new_order[new_position] = way
            position[way] = new_position
        self._order = new_order

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._permute(self.spec.hit_perms[self._position[way]])

    def evict(self) -> int:
        return self._order[self.spec.eviction_position]

    def fill(self, way: int) -> None:
        self._check_way(way)
        position = self._position[way]
        evict_pos = self.spec.eviction_position
        if position != evict_pos:
            order = self._order
            other = order[evict_pos]
            order[position], order[evict_pos] = other, way
            self._position[way] = evict_pos
            self._position[other] = position
        self._permute(self.spec.miss_perm)

    def reset(self) -> None:
        self._order = list(range(self.ways))
        self._position = list(range(self.ways))

    def state_key(self) -> Hashable:
        return tuple(self._order)

    def clone(self) -> "PermutationPolicy":
        copy = PermutationPolicy(self.ways, self.spec)
        copy._order = list(self._order)
        copy._position = list(self._position)
        return copy


def _build_from_spec(ways, set_index, shared, rng, params):
    spec = params.get("spec")
    if spec is None:
        raise UnknownPolicyError("the 'permutation' policy requires a spec= parameter")
    return PermutationPolicy(ways, spec)


register_builder("permutation", PermutationPolicy, _build_from_spec)
