"""Least recently used (LRU) and its insertion-policy variants LIP/BIP/DIP.

LRU keeps the ways of a set in a recency stack; the least recently used
way is evicted.  The insertion-policy variants from Qureshi et al. (ISCA
2007) reuse the LRU stack but change where a *newly inserted* block lands:

* **LIP** (LRU insertion policy) inserts at the LRU position, so a block
  must be re-referenced once before it is protected — streaming data
  evicts itself.
* **BIP** (bimodal insertion policy) inserts at the MRU position with a
  small probability ``epsilon`` and at the LRU position otherwise.
* **DIP** (dynamic insertion policy) chooses between LRU and BIP with set
  dueling: a few leader sets always use one of the two component policies
  and a saturating counter of their misses steers all follower sets.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.policies.base import ReplacementPolicy, SharedContext
from repro.policies.dueling import DuelController
from repro.policies.registry import register
from repro.util.rng import SeededRng


@register(tags=("default-eval", "default-predictability"))
class LruPolicy(ReplacementPolicy):
    """Classic least recently used replacement."""

    NAME = "lru"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # _stack[0] is the most recently used way, _stack[-1] the LRU way.
        self._stack = list(range(ways))

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._stack.remove(way)
        self._stack.insert(0, way)

    def evict(self) -> int:
        return self._stack[-1]

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._stack.remove(way)
        self._stack.insert(0, way)

    def reset(self) -> None:
        self._stack = list(range(self.ways))

    def state_key(self) -> Hashable:
        return tuple(self._stack)

    def clone(self) -> "LruPolicy":
        copy = LruPolicy(self.ways)
        copy._stack = list(self._stack)
        return copy


@register
class LipPolicy(LruPolicy):
    """LRU stack with insertion at the LRU position (LIP)."""

    NAME = "lip"

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._stack.remove(way)
        self._stack.append(way)

    def clone(self) -> "LipPolicy":
        copy = LipPolicy(self.ways)
        copy._stack = list(self._stack)
        return copy


@register(rng=True)
class BipPolicy(LruPolicy):
    """Bimodal insertion: MRU insertion with probability ``epsilon``."""

    NAME = "bip"
    DETERMINISTIC = False

    def __init__(self, ways: int, rng: SeededRng | None = None, epsilon: float = 1 / 32) -> None:
        super().__init__(ways)
        self._rng = rng if rng is not None else SeededRng(0)
        self.epsilon = epsilon

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._stack.remove(way)
        if self._rng.random() < self.epsilon:
            self._stack.insert(0, way)
        else:
            self._stack.append(way)

    def state_key(self) -> None:
        return None

    def clone(self) -> "BipPolicy":
        copy = BipPolicy(self.ways, rng=self._rng, epsilon=self.epsilon)
        copy._stack = list(self._stack)
        return copy


class DipSharedContext(SharedContext):
    """Cache-global duel state for DIP."""

    def __init__(self, num_sets: int, rng: SeededRng | None) -> None:
        self.controller = DuelController(num_sets)
        self.rng = rng if rng is not None else SeededRng(0)

    def reset(self) -> None:
        self.controller.reset()


@register(dueling=True)
class DipPolicy(ReplacementPolicy):
    """Dynamic insertion policy: set dueling between LRU and BIP.

    A standalone instance (no shared context) acts as a follower of a
    private controller, which makes it behave like LRU until misses steer
    it; embedded in a cache, leader sets are chosen by the controller.
    """

    NAME = "dip"
    DETERMINISTIC = False

    def __init__(
        self,
        ways: int,
        rng: SeededRng | None = None,
        shared: DipSharedContext | None = None,
        set_index: int = 0,
        epsilon: float = 1 / 32,
    ) -> None:
        super().__init__(ways)
        if shared is None:
            shared = DipSharedContext(num_sets=1, rng=rng)
        self._shared = shared
        self._set_index = set_index
        self._lru = LruPolicy(ways)
        self._bip = BipPolicy(ways, rng=shared.rng.fork(f"bip-{set_index}"), epsilon=epsilon)
        self.epsilon = epsilon

    @classmethod
    def create_shared(cls, num_sets: int, rng: SeededRng | None = None) -> DipSharedContext:
        return DipSharedContext(num_sets, rng)

    def _active(self) -> LruPolicy:
        if self._shared.controller.use_primary(self._set_index):
            return self._lru
        return self._bip

    def touch(self, way: int) -> None:
        # Both component stacks track recency identically on hits so that
        # switching the winner mid-run keeps a coherent state.
        self._lru.touch(way)
        self._bip.touch(way)

    def evict(self) -> int:
        self._shared.controller.record_miss(self._set_index)
        return self._active().evict()

    def fill(self, way: int) -> None:
        if self._active() is self._lru:
            self._lru.fill(way)
            # Mirror the placement into the BIP stack deterministically so
            # the two stacks hold the same set of ways.
            self._bip._stack.remove(way)
            self._bip._stack.insert(0, way)
        else:
            self._bip.fill(way)
            mru_inserted = self._bip._stack[0] == way
            self._lru._stack.remove(way)
            if mru_inserted:
                self._lru._stack.insert(0, way)
            else:
                self._lru._stack.append(way)

    def reset(self) -> None:
        self._lru.reset()
        self._bip.reset()

    def state_key(self) -> None:
        return None

    def clone(self) -> "DipPolicy":
        copy = DipPolicy(
            self.ways,
            shared=self._shared,
            set_index=self._set_index,
            epsilon=self.epsilon,
        )
        copy._lru = self._lru.clone()
        copy._bip = self._bip.clone()
        return copy
