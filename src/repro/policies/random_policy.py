"""Uniform random replacement."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy
from repro.policies.registry import register
from repro.util.rng import SeededRng


@register(rng=True, tags=("default-eval",))
class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way; hits and fills keep no state."""

    NAME = "random"
    DETERMINISTIC = False

    def __init__(self, ways: int, rng: SeededRng | None = None) -> None:
        super().__init__(ways)
        self._rng = rng if rng is not None else SeededRng(0)

    def touch(self, way: int) -> None:
        self._check_way(way)

    def evict(self) -> int:
        return self._rng.randrange(self.ways)

    def fill(self, way: int) -> None:
        self._check_way(way)

    def reset(self) -> None:
        """Random replacement is stateless; nothing to reset."""

    def state_key(self) -> None:
        return None

    def clone(self) -> "RandomPolicy":
        return RandomPolicy(self.ways, rng=self._rng)
