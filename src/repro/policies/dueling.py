"""Set dueling, the leader-set mechanism shared by DIP and DRRIP.

A :class:`DuelController` designates a small number of *leader sets* for
each of two component policies.  Leader sets always run their component;
every miss in a leader set nudges a saturating counter (PSEL) towards the
other component.  All remaining *follower sets* run whichever component
the counter currently favours.  (Qureshi et al., ISCA 2007.)
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class DuelController:
    """PSEL counter plus leader-set assignment for one cache.

    Args:
        num_sets: number of sets in the cache (>= 1).
        leaders_per_policy: leader sets dedicated to each component.
        psel_bits: width of the saturating selector counter.
    """

    def __init__(self, num_sets: int, leaders_per_policy: int = 4, psel_bits: int = 10) -> None:
        if num_sets < 1:
            raise ConfigurationError("num_sets must be >= 1")
        if psel_bits < 1:
            raise ConfigurationError("psel_bits must be >= 1")
        self.num_sets = num_sets
        self.psel_max = (1 << psel_bits) - 1
        self.psel_mid = 1 << (psel_bits - 1)
        self._psel = self.psel_mid
        # Interleave leaders across the index space: even slots lead for the
        # primary component, odd slots for the secondary one.
        leaders = min(leaders_per_policy, max(1, num_sets // 2))
        stride = max(1, num_sets // (2 * leaders))
        self._primary_leaders = frozenset((2 * i * stride) % num_sets for i in range(leaders))
        self._secondary_leaders = frozenset(
            ((2 * i + 1) * stride) % num_sets for i in range(leaders)
        ) - self._primary_leaders

    def reset(self) -> None:
        """Reset the selector to its neutral midpoint."""
        self._psel = self.psel_mid

    def is_primary_leader(self, set_index: int) -> bool:
        """Return True if ``set_index`` always runs the primary policy."""
        return set_index in self._primary_leaders

    def is_secondary_leader(self, set_index: int) -> bool:
        """Return True if ``set_index`` always runs the secondary policy."""
        return set_index in self._secondary_leaders

    def record_miss(self, set_index: int) -> None:
        """Account a miss; only leader-set misses move the selector.

        A miss in a primary leader is evidence against the primary policy,
        so it moves the selector towards the secondary component, and vice
        versa.
        """
        if set_index in self._primary_leaders:
            self._psel = min(self.psel_max, self._psel + 1)
        elif set_index in self._secondary_leaders:
            self._psel = max(0, self._psel - 1)

    def use_primary(self, set_index: int) -> bool:
        """Return True if ``set_index`` should currently run the primary."""
        if set_index in self._primary_leaders:
            return True
        if set_index in self._secondary_leaders:
            return False
        return self._psel < self.psel_mid

    @property
    def psel(self) -> int:
        """Current selector value (low favours the primary policy)."""
        return self._psel
