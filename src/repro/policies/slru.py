"""Segmented LRU (SLRU).

The set is split into a *probationary* and a *protected* segment, each
ordered by recency:

* new blocks enter at the MRU end of the probationary segment;
* a hit promotes the block to the MRU end of the protected segment,
  demoting the protected LRU block back to probationary MRU if the
  protected segment would exceed its capacity;
* the victim is the probationary LRU block (protected blocks are only
  evicted when the probationary segment is empty).

One access therefore separates "seen once" from "reused" data, which
gives SLRU scan resistance similar in spirit to the QLRU family while
staying purely recency-based.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.errors import ConfigurationError
from repro.policies.base import ReplacementPolicy
from repro.policies.registry import register


@register
class SlruPolicy(ReplacementPolicy):
    """Segmented LRU with a configurable protected-segment capacity."""

    NAME = "slru"

    def __init__(self, ways: int, protected_ways: int | None = None) -> None:
        super().__init__(ways)
        if protected_ways is None:
            protected_ways = ways // 2
        if not 0 <= protected_ways < ways:
            raise ConfigurationError(
                f"protected_ways must be in [0, ways), got {protected_ways}"
            )
        self.protected_ways = protected_ways
        # Both lists are MRU-first; together they partition all ways.
        self._probationary = list(range(ways))
        self._protected: list[int] = []

    def _promote(self, way: int) -> None:
        if way in self._protected:
            self._protected.remove(way)
        else:
            self._probationary.remove(way)
        self._protected.insert(0, way)
        while len(self._protected) > self.protected_ways:
            demoted = self._protected.pop()
            self._probationary.insert(0, demoted)

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._promote(way)

    def evict(self) -> int:
        if self._probationary:
            return self._probationary[-1]
        return self._protected[-1]

    def fill(self, way: int) -> None:
        self._check_way(way)
        if way in self._protected:
            self._protected.remove(way)
        else:
            self._probationary.remove(way)
        self._probationary.insert(0, way)

    def reset(self) -> None:
        self._probationary = list(range(self.ways))
        self._protected = []

    def state_key(self) -> Hashable:
        return (tuple(self._probationary), tuple(self._protected))

    def clone(self) -> "SlruPolicy":
        copy = SlruPolicy(self.ways, protected_ways=self.protected_ways)
        copy._probationary = list(self._probationary)
        copy._protected = list(self._protected)
        return copy
