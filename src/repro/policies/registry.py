"""The public policy registry.

Registry keys are the single source of truth for every place that refers
to a policy by name: the CLI, the runner's simulation cells, the
hardware catalog and the benchmarks.  Policies register themselves at
class-definition time with the :func:`register` decorator::

    @register(tags=("default-eval",))
    class MyPolicy(ReplacementPolicy):
        NAME = "mypolicy"
        ...

and are then constructible via :func:`get` (one standalone per-set
instance) or :class:`PolicyFactory` (per-set instances sharing one
cache-global context, as a whole cache needs).

Builder styles cover the constructor shapes in the library:

* plain — ``cls(ways, **params)`` (the default);
* ``rng=True`` — ``cls(ways, rng=<per-set fork>, **params)`` for
  randomized policies;
* ``dueling=True`` — ``cls(ways, shared=..., set_index=..., **params)``
  for set-dueling policies;
* :func:`register_builder` — anything else (the qLRU presets, the
  spec-parameterised permutation policy).

``tags`` group policies for default selections (e.g. the CLI's
``--policies`` defaults come from :func:`default_policies`), so no
caller needs to re-list policy names by hand.

Duplicate names are rejected eagerly with
:class:`~repro.errors.ConfigurationError` — a silent overwrite would let
two experiments disagree about what a name means.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError, UnknownPolicyError
from repro.policies.base import ReplacementPolicy, SharedContext
from repro.util.rng import SeededRng

__all__ = [
    "PolicyEntry",
    "PolicyFactory",
    "register",
    "register_builder",
    "unregister",
    "available",
    "default_policies",
    "get",
    "get_entry",
]

#: Builder signature: (ways, set_index, shared, rng, params) -> policy.
Builder = Callable[
    [int, int, "SharedContext | None", "SeededRng | None", dict], ReplacementPolicy
]


@dataclass(frozen=True)
class PolicyEntry:
    """One registry entry: name, implementing class, builder, tags."""

    name: str
    cls: type[ReplacementPolicy]
    builder: Builder
    tags: tuple[str, ...] = ()


#: name -> entry, in registration order (insertion-ordered dict).
_REGISTRY: dict[str, PolicyEntry] = {}


def register_builder(
    name: str,
    cls: type[ReplacementPolicy],
    builder: Builder,
    tags: Sequence[str] = (),
) -> None:
    """Register ``name`` with an explicit builder (the low-level hook)."""
    if not name:
        raise ConfigurationError(f"policy class {cls.__name__} has no registry name")
    if name in _REGISTRY:
        raise ConfigurationError(
            f"duplicate policy name {name!r}: already registered by "
            f"{_REGISTRY[name].cls.__name__}"
        )
    _REGISTRY[name] = PolicyEntry(name=name, cls=cls, builder=builder, tags=tuple(tags))


def register(
    cls: type[ReplacementPolicy] | None = None,
    *,
    name: str | None = None,
    rng: bool = False,
    dueling: bool = False,
    tags: Sequence[str] = (),
):
    """Class decorator adding a policy under ``name`` (default: ``cls.NAME``).

    Usable bare (``@register``) or with options
    (``@register(rng=True, tags=("default-eval",))``).
    """
    if rng and dueling:
        raise ConfigurationError("a policy builder cannot be both rng and dueling")

    def apply(policy_cls: type[ReplacementPolicy]) -> type[ReplacementPolicy]:
        key = name if name is not None else policy_cls.NAME

        if rng:

            def builder(ways, set_index, shared, per_cache_rng, params):
                set_rng = (
                    per_cache_rng.fork(f"{key}-{set_index}")
                    if per_cache_rng is not None
                    else None
                )
                return policy_cls(ways, rng=set_rng, **params)

        elif dueling:

            def builder(ways, set_index, shared, per_cache_rng, params):
                return policy_cls(ways, shared=shared, set_index=set_index, **params)

        else:

            def builder(ways, set_index, shared, per_cache_rng, params):
                return policy_cls(ways, **params)

        register_builder(key, policy_cls, builder, tags)
        return policy_cls

    if cls is None:
        return apply
    return apply(cls)


def unregister(name: str) -> None:
    """Remove an entry (plugin/test hygiene; unknown names are ignored)."""
    _REGISTRY.pop(name, None)


def get_entry(name: str) -> PolicyEntry:
    """Look up a registry entry, raising :class:`UnknownPolicyError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown policy {name!r}; known: {', '.join(available())}"
        ) from None


def available(tag: str | None = None) -> list[str]:
    """Registered policy names, sorted; optionally only those tagged ``tag``."""
    if tag is None:
        return sorted(_REGISTRY)
    return sorted(entry.name for entry in _REGISTRY.values() if tag in entry.tags)


def default_policies(group: str) -> list[str]:
    """Names tagged ``default-<group>``, in registration order.

    Registration order (not alphabetical) so that curated defaults keep
    their conventional reading order (``lru`` first, baselines before
    variants) in CLI tables.
    """
    tag = f"default-{group}"
    return [entry.name for entry in _REGISTRY.values() if tag in entry.tags]


class PolicyFactory:
    """Named policy constructor used to build every set of a cache.

    Example::

        factory = PolicyFactory("dip")
        shared = factory.create_shared(num_sets=64, rng=SeededRng(1))
        policies = [factory.build(8, s, shared) for s in range(64)]
    """

    def __init__(self, name: str, **params) -> None:
        entry = get_entry(name)
        self.name = name
        self.params = params
        self._cls = entry.cls
        self._builder = entry.builder

    def create_shared(self, num_sets: int, rng: SeededRng | None = None) -> SharedContext:
        """Create the cache-global context for this policy."""
        return self._cls.create_shared(num_sets, rng)

    def build(
        self,
        ways: int,
        set_index: int = 0,
        shared: SharedContext | None = None,
        rng: SeededRng | None = None,
    ) -> ReplacementPolicy:
        """Construct the policy instance for one set."""
        policy = self._builder(ways, set_index, shared, rng, self.params)
        try:
            # Provenance stamp: lets the kernel's compiled_for() route a
            # registry-built instance to the shared per-name automaton
            # cache (and through it, the on-disk artifact store).
            policy._registry_key = (self.name, tuple(sorted(self.params.items())))
        except (AttributeError, TypeError):  # __slots__ or unhashable params
            pass
        return policy

    @property
    def deterministic(self) -> bool:
        """True if the policy draws no randomness."""
        return self._cls.DETERMINISTIC

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolicyFactory({self.name!r}, {self.params!r})"


def get(
    name: str, ways: int, rng: SeededRng | None = None, **params
) -> ReplacementPolicy:
    """Build a standalone single-set policy instance by name."""
    factory = PolicyFactory(name, **params)
    shared = factory.create_shared(num_sets=1, rng=rng)
    return factory.build(ways, set_index=0, shared=shared, rng=rng)
