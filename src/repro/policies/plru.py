"""Tree-based pseudo-LRU (PLRU), the L1 policy of the Intel processors
examined by the paper.

The state is a complete binary tree of ``ways - 1`` direction bits stored
in heap order (node ``k`` has children ``2k + 1`` and ``2k + 2``; the
leaves, left to right, are the ways).  A bit value of 0 points left and 1
points right towards the *next victim*.  Every access (hit or fill) to a
way flips the bits on the root-to-leaf path so that they point *away*
from the accessed way, which approximates recency with one bit per tree
node instead of a full ordering.

PLRU is a permutation policy (Abel & Reineke, RTAS 2013); the derivation
of its permutation vectors from this implementation lives in
:func:`repro.core.permutation.derive_spec_from_policy` and is checked by
the test suite.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.errors import ConfigurationError
from repro.policies.base import ReplacementPolicy
from repro.policies.registry import register
from repro.util.bits import ilog2, is_power_of_two


@register(tags=("default-eval", "default-predictability"))
class PlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU for power-of-two associativities."""

    NAME = "plru"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if not is_power_of_two(ways):
            raise ConfigurationError(f"tree PLRU requires power-of-two ways, got {ways}")
        self._levels = ilog2(ways)
        self._bits = [0] * (ways - 1)

    def _path_nodes(self, way: int) -> list[tuple[int, int]]:
        """Return (node, direction) pairs on the root-to-leaf path of ``way``.

        ``direction`` is 0 if the path continues into the left child and 1
        for the right child.
        """
        nodes = []
        node = 0
        for level in range(self._levels - 1, -1, -1):
            direction = (way >> level) & 1
            nodes.append((node, direction))
            node = 2 * node + 1 + direction
        return nodes

    def _point_away(self, way: int) -> None:
        for node, direction in self._path_nodes(way):
            self._bits[node] = 1 - direction

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._point_away(way)

    def evict(self) -> int:
        node = 0
        for _ in range(self._levels):
            node = 2 * node + 1 + self._bits[node]
        return node - (self.ways - 1)

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._point_away(way)

    def reset(self) -> None:
        self._bits = [0] * (self.ways - 1)

    def state_key(self) -> Hashable:
        return tuple(self._bits)

    def clone(self) -> "PlruPolicy":
        copy = PlruPolicy(self.ways)
        copy._bits = list(self._bits)
        return copy
