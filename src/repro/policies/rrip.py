"""Re-reference interval prediction policies: SRRIP, BRRIP, DRRIP.

RRIP (Jaleel et al., ISCA 2010) attaches an M-bit *re-reference
prediction value* (RRPV) to every line; larger values predict a more
distant re-reference.  The victim is the leftmost line with the maximum
RRPV (``2**M - 1``); if none exists, all RRPVs are incremented until one
does.

* **SRRIP** inserts new lines with RRPV ``max - 1`` ("long") and promotes
  hits to RRPV 0 (hit priority).
* **BRRIP** inserts with RRPV ``max`` ("distant") most of the time and
  ``max - 1`` with a small probability, which protects the cache against
  thrashing working sets.
* **DRRIP** set-duels SRRIP against BRRIP (see
  :mod:`repro.policies.dueling`).

Modern Intel last-level caches implement close relatives of this family
(the QLRU variants in :mod:`repro.policies.qlru`), which is why it
belongs in the evaluation.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.errors import ConfigurationError
from repro.policies.base import ReplacementPolicy, SharedContext
from repro.policies.dueling import DuelController
from repro.policies.registry import register
from repro.util.rng import SeededRng


@register(tags=("default-eval",))
class SrripPolicy(ReplacementPolicy):
    """Static RRIP with hit-priority promotion."""

    NAME = "srrip"

    def __init__(self, ways: int, rrpv_bits: int = 2) -> None:
        super().__init__(ways)
        if rrpv_bits < 1:
            raise ConfigurationError("rrpv_bits must be >= 1")
        self.rrpv_bits = rrpv_bits
        self.rrpv_max = (1 << rrpv_bits) - 1
        self._rrpv = [self.rrpv_max] * ways

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._rrpv[way] = 0

    def evict(self) -> int:
        while True:
            for way, value in enumerate(self._rrpv):
                if value == self.rrpv_max:
                    return way
            self._rrpv = [value + 1 for value in self._rrpv]

    def _insertion_rrpv(self) -> int:
        return self.rrpv_max - 1

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._rrpv[way] = self._insertion_rrpv()

    def reset(self) -> None:
        self._rrpv = [self.rrpv_max] * self.ways

    def state_key(self) -> Hashable:
        return tuple(self._rrpv)

    def clone(self) -> "SrripPolicy":
        copy = type(self)(self.ways, rrpv_bits=self.rrpv_bits)
        copy._rrpv = list(self._rrpv)
        return copy


@register(rng=True)
class BrripPolicy(SrripPolicy):
    """Bimodal RRIP: distant insertion with occasional long insertion."""

    NAME = "brrip"
    DETERMINISTIC = False

    def __init__(
        self,
        ways: int,
        rrpv_bits: int = 2,
        rng: SeededRng | None = None,
        epsilon: float = 1 / 32,
    ) -> None:
        super().__init__(ways, rrpv_bits=rrpv_bits)
        self._rng = rng if rng is not None else SeededRng(0)
        self.epsilon = epsilon

    def _insertion_rrpv(self) -> int:
        if self._rng.random() < self.epsilon:
            return self.rrpv_max - 1
        return self.rrpv_max

    def state_key(self) -> None:
        return None

    def clone(self) -> "BrripPolicy":
        copy = BrripPolicy(self.ways, rrpv_bits=self.rrpv_bits, rng=self._rng, epsilon=self.epsilon)
        copy._rrpv = list(self._rrpv)
        return copy


class DrripSharedContext(SharedContext):
    """Cache-global duel state for DRRIP."""

    def __init__(self, num_sets: int, rng: SeededRng | None) -> None:
        self.controller = DuelController(num_sets)
        self.rng = rng if rng is not None else SeededRng(0)

    def reset(self) -> None:
        self.controller.reset()


@register(dueling=True)
class DrripPolicy(ReplacementPolicy):
    """Dynamic RRIP: set dueling between SRRIP (primary) and BRRIP."""

    NAME = "drrip"
    DETERMINISTIC = False

    def __init__(
        self,
        ways: int,
        rrpv_bits: int = 2,
        rng: SeededRng | None = None,
        shared: DrripSharedContext | None = None,
        set_index: int = 0,
        epsilon: float = 1 / 32,
    ) -> None:
        super().__init__(ways)
        if shared is None:
            shared = DrripSharedContext(num_sets=1, rng=rng)
        self._shared = shared
        self._set_index = set_index
        self.rrpv_bits = rrpv_bits
        self.rrpv_max = (1 << rrpv_bits) - 1
        self.epsilon = epsilon
        self._rng = shared.rng.fork(f"brrip-{set_index}")
        self._rrpv = [self.rrpv_max] * ways

    @classmethod
    def create_shared(cls, num_sets: int, rng: SeededRng | None = None) -> DrripSharedContext:
        return DrripSharedContext(num_sets, rng)

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._rrpv[way] = 0

    def evict(self) -> int:
        self._shared.controller.record_miss(self._set_index)
        while True:
            for way, value in enumerate(self._rrpv):
                if value == self.rrpv_max:
                    return way
            self._rrpv = [value + 1 for value in self._rrpv]

    def fill(self, way: int) -> None:
        self._check_way(way)
        if self._shared.controller.use_primary(self._set_index):
            self._rrpv[way] = self.rrpv_max - 1
        elif self._rng.random() < self.epsilon:
            self._rrpv[way] = self.rrpv_max - 1
        else:
            self._rrpv[way] = self.rrpv_max

    def reset(self) -> None:
        self._rrpv = [self.rrpv_max] * self.ways

    def state_key(self) -> None:
        return None

    def clone(self) -> "DrripPolicy":
        copy = DrripPolicy(
            self.ways,
            rrpv_bits=self.rrpv_bits,
            shared=self._shared,
            set_index=self._set_index,
            epsilon=self.epsilon,
        )
        copy._rrpv = list(self._rrpv)
        return copy
