"""CLOCK (second chance) replacement.

The classic one-bit approximation of LRU with a rotating hand: every way
has a reference bit, set on access.  The victim search sweeps the hand
around the set, clearing reference bits, until it finds a way whose bit
is already clear — so a referenced line gets a "second chance" of one
full revolution.  Unlike NRU/bit-PLRU the victim choice depends on the
hand position, which makes CLOCK observably distinct from both (the
distinguishing-sequence search in :mod:`repro.core.distinguish` finds
short witnesses).
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.policies.base import ReplacementPolicy
from repro.policies.registry import register


@register
class ClockPolicy(ReplacementPolicy):
    """Second-chance replacement with a per-set hand."""

    NAME = "clock"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._referenced = [0] * ways
        self._hand = 0

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._referenced[way] = 1

    def evict(self) -> int:
        # At most two sweeps: the first clears bits, the second must find
        # a zero at the original hand position.
        for _ in range(2 * self.ways):
            if self._referenced[self._hand] == 0:
                return self._hand
            self._referenced[self._hand] = 0
            self._hand = (self._hand + 1) % self.ways
        raise AssertionError("CLOCK sweep failed to find a victim")

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._referenced[way] = 1
        if way == self._hand:
            self._hand = (self._hand + 1) % self.ways

    def reset(self) -> None:
        self._referenced = [0] * self.ways
        self._hand = 0

    def state_key(self) -> Hashable:
        return (tuple(self._referenced), self._hand)

    def clone(self) -> "ClockPolicy":
        copy = ClockPolicy(self.ways)
        copy._referenced = list(self._referenced)
        copy._hand = self._hand
        return copy
