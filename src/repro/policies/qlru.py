"""The parametric QLRU family (quad-age LRU).

Modern Intel L2/L3 caches implement deterministic 2-bit age policies that
follow-on work to the paper (nanoBench, CacheQuery) names
``QLRU_<hit>_<miss>_<replace>_<update>``.  This module implements the
family in the same spirit: each line carries a 2-bit age (0 = most
valuable, 3 = next victim) and a concrete policy is a choice of four
component functions:

* **hit function** — the new age of a line on a hit, as a function of its
  current age (a 4-tuple, e.g. ``(0, 0, 0, 0)`` always rejuvenates);
* **insertion age** — the age given to a newly filled line;
* **victim rule** — which line of age 3 is evicted (``"leftmost"`` or
  ``"rightmost"`` physical way);
* **aging rule** — what to do when no line has age 3: ``"to-max"``
  repeatedly increments every age until one saturates, ``"single"`` adds
  the single offset that makes the current maximum 3.

The named presets exposed through the registry are representative points
of this space; the identification engine in :mod:`repro.core.identify`
enumerates them when matching an unknown cache.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.errors import ConfigurationError
from repro.policies.base import ReplacementPolicy

MAX_AGE = 3

#: Preset hit functions, keyed by a short name used in policy ids.
HIT_FUNCTIONS: dict[str, tuple[int, int, int, int]] = {
    "h00": (0, 0, 0, 0),  # always promote to age 0
    "h01": (0, 0, 0, 1),  # a hit on a next-victim line only partially protects it
    "h11": (0, 0, 1, 1),  # old lines stay old-ish
    "h21": (0, 1, 2, 1),  # gradual promotion by one step (saturating at 0)
}


class QlruPolicy(ReplacementPolicy):
    """A concrete member of the QLRU family."""

    NAME = "qlru"

    def __init__(
        self,
        ways: int,
        hit_map: tuple[int, int, int, int] = HIT_FUNCTIONS["h00"],
        insert_age: int = 2,
        victim_rule: str = "leftmost",
        aging_rule: str = "to-max",
    ) -> None:
        super().__init__(ways)
        if len(hit_map) != MAX_AGE + 1 or any(not 0 <= a <= MAX_AGE for a in hit_map):
            raise ConfigurationError(f"hit_map must be 4 ages in [0, 3], got {hit_map}")
        if not 0 <= insert_age <= MAX_AGE:
            raise ConfigurationError(f"insert_age must be in [0, 3], got {insert_age}")
        if victim_rule not in ("leftmost", "rightmost"):
            raise ConfigurationError(f"unknown victim_rule {victim_rule!r}")
        if aging_rule not in ("to-max", "single"):
            raise ConfigurationError(f"unknown aging_rule {aging_rule!r}")
        self.hit_map = tuple(hit_map)
        self.insert_age = insert_age
        self.victim_rule = victim_rule
        self.aging_rule = aging_rule
        self._ages = [MAX_AGE] * ways

    @property
    def variant_name(self) -> str:
        """A nanoBench-style identifier for this parameter combination."""
        hit_names = {v: k for k, v in HIT_FUNCTIONS.items()}
        hit = hit_names.get(self.hit_map, "h" + "".join(str(a) for a in self.hit_map))
        victim = "r0" if self.victim_rule == "leftmost" else "r1"
        aging = "u0" if self.aging_rule == "to-max" else "u1"
        return f"qlru_{hit}_m{self.insert_age}_{victim}_{aging}"

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._ages[way] = self.hit_map[self._ages[way]]

    def _age_until_max(self) -> None:
        if self.aging_rule == "to-max":
            while MAX_AGE not in self._ages:
                self._ages = [min(MAX_AGE, a + 1) for a in self._ages]
        else:
            offset = MAX_AGE - max(self._ages)
            if offset > 0:
                self._ages = [min(MAX_AGE, a + offset) for a in self._ages]

    def evict(self) -> int:
        self._age_until_max()
        candidates = [way for way, age in enumerate(self._ages) if age == MAX_AGE]
        if self.victim_rule == "leftmost":
            return candidates[0]
        return candidates[-1]

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._ages[way] = self.insert_age

    def reset(self) -> None:
        self._ages = [MAX_AGE] * self.ways

    def state_key(self) -> Hashable:
        return tuple(self._ages)

    def clone(self) -> "QlruPolicy":
        copy = QlruPolicy(
            self.ways,
            hit_map=self.hit_map,
            insert_age=self.insert_age,
            victim_rule=self.victim_rule,
            aging_rule=self.aging_rule,
        )
        copy._ages = list(self._ages)
        return copy


def qlru_variants() -> dict[str, dict]:
    """Return constructor kwargs for the named QLRU presets.

    These are the points of the parameter space exposed in the policy
    registry and enumerated by candidate identification.
    """
    variants: dict[str, dict] = {}
    for hit_name, hit_map in HIT_FUNCTIONS.items():
        for insert_age in (0, 1, 2, 3):
            name = f"qlru_{hit_name}_m{insert_age}"
            variants[name] = {
                "hit_map": hit_map,
                "insert_age": insert_age,
                "victim_rule": "leftmost",
                "aging_rule": "to-max",
            }
    return variants


def _register_variants() -> None:
    """Register every named preset as its own registry entry.

    The preset keyword arguments become the entry's defaults; explicit
    ``PolicyFactory`` params still override them.
    """
    from repro.policies.registry import register_builder

    for variant_name, preset in qlru_variants().items():

        def build(ways, set_index, shared, rng, params, _preset=preset):
            merged = dict(_preset)
            merged.update(params)
            return QlruPolicy(ways, **merged)

        register_builder(variant_name, QlruPolicy, build)


_register_variants()
