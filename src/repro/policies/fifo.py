"""First-in first-out (round robin) replacement.

FIFO evicts the block that has been resident longest, regardless of hits.
Implemented as a queue of ways; hits leave the state untouched, which is
exactly what makes FIFO a permutation policy with identity hit
permutations.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.policies.base import ReplacementPolicy
from repro.policies.registry import register


@register(tags=("default-eval", "default-predictability"))
class FifoPolicy(ReplacementPolicy):
    """Evict in insertion order; hits do not update state."""

    NAME = "fifo"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # _queue[0] is the next victim; the most recently filled way is last.
        self._queue = list(range(ways))

    def touch(self, way: int) -> None:
        self._check_way(way)

    def evict(self) -> int:
        return self._queue[0]

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._queue.remove(way)
        self._queue.append(way)

    def reset(self) -> None:
        self._queue = list(range(self.ways))

    def state_key(self) -> Hashable:
        return tuple(self._queue)

    def clone(self) -> "FifoPolicy":
        copy = FifoPolicy(self.ways)
        copy._queue = list(self._queue)
        return copy
