"""Replacement policies and the policy registry.

The registry maps stable string names to policy constructors so that
caches, hardware catalogs, experiments, and the command line can all refer
to policies by name.  Use :func:`make_policy` for a standalone per-set
instance and :class:`PolicyFactory` when building a whole cache (it
threads the cache-global shared context needed by set-dueling policies).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import UnknownPolicyError
from repro.policies.base import ReplacementPolicy, SharedContext
from repro.policies.clock import ClockPolicy
from repro.policies.dueling import DuelController
from repro.policies.fifo import FifoPolicy
from repro.policies.lru import BipPolicy, DipPolicy, LipPolicy, LruPolicy
from repro.policies.mru import BitPlruPolicy, NruPolicy
from repro.policies.permutation import (
    PermutationPolicy,
    PermutationSpec,
    fifo_spec,
    lru_spec,
)
from repro.policies.plru import PlruPolicy
from repro.policies.qlru import HIT_FUNCTIONS, QlruPolicy, qlru_variants
from repro.policies.random_policy import RandomPolicy
from repro.policies.slru import SlruPolicy
from repro.policies.rrip import BrripPolicy, DrripPolicy, SrripPolicy
from repro.util.rng import SeededRng

__all__ = [
    "ReplacementPolicy",
    "SharedContext",
    "DuelController",
    "LruPolicy",
    "LipPolicy",
    "BipPolicy",
    "DipPolicy",
    "FifoPolicy",
    "PlruPolicy",
    "BitPlruPolicy",
    "NruPolicy",
    "RandomPolicy",
    "ClockPolicy",
    "SlruPolicy",
    "SrripPolicy",
    "BrripPolicy",
    "DrripPolicy",
    "QlruPolicy",
    "PermutationPolicy",
    "PermutationSpec",
    "lru_spec",
    "fifo_spec",
    "HIT_FUNCTIONS",
    "PolicyFactory",
    "make_policy",
    "available_policies",
]

# Builder signature: (ways, set_index, shared, rng, params) -> policy.
_Builder = Callable[[int, int, SharedContext | None, SeededRng | None, dict], ReplacementPolicy]


def _simple(cls: type[ReplacementPolicy]) -> tuple[type, _Builder]:
    def build(ways, set_index, shared, rng, params):
        return cls(ways, **params)

    return cls, build


def _with_rng(cls: type[ReplacementPolicy]) -> tuple[type, _Builder]:
    def build(ways, set_index, shared, rng, params):
        set_rng = rng.fork(f"{cls.NAME}-{set_index}") if rng is not None else None
        return cls(ways, rng=set_rng, **params)

    return cls, build


def _dueling(cls: type[ReplacementPolicy]) -> tuple[type, _Builder]:
    def build(ways, set_index, shared, rng, params):
        return cls(ways, shared=shared, set_index=set_index, **params)

    return cls, build


def _qlru_preset(preset: dict) -> tuple[type, _Builder]:
    def build(ways, set_index, shared, rng, params):
        merged = dict(preset)
        merged.update(params)
        return QlruPolicy(ways, **merged)

    return QlruPolicy, build


def _permutation_builder() -> tuple[type, _Builder]:
    def build(ways, set_index, shared, rng, params):
        spec = params.get("spec")
        if spec is None:
            raise UnknownPolicyError("the 'permutation' policy requires a spec= parameter")
        return PermutationPolicy(ways, spec)

    return PermutationPolicy, build


_REGISTRY: dict[str, tuple[type, _Builder]] = {
    "lru": _simple(LruPolicy),
    "fifo": _simple(FifoPolicy),
    "plru": _simple(PlruPolicy),
    "bitplru": _simple(BitPlruPolicy),
    "nru": _simple(NruPolicy),
    "clock": _simple(ClockPolicy),
    "slru": _simple(SlruPolicy),
    "lip": _simple(LipPolicy),
    "bip": _with_rng(BipPolicy),
    "dip": _dueling(DipPolicy),
    "random": _with_rng(RandomPolicy),
    "srrip": _simple(SrripPolicy),
    "brrip": _with_rng(BrripPolicy),
    "drrip": _dueling(DrripPolicy),
    "permutation": _permutation_builder(),
}
for _name, _preset in qlru_variants().items():
    _REGISTRY[_name] = _qlru_preset(_preset)


def available_policies() -> list[str]:
    """Return the sorted list of registered policy names."""
    return sorted(_REGISTRY)


class PolicyFactory:
    """Named policy constructor used to build every set of a cache.

    Example::

        factory = PolicyFactory("dip")
        shared = factory.create_shared(num_sets=64, rng=SeededRng(1))
        policies = [factory.build(8, s, shared) for s in range(64)]
    """

    def __init__(self, name: str, **params) -> None:
        if name not in _REGISTRY:
            raise UnknownPolicyError(
                f"unknown policy {name!r}; known: {', '.join(available_policies())}"
            )
        self.name = name
        self.params = params
        self._cls, self._builder = _REGISTRY[name]

    def create_shared(self, num_sets: int, rng: SeededRng | None = None) -> SharedContext:
        """Create the cache-global context for this policy."""
        return self._cls.create_shared(num_sets, rng)

    def build(
        self,
        ways: int,
        set_index: int = 0,
        shared: SharedContext | None = None,
        rng: SeededRng | None = None,
    ) -> ReplacementPolicy:
        """Construct the policy instance for one set."""
        return self._builder(ways, set_index, shared, rng, self.params)

    @property
    def deterministic(self) -> bool:
        """True if the policy draws no randomness."""
        return self._cls.DETERMINISTIC

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolicyFactory({self.name!r}, {self.params!r})"


def make_policy(
    name: str, ways: int, rng: SeededRng | None = None, **params
) -> ReplacementPolicy:
    """Build a standalone single-set policy instance by name."""
    factory = PolicyFactory(name, **params)
    shared = factory.create_shared(num_sets=1, rng=rng)
    return factory.build(ways, set_index=0, shared=shared, rng=rng)
