"""Replacement policies and the policy registry.

The registry (:mod:`repro.policies.registry`) maps stable string names
to policy constructors so that caches, hardware catalogs, experiments,
and the command line can all refer to policies by name.  Policy classes
register themselves with the :func:`register` decorator at import time;
the import order below therefore fixes the registration order that
:func:`default_policies` groups preserve.

Use :func:`get` for a standalone per-set instance, :class:`PolicyFactory`
when building a whole cache (it threads the cache-global shared context
needed by set-dueling policies), and :func:`available` to enumerate
names.  :func:`make_policy` and :func:`available_policies` are thin
deprecated aliases kept for one release.
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SharedContext
from repro.policies.registry import (
    PolicyEntry,
    PolicyFactory,
    available,
    default_policies,
    get,
    get_entry,
    register,
    register_builder,
    unregister,
)

# Importing the implementation modules populates the registry; the order
# here is the registration order (and thus the order of the CLI's
# default policy groups).
from repro.policies.lru import BipPolicy, DipPolicy, LipPolicy, LruPolicy
from repro.policies.fifo import FifoPolicy
from repro.policies.plru import PlruPolicy
from repro.policies.mru import BitPlruPolicy, NruPolicy
from repro.policies.rrip import BrripPolicy, DrripPolicy, SrripPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.clock import ClockPolicy
from repro.policies.slru import SlruPolicy
from repro.policies.qlru import HIT_FUNCTIONS, QlruPolicy, qlru_variants
from repro.policies.permutation import (
    PermutationPolicy,
    PermutationSpec,
    fifo_spec,
    lru_spec,
)
from repro.policies.dueling import DuelController
from repro.util.rng import SeededRng

__all__ = [
    "ReplacementPolicy",
    "SharedContext",
    "DuelController",
    "LruPolicy",
    "LipPolicy",
    "BipPolicy",
    "DipPolicy",
    "FifoPolicy",
    "PlruPolicy",
    "BitPlruPolicy",
    "NruPolicy",
    "RandomPolicy",
    "ClockPolicy",
    "SlruPolicy",
    "SrripPolicy",
    "BrripPolicy",
    "DrripPolicy",
    "QlruPolicy",
    "PermutationPolicy",
    "PermutationSpec",
    "lru_spec",
    "fifo_spec",
    "HIT_FUNCTIONS",
    "qlru_variants",
    "PolicyEntry",
    "PolicyFactory",
    "register",
    "register_builder",
    "unregister",
    "available",
    "default_policies",
    "get",
    "get_entry",
    "make_policy",
    "available_policies",
]


def make_policy(
    name: str, ways: int, rng: SeededRng | None = None, **params
) -> ReplacementPolicy:
    """Deprecated alias of :func:`repro.policies.get`."""
    return get(name, ways, rng=rng, **params)


def available_policies() -> list[str]:
    """Deprecated alias of :func:`repro.policies.available`."""
    return available()
