"""Perf-regression detection over the run-history database.

The detector answers one question per experiment group: *is the latest
run slower (or hungrier) than its recent history says it should be?*

Runs are grouped by **baseline key** — ``(experiment name, jobs,
kernel, vector, trie)`` — because those switches legitimately change
wall time; comparing a serial interpreter run against a ``--jobs 4``
kernel run would only produce noise, and a planner-on run must never be
baselined against a planner-off one.  The ``trie`` component comes from
the run's recorded ``trie`` param when present (CLI runs record it) and
otherwise from whether the run's counters show planner engagement
(``kernel.trie.plans``), so pre-planner history rows and ``--no-trie``
runs stay in their own groups.  Within a group the newest run is the
**candidate** and the runs before it form the **baseline window**:

* baseline center = median of the window's values (robust to one bad
  historical run);
* baseline spread = MAD (median absolute deviation), the robust sigma;
* a candidate **fails** when it exceeds *both* the ratio threshold
  (``value > threshold * median``) and the noise band
  (``value > median + NOISE_SIGMAS * 1.4826 * MAD + epsilon``) — the
  combined rule keeps tiny absolute drifts on millisecond-scale runs
  from flagging, while a genuine 3x wall-time jump always does;
* groups with fewer than ``min_samples`` baseline runs are **skipped**
  (verdict ``skip``), the min-sample guard for cold history databases.

``--baseline REF`` pins the baseline window to the runs recorded at one
git revision (prefix match) instead of the sliding window, for "did my
branch regress against main?" checks.

Wall time is always checked; each :data:`CHECK_COUNTERS` counter
present in both candidate and baseline is checked with the (laxer)
counter threshold — counters are deterministic per experiment, so a
drift there means the *logical* cost model moved, not the machine.

Consumers: ``repro-cache history check`` (exit-code gate),
``repro-cache report --against-history`` (render one ledger against its
baseline), and the dashboard (flag regressed runs red).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import history as obs_history
from repro.obs import ledger as obs_ledger
from repro.util.tables import format_table

__all__ = [
    "CHECK_COUNTERS",
    "DEFAULT_MIN_SAMPLES",
    "DEFAULT_WALL_THRESHOLD",
    "DEFAULT_COUNTER_THRESHOLD",
    "DEFAULT_WINDOW",
    "BaselineKey",
    "Verdict",
    "check_history",
    "check_run",
    "format_verdicts",
    "median_mad",
]

#: Sliding-window length: how many prior runs form the baseline.
DEFAULT_WINDOW = 10

#: Baseline runs required before a verdict is rendered at all.
DEFAULT_MIN_SAMPLES = 1

#: Candidate wall time above ``threshold * median`` fails (with the MAD
#: noise band also exceeded).  1.5x tolerates shared-runner jitter;
#: the CI smoke gate tightens it to 2.0 explicitly.
DEFAULT_WALL_THRESHOLD = 1.5

#: Counters drift threshold — laxer than wall time because a counter
#: regression is a logical-cost change, checked on exact-ish quantities.
DEFAULT_COUNTER_THRESHOLD = 2.0

#: MAD multiples a candidate must clear beyond the median (1.4826 * MAD
#: estimates sigma for normal noise).
NOISE_SIGMAS = 3.0

#: Absolute wall-time slack (seconds): sub-50ms drifts never flag.
WALL_EPSILON = 0.05

#: Absolute counter slack: single-digit count drifts never flag.
COUNTER_EPSILON = 8.0

#: Ledger counters baselined per group (the paper's query-cost model
#: plus the execution-tier totals; warm/cold splits are process-local
#: and deliberately absent).
CHECK_COUNTERS = (
    "oracle.measurements",
    "oracle.accesses",
    "kernel.accesses",
    "kernel.trie.fallbacks",
    "db.miss",
    "runner.chunk_retries",
    "runner.pool.restarted",
    "runner.shm.fallbacks",
)


@dataclass(frozen=True)
class BaselineKey:
    """The grouping key runs are baselined within."""

    name: str
    jobs: int | None
    kernel: bool | None
    vector: bool | None
    trie: bool | None = None

    def describe(self) -> str:
        parts = [self.name]
        parts.append(f"jobs={self.jobs if self.jobs is not None else '-'}")
        parts.append(f"kernel={self.kernel if self.kernel is not None else '-'}")
        if self.vector is not None:
            parts.append(f"vector={self.vector}")
        if self.trie is not None:
            parts.append(f"trie={self.trie}")
        return " ".join(parts)


@dataclass(frozen=True)
class Verdict:
    """One metric's regression verdict for one candidate run.

    ``status`` is ``ok``, ``fail`` or ``skip`` (not enough baseline
    samples).  ``run_id`` is the candidate's history row id, so the
    dashboard can flag the exact run.
    """

    key: BaselineKey
    metric: str
    status: str
    value: float
    baseline_median: float | None = None
    baseline_mad: float | None = None
    baseline_runs: int = 0
    threshold: float | None = None
    run_id: int | None = None
    run_created: str | None = None
    note: str = ""

    @property
    def ratio(self) -> float | None:
        if self.baseline_median:
            return self.value / self.baseline_median
        return None


def median_mad(values: list[float]) -> tuple[float, float]:
    """Median and median-absolute-deviation of ``values`` (non-empty)."""
    ordered = sorted(values)
    count = len(ordered)
    mid = count // 2
    if count % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    deviations = sorted(abs(value - median) for value in ordered)
    if count % 2:
        mad = deviations[mid]
    else:
        mad = (deviations[mid - 1] + deviations[mid]) / 2.0
    return median, mad


def _exceeds(
    value: float,
    median: float,
    mad: float,
    threshold: float,
    epsilon: float,
) -> bool:
    """The combined regression rule: ratio gate AND robust noise band."""
    if value <= threshold * median + 1e-12:
        return False
    return value > median + NOISE_SIGMAS * 1.4826 * mad + epsilon


def _trie_flag(params: dict | None, counters: dict | None) -> bool | None:
    """The ``trie`` component of a run's baseline key.

    The recorded ``trie`` param (CLI runs) is authoritative; absent
    that, a run whose counters show planner engagement groups as
    ``True``.  ``None`` (no param, no engagement evidence) covers
    pre-planner history rows AND planner-eligible runs where no batch
    ever met the gates — both of which executed the plain batched
    engines, so comparing them is sound.
    """
    trie = (params or {}).get("trie")
    if trie is not None:
        return bool(trie)
    if counters and counters.get("kernel.trie.plans"):
        return True
    return None


def _key_for(run: dict) -> BaselineKey:
    return BaselineKey(
        name=run["name"],
        jobs=run.get("jobs"),
        kernel=run.get("kernel"),
        vector=run.get("vector"),
        trie=_trie_flag(run.get("params"), run.get("counters")),
    )


def _judge(
    key: BaselineKey,
    candidate: dict,
    baseline: list[dict],
    min_samples: int,
    wall_threshold: float,
    counter_threshold: float,
) -> list[Verdict]:
    """Verdicts for one candidate against its baseline window."""
    common = {
        "run_id": candidate["id"],
        "run_created": candidate["created"],
        "key": key,
    }
    if len(baseline) < min_samples:
        return [
            Verdict(
                metric="wall_seconds",
                status="skip",
                value=candidate["wall_seconds"],
                baseline_runs=len(baseline),
                note=f"need {min_samples} baseline run(s), have {len(baseline)}",
                **common,
            )
        ]
    verdicts: list[Verdict] = []
    walls = [run["wall_seconds"] for run in baseline]
    median, mad = median_mad(walls)
    failed = _exceeds(
        candidate["wall_seconds"], median, mad, wall_threshold, WALL_EPSILON
    )
    verdicts.append(
        Verdict(
            metric="wall_seconds",
            status="fail" if failed else "ok",
            value=candidate["wall_seconds"],
            baseline_median=median,
            baseline_mad=mad,
            baseline_runs=len(baseline),
            threshold=wall_threshold,
            **common,
        )
    )
    candidate_counters = candidate.get("counters") or {}
    for name in CHECK_COUNTERS:
        if name not in candidate_counters:
            continue
        series = [
            run["counters"][name]
            for run in baseline
            if name in (run.get("counters") or {})
        ]
        if len(series) < min_samples:
            continue
        median, mad = median_mad(series)
        failed = _exceeds(
            candidate_counters[name], median, mad, counter_threshold,
            COUNTER_EPSILON,
        )
        verdicts.append(
            Verdict(
                metric=name,
                status="fail" if failed else "ok",
                value=candidate_counters[name],
                baseline_median=median,
                baseline_mad=mad,
                baseline_runs=len(series),
                threshold=counter_threshold,
                **common,
            )
        )
    return verdicts


def check_history(
    db: "obs_history.HistoryDB | None" = None,
    experiments: list[str] | None = None,
    window: int = DEFAULT_WINDOW,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    counter_threshold: float = DEFAULT_COUNTER_THRESHOLD,
    baseline_ref: str | None = None,
) -> list[Verdict]:
    """Judge the latest run of every baseline group in the history DB.

    Returns one verdict list over all groups (wall time first within
    each group).  ``experiments`` restricts to the named experiments;
    ``baseline_ref`` pins the baseline to runs recorded at that git
    revision (sha prefix) instead of the sliding window.
    """
    db = db or obs_history.get_history()
    runs = db.runs(with_counters=True)
    if experiments:
        wanted = set(experiments)
        runs = [run for run in runs if run["name"] in wanted]
    groups: dict[BaselineKey, list[dict]] = {}
    for run in runs:  # runs() is newest-first
        groups.setdefault(_key_for(run), []).append(run)
    verdicts: list[Verdict] = []
    for key in sorted(groups, key=lambda k: (k.name, str(k.jobs))):
        ordered = groups[key]
        candidate = ordered[0]
        if baseline_ref is not None:
            baseline = [
                run
                for run in ordered[1:]
                if run.get("git_sha") and run["git_sha"].startswith(baseline_ref)
            ][:window]
            if not baseline:
                verdicts.append(
                    Verdict(
                        key=key,
                        metric="wall_seconds",
                        status="skip",
                        value=candidate["wall_seconds"],
                        run_id=candidate["id"],
                        run_created=candidate["created"],
                        note=f"no baseline runs at git {baseline_ref}",
                    )
                )
                continue
        else:
            baseline = ordered[1 : 1 + window]
        verdicts.extend(
            _judge(
                key, candidate, baseline, min_samples, wall_threshold,
                counter_threshold,
            )
        )
    return verdicts


def check_run(
    ledger: "obs_ledger.RunLedger",
    db: "obs_history.HistoryDB | None" = None,
    window: int = DEFAULT_WINDOW,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    counter_threshold: float = DEFAULT_COUNTER_THRESHOLD,
    baseline_ref: str | None = None,
) -> list[Verdict]:
    """Judge one ledger (not yet necessarily in history) against history.

    The ``report --against-history`` path: the baseline window is drawn
    from recorded runs in the ledger's group, excluding any run with the
    same content (so checking an already-ingested ledger does not
    baseline it against itself).
    """
    db = db or obs_history.get_history()
    params = ledger.params or {}
    vector = params.get("vector")
    key = BaselineKey(
        name=ledger.name,
        jobs=ledger.jobs,
        kernel=ledger.kernel,
        vector=None if vector is None else bool(vector),
        trie=_trie_flag(params, ledger.counters),
    )
    candidate = {
        "id": None,
        "name": ledger.name,
        "created": ledger.created,
        "wall_seconds": ledger.wall_seconds,
        "jobs": ledger.jobs,
        "kernel": ledger.kernel,
        "vector": key.vector,
        "trie": key.trie,
        "counters": ledger.counters,
    }
    baseline = [
        run
        for run in db.runs(name=ledger.name, with_counters=True)
        if _key_for(run) == key
        and not (
            run["created"] == ledger.created
            and run["wall_seconds"] == ledger.wall_seconds
        )
    ]
    if baseline_ref is not None:
        baseline = [
            run
            for run in baseline
            if run.get("git_sha") and run["git_sha"].startswith(baseline_ref)
        ]
    return _judge(
        key, candidate, baseline[:window], min_samples, wall_threshold,
        counter_threshold,
    )


def format_verdicts(verdicts: list[Verdict], title: str = "history check") -> str:
    """Render verdicts as a printable table (the CLI's output)."""
    rows: list[list[object]] = []
    for verdict in verdicts:
        ratio = verdict.ratio
        rows.append(
            [
                verdict.key.describe(),
                verdict.metric,
                f"{verdict.value:.3f}" if verdict.metric == "wall_seconds"
                else f"{verdict.value:g}",
                "-" if verdict.baseline_median is None
                else (
                    f"{verdict.baseline_median:.3f}"
                    if verdict.metric == "wall_seconds"
                    else f"{verdict.baseline_median:g}"
                ),
                f"{ratio:.2f}x" if ratio is not None else "-",
                verdict.baseline_runs,
                verdict.status.upper(),
                verdict.note,
            ]
        )
    return format_table(
        ["group", "metric", "value", "baseline", "ratio", "n", "status", "note"],
        rows,
        title=title,
    )
