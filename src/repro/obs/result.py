"""The unified experiment result protocol.

Every experiment in the reproduction — an inference run, a miss-ratio
grid, a benchmark table, a CLI invocation — reports through the same
envelope so downstream tooling (sidecar files, CI validation, plotting)
never needs to know which experiment produced a file:

.. code-block:: json

    {
      "schema_version": 1,
      "name": "e3_missratio",
      "params": {"policies": ["lru", "fifo"], "seed": 0},
      "data": {...},
      "metrics": {"counters": {...}, "observations": {...}}
    }

Field contract (validated by :func:`validate_result`):

* ``schema_version`` — integer, currently :data:`SCHEMA_VERSION`;
* ``name`` — non-empty string identifying the experiment;
* ``params`` — JSON object of the experiment's inputs;
* ``data`` — the payload; any JSON value, including null;
* ``metrics`` — JSON object, normally a
  :meth:`repro.obs.metrics.Metrics.snapshot`.

Producers: :meth:`repro.core.inference.InferenceResult.to_experiment_result`,
:meth:`repro.eval.missratio.MissRatioMatrix.to_experiment_result`, the
benchmark ``save_result`` fixture, and the CLI ``--metrics`` option.

``python -m repro.obs.result FILE...`` validates sidecar files against
the schema (used by CI).
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ResultSchemaError

__all__ = [
    "SCHEMA_VERSION",
    "ExperimentResult",
    "validate_result",
    "validate_result_file",
    "main",
]

#: Current version of the result envelope.
SCHEMA_VERSION = 1


def validate_result(payload: object) -> dict:
    """Check ``payload`` against the result schema; return it on success.

    Raises :class:`~repro.errors.ResultSchemaError` with a field-level
    message on any violation.
    """
    if not isinstance(payload, dict):
        raise ResultSchemaError(
            f"result must be a JSON object, got {type(payload).__name__}"
        )
    missing = [
        key
        for key in ("schema_version", "name", "params", "data", "metrics")
        if key not in payload
    ]
    if missing:
        raise ResultSchemaError(f"result is missing fields: {', '.join(missing)}")
    version = payload["schema_version"]
    if not isinstance(version, int) or isinstance(version, bool):
        raise ResultSchemaError(f"schema_version must be an integer, got {version!r}")
    if version != SCHEMA_VERSION:
        raise ResultSchemaError(
            f"unsupported schema_version {version} (supported: {SCHEMA_VERSION})"
        )
    if not isinstance(payload["name"], str) or not payload["name"]:
        raise ResultSchemaError(f"name must be a non-empty string, got {payload['name']!r}")
    if not isinstance(payload["params"], dict):
        raise ResultSchemaError(
            f"params must be an object, got {type(payload['params']).__name__}"
        )
    if not isinstance(payload["metrics"], dict):
        raise ResultSchemaError(
            f"metrics must be an object, got {type(payload['metrics']).__name__}"
        )
    return payload


@dataclass(frozen=True)
class ExperimentResult:
    """Schema-versioned envelope around one experiment's outcome."""

    name: str
    params: dict
    data: object
    metrics: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        """Plain-dict rendering following the documented schema."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "params": self.params,
            "data": self.data,
            "metrics": self.metrics,
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string (validates implicitly on re-parse)."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Build from a dict, validating against the schema first."""
        validate_result(payload)
        return cls(
            name=payload["name"],
            params=payload["params"],
            data=payload["data"],
            metrics=payload["metrics"],
            schema_version=payload["schema_version"],
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Parse and validate a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ResultSchemaError(f"not valid JSON: {error}") from None
        return cls.from_dict(payload)


def validate_result_file(path: str | Path) -> ExperimentResult:
    """Load and validate one result file; return the parsed result."""
    return ExperimentResult.from_json(Path(path).read_text(encoding="utf-8"))


def main(argv: list[str] | None = None) -> int:
    """Validate result files given on the command line (CI entry point)."""
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.result FILE [FILE ...]", file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            result = validate_result_file(path)
        except (OSError, ResultSchemaError) as error:
            print(f"{path}: INVALID: {error}", file=sys.stderr)
            status = 1
        else:
            print(f"{path}: ok (name={result.name}, schema_version={result.schema_version})")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
