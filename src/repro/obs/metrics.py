"""Counters, timers and histograms for the measurement layers.

A :class:`Metrics` store aggregates three kinds of measurements:

* **counters** — monotonically increasing integers (:meth:`Metrics.incr`);
* **observations** — running summaries of a value stream
  (:meth:`Metrics.observe`): count, total, min, max, mean, plus a
  power-of-two bucket histogram coarse enough to stay O(1) per sample;
* **timers** — :meth:`Metrics.timer` wraps a block and observes its wall
  time in seconds under the given name.

The module-wide :data:`DEFAULT` store is always on; the cold layers
(oracles, the experiment runner, the inference drivers) write to it
unconditionally because their event rate is per *measurement* or per
*cell*, not per simulated access.  Per-access cache events only flow when
a tracer is installed (see :mod:`repro.obs.trace`), which keeps the
simulation hot path free of metric bookkeeping.

Snapshots (:meth:`Metrics.snapshot`) are plain JSON-able dictionaries and
slot directly into the ``metrics`` field of an
:class:`~repro.obs.result.ExperimentResult`.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

from repro.util.tables import format_table

__all__ = ["Metrics", "MetricSummary", "DEFAULT"]


class MetricSummary:
    """Running summary of one observed value stream."""

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: Power-of-two histogram: upper bound -> sample count.  Values
        #: <= 0 land in the 0.0 bucket.
        self.buckets: dict[float, int] = {}

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0:
            bound = 0.0
        else:
            bound = 2.0 ** math.ceil(math.log2(value))
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, snapshot: dict) -> None:
        """Fold another summary's :meth:`snapshot` into this one.

        Exact for every reported statistic (count, total, min, max, the
        bucket histogram — and therefore the mean), which is what lets
        worker processes observe into local stores and the runner merge
        them back without loss.
        """
        count = int(snapshot.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(snapshot.get("total", 0.0))
        minimum = snapshot.get("min")
        if minimum is not None and minimum < self.minimum:
            self.minimum = minimum
        maximum = snapshot.get("max")
        if maximum is not None and maximum > self.maximum:
            self.maximum = maximum
        for key, samples in snapshot.get("buckets", {}).items():
            bound = float(str(key)[3:])  # "le_<bound>" -> bound
            self.buckets[bound] = self.buckets.get(bound, 0) + samples

    def snapshot(self) -> dict:
        """JSON-able rendering of the summary."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": {f"le_{bound:g}": n for bound, n in sorted(self.buckets.items())},
        }


class Metrics:
    """A named collection of counters and observation summaries."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._summaries: dict[str, MetricSummary] = {}

    # -- recording ---------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the observation summary ``name``."""
        summary = self._summaries.get(name)
        if summary is None:
            summary = self._summaries[name] = MetricSummary()
        summary.observe(value)

    @contextmanager
    def timer(self, name: str):
        """Observe the wall time of the enclosed block, in seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading -----------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def summary(self, name: str) -> MetricSummary | None:
        """The observation summary for ``name``, or None."""
        return self._summaries.get(name)

    def snapshot(self) -> dict:
        """JSON-able snapshot: ``{"counters": ..., "observations": ...}``."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "observations": {
                name: summary.snapshot()
                for name, summary in sorted(self._summaries.items())
            },
        }

    def reset(self) -> None:
        """Drop every counter and summary.

        Entry points that produce metrics sidecars (the CLI dispatcher,
        the benchmark harness) reset the module-wide :data:`DEFAULT`
        store at the start of each invocation so one run's counters never
        contaminate the next run's sidecar.
        """
        self._counters.clear()
        self._summaries.clear()

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another store into this one.

        Counters add; observation summaries merge exactly (see
        :meth:`MetricSummary.merge`).  This is how the experiment runner
        folds worker-process metrics back into the parent's store —
        merging every worker's delta into the parent reproduces the
        serial run's counters exactly (timings differ in value, never in
        count).
        """
        for name, amount in snapshot.get("counters", {}).items():
            self.incr(name, amount)
        for name, data in snapshot.get("observations", {}).items():
            summary = self._summaries.get(name)
            if summary is None:
                summary = self._summaries[name] = MetricSummary()
            summary.merge(data)

    def format_summary(self, title: str = "metrics") -> str:
        """Render the snapshot as a printable table."""
        rows: list[list[object]] = []
        for name, value in sorted(self._counters.items()):
            rows.append([name, value, "", "", "", ""])
        for name, summary in sorted(self._summaries.items()):
            rows.append(
                [
                    name,
                    summary.count,
                    f"{summary.total:.6g}",
                    f"{summary.mean:.6g}",
                    f"{summary.minimum:.6g}" if summary.count else "-",
                    f"{summary.maximum:.6g}" if summary.count else "-",
                ]
            )
        return format_table(
            ["metric", "count", "total", "mean", "min", "max"], rows, title=title
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Metrics counters={len(self._counters)} "
            f"observations={len(self._summaries)}>"
        )


#: The always-on module-wide store the instrumentation writes to.
DEFAULT = Metrics()
