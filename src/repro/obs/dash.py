"""Static HTML observability dashboard, rendered from run history.

``repro-cache dash -o dash/`` turns the run-history database
(:mod:`repro.obs.history`) plus an optional results directory into a
self-contained static site — no server, no javascript, stdlib-only
templating — in the AnICA ``html_report.py`` idiom:

* ``index.html`` — the fleet summary: stat tiles, one row per
  experiment with a wall-time sparkline and its latest regression
  verdict, the bench trajectory overview, and links to every detail
  page;
* ``exp-<name>.html`` — per-experiment trend pages: a wall-time trend
  chart over every recorded run, key-counter sparklines, and the full
  run table (git sha, jobs, kernel, wall time, verdict) linking each
  run's provenance;
* ``bench.html`` — ``BENCH_*.json`` trajectory sparklines (speedup and
  seconds series per acceptance benchmark);
* ``flame-<name>.html`` — span-tree flame views parsed from the
  ``*.trace.jsonl`` event shards in the results directory (span.start /
  span.end pairs nest by id, widths proportional to seconds).

Regression verdicts come from :mod:`repro.obs.regress`; a run whose
group failed its check renders with an explicit ``REGRESSED`` label
(text + color, never color alone).  Every page is written relative to
``out_dir`` so the directory can be archived or served as-is (CI
uploads it as a workflow artifact).
"""

from __future__ import annotations

import html
import json
import re
from pathlib import Path

from repro.obs import history as obs_history
from repro.obs import regress as obs_regress

__all__ = ["render_dashboard"]


# -- palette (validated reference palette; see the dataviz method) -----------
_CSS = """
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --seq-250: #86b6ef; --seq-350: #5598e7;
  --seq-450: #2a78d6; --seq-550: #1c5cab; --seq-650: #104281;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --seq-250: #184f95; --seq-350: #1c5cab;
    --seq-450: #256abf; --seq-550: #3987e5; --seq-650: #6da7ec;
  }
}
* { box-sizing: border-box; }
body { margin: 0; background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 1080px; margin: 0 auto; padding: 24px 20px 64px; }
h1 { font-size: 20px; margin: 8px 0 2px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
a { color: var(--series-1); text-decoration: none; }
a:hover { text-decoration: underline; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0 8px; }
.tile { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 132px; }
.tile .v { font-size: 24px; font-weight: 600; }
.tile .k { color: var(--ink-2); font-size: 12px; }
table { border-collapse: collapse; width: 100%; background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px; }
th { text-align: left; color: var(--ink-2); font-weight: 500; font-size: 12px; }
th, td { padding: 6px 10px; border-bottom: 1px solid var(--grid); }
tr:last-child td { border-bottom: none; }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
.pill { display: inline-block; border-radius: 10px; padding: 0 8px;
  font-size: 11px; font-weight: 600; }
.pill.ok { color: var(--good); border: 1px solid var(--good); }
.pill.fail { color: var(--critical); border: 1px solid var(--critical); }
.pill.skip { color: var(--muted); border: 1px solid var(--muted); }
.spark { vertical-align: middle; }
.spark polyline { fill: none; stroke: var(--series-1); stroke-width: 2; }
.spark circle { fill: var(--series-1); }
.chart { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px; }
.chart .gridline { stroke: var(--grid); stroke-width: 1; }
.chart .axisline { stroke: var(--axis); stroke-width: 1; }
.chart text { fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums; }
.chart polyline { fill: none; stroke: var(--series-1); stroke-width: 2; }
.chart circle { fill: var(--series-1); }
.chart circle.flagged { fill: var(--critical); }
.flame { font-size: 11px; }
.flame .node { min-width: 2px; overflow: hidden; border-radius: 3px;
  margin: 1px; padding: 1px 4px; color: #fff; white-space: nowrap; }
.flame .row { display: flex; align-items: stretch; }
.flame .d0 .node { background: var(--seq-650); }
.flame .d1 > .node { background: var(--seq-550); }
.flame .d2 > .node { background: var(--seq-450); }
.flame .d3 > .node { background: var(--seq-350); }
.flame .d4 > .node { background: var(--seq-250); color: var(--ink); }
.flame .d5 > .node { background: var(--seq-250); color: var(--ink); }
footer { color: var(--muted); font-size: 12px; margin-top: 40px; }
"""


def _slug(name: str) -> str:
    return re.sub(r"[^a-z0-9_-]+", "-", name.lower()).strip("-") or "unnamed"


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _page(title: str, body: str, crumb: str | None = None) -> str:
    nav = f'<p class="sub"><a href="index.html">← fleet summary</a></p>' if crumb else ""
    return (
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><main>{nav}<h1>{_esc(title)}</h1>{body}"
        "<footer>generated by <code>repro-cache dash</code> — static, stdlib-only</footer>"
        "</main></body></html>\n"
    )


# -- SVG helpers -------------------------------------------------------------
def _scale(values: list[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        lo, hi = lo - 0.5, hi + 0.5
    return lo, hi


def _sparkline(
    values: list[float],
    labels: list[str] | None = None,
    width: int = 120,
    height: int = 28,
    flagged_last: bool = False,
) -> str:
    """Inline single-series sparkline; last value gets the marker dot."""
    if not values:
        return '<span class="pill skip">no data</span>'
    if len(values) == 1:
        values = values * 2
        labels = labels * 2 if labels else None
    lo, hi = _scale(values)
    pad = 3
    step = (width - 2 * pad) / (len(values) - 1)
    points = []
    for index, value in enumerate(values):
        x = pad + index * step
        y = height - pad - (value - lo) / (hi - lo) * (height - 2 * pad)
        points.append((x, y))
    poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    tooltip = ""
    if labels:
        tooltip = f"<title>{_esc('; '.join(labels))}</title>"
    last_x, last_y = points[-1]
    dot_class = ' class="flagged"' if flagged_last else ""
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">{tooltip}'
        f'<polyline points="{poly}"/>'
        f'<circle{dot_class} cx="{last_x:.1f}" cy="{last_y:.1f}" r="3"/></svg>'
    )


def _trend_chart(
    points: list[dict],
    value_key: str = "wall_seconds",
    unit: str = "s",
    flagged_ids: set | None = None,
    width: int = 960,
    height: int = 220,
) -> str:
    """A wall-time (or counter) trend line chart over ordered runs.

    One series, one axis; per-point ``<title>`` tooltips carry the run's
    timestamp, git sha and exact value (the static-page hover layer).
    Flagged runs render their marker in the status color *and* are
    listed in the run table with a text label, so color never carries
    the meaning alone.
    """
    values = [float(point[value_key]) for point in points]
    if not values:
        return "<p class=\"sub\">no runs recorded yet</p>"
    flagged_ids = flagged_ids or set()
    lo, hi = _scale(values)
    left, right, top, bottom = 64, 16, 12, 28
    plot_w = width - left - right
    plot_h = height - top - bottom
    step = plot_w / max(1, len(values) - 1)
    coords = []
    for index, value in enumerate(values):
        x = left + (index * step if len(values) > 1 else plot_w / 2)
        y = top + plot_h - (value - lo) / (hi - lo) * plot_h
        coords.append((x, y))
    parts = [
        f'<svg width="100%" viewBox="0 0 {width} {height}" role="img">',
    ]
    for fraction in (0.0, 0.5, 1.0):
        y = top + plot_h - fraction * plot_h
        tick = lo + fraction * (hi - lo)
        parts.append(
            f'<line class="gridline" x1="{left}" y1="{y:.1f}" '
            f'x2="{width - right}" y2="{y:.1f}"/>'
            f'<text x="{left - 6}" y="{y + 4:.1f}" text-anchor="end">'
            f"{tick:.3g}{unit}</text>"
        )
    parts.append(
        f'<line class="axisline" x1="{left}" y1="{top + plot_h}" '
        f'x2="{width - right}" y2="{top + plot_h}"/>'
    )
    if len(coords) > 1:
        poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
        parts.append(f'<polyline points="{poly}"/>')
    for point, (x, y) in zip(points, coords):
        flagged = point.get("id") in flagged_ids
        cls = ' class="flagged"' if flagged else ""
        label = (
            f"{point.get('created', '?')} · git {str(point.get('git_sha') or '-')[:10]}"
            f" · {float(point[value_key]):.4g}{unit}"
            + (" · REGRESSED" if flagged else "")
        )
        parts.append(
            f'<circle{cls} cx="{x:.1f}" cy="{y:.1f}" r="4">'
            f"<title>{_esc(label)}</title></circle>"
        )
    first = points[0].get("created", "")
    last = points[-1].get("created", "")
    parts.append(
        f'<text x="{left}" y="{height - 8}">{_esc(first)}</text>'
        f'<text x="{width - right}" y="{height - 8}" text-anchor="end">'
        f"{_esc(last)}</text>"
    )
    parts.append("</svg>")
    return f'<div class="chart">{"".join(parts)}</div>'


def _verdict_pill(status: str | None) -> str:
    if status == "fail":
        return '<span class="pill fail">✗ REGRESSED</span>'
    if status == "ok":
        return '<span class="pill ok">✓ ok</span>'
    return '<span class="pill skip">– no baseline</span>'


# -- flame views -------------------------------------------------------------
def _parse_spans(path: Path) -> list[dict]:
    """Span tree roots from one JSONL trace (span.start/span.end pairs)."""
    nodes: dict[str, dict] = {}
    roots: list[dict] = []
    try:
        with open(path, encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                kind = event.get("kind")
                if kind == "span.start":
                    node = {
                        "id": event.get("id"),
                        "name": event.get("span", "?"),
                        "label": event.get("label"),
                        "seconds": 0.0,
                        "children": [],
                    }
                    nodes[node["id"]] = node
                    parent = nodes.get(event.get("parent"))
                    if parent is not None:
                        parent["children"].append(node)
                    else:
                        roots.append(node)
                elif kind == "span.end":
                    node = nodes.get(event.get("id"))
                    if node is not None:
                        node["seconds"] = float(event.get("seconds") or 0.0)
    except OSError:
        return []
    return roots


#: Cap on rendered children per span level: a 10k-cell grid's flame page
#: must stay loadable; the remainder folds into one "(+N more)" block.
_FLAME_MAX_CHILDREN = 120


def _render_flame(node: dict, depth: int = 0) -> str:
    seconds = node["seconds"]
    label = node["name"] + (f" {node['label']}" or "" if node.get("label") else "")
    title = f"{label} — {seconds:.4f}s"
    children = sorted(node["children"], key=lambda c: -c["seconds"])
    shown = children[:_FLAME_MAX_CHILDREN]
    folded = len(children) - len(shown)
    inner = ""
    if shown:
        blocks = "".join(_render_flame(child, depth + 1) for child in shown)
        if folded > 0:
            rest = sum(child["seconds"] for child in children[_FLAME_MAX_CHILDREN:])
            blocks += (
                f'<div class="d{min(depth + 1, 5)}" style="flex-grow:{max(rest, 1e-6):.6f}">'
                f'<div class="node" title="{folded} more spans — {rest:.4f}s">'
                f"(+{folded} more)</div></div>"
            )
        inner = f'<div class="row">{blocks}</div>'
    return (
        f'<div class="d{min(depth, 5)}" style="flex-grow:{max(seconds, 1e-6):.6f}">'
        f'<div class="node" title="{_esc(title)}">{_esc(label)} · {seconds:.3f}s</div>'
        f"{inner}</div>"
    )


def _flame_page(name: str, path: Path) -> str | None:
    roots = _parse_spans(path)
    if not roots:
        return None
    sections = []
    for root in roots:
        sections.append(
            f"<h2>{_esc(root['name'])} — {root['seconds']:.3f}s</h2>"
            f'<div class="flame"><div class="row">{_render_flame(root)}</div></div>'
        )
    body = (
        f'<p class="sub">span tree from <code>{_esc(path.name)}</code>; '
        "block width is proportional to wall seconds, hover a block for "
        "the exact timing</p>" + "".join(sections)
    )
    return _page(f"flame · {name}", body, crumb="flame")


# -- page renderers ----------------------------------------------------------
def _numeric_series(points: list[dict]) -> dict[str, list[float]]:
    """Top-level numeric fields shared across bench trajectory points."""
    series: dict[str, list[float]] = {}
    for point in points:
        data = point.get("data")
        if not isinstance(data, dict):
            continue
        for key, value in data.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                series.setdefault(key, []).append(float(value))
    return {key: values for key, values in series.items() if len(values) >= 1}


def _experiment_page(
    name: str,
    runs: list[dict],
    verdicts_by_run: dict,
    group_status: dict,
) -> str:
    ordered = sorted(runs, key=lambda run: (run["created"], run["id"]))
    flagged = {
        run_id for run_id, status in verdicts_by_run.items() if status == "fail"
    }
    body = ["<h2>wall time per run</h2>"]
    body.append(_trend_chart(ordered, flagged_ids=flagged))
    counters_present = [
        counter
        for counter in obs_regress.CHECK_COUNTERS
        if any(counter in (run.get("counters") or {}) for run in ordered)
    ]
    if counters_present:
        body.append("<h2>key counters</h2><table><tr><th>counter</th>"
                    "<th>trend</th><th class=\"num\">latest</th></tr>")
        for counter in counters_present:
            values = [
                float(run["counters"][counter])
                for run in ordered
                if counter in (run.get("counters") or {})
            ]
            body.append(
                f"<tr><td><code>{_esc(counter)}</code></td>"
                f"<td>{_sparkline(values)}</td>"
                f'<td class="num">{values[-1]:g}</td></tr>'
            )
        body.append("</table>")
    body.append("<h2>runs</h2>")
    body.append(
        "<table><tr><th>created</th><th>git</th><th class=\"num\">jobs</th>"
        "<th>kernel</th><th class=\"num\">wall s</th><th>verdict</th>"
        "<th>source</th></tr>"
    )
    for run in reversed(ordered):
        sha = str(run.get("git_sha") or "-")[:10]
        dirty = " (dirty)" if run.get("git_dirty") else ""
        verdict = verdicts_by_run.get(run["id"])
        body.append(
            f"<tr><td>{_esc(run['created'])}</td>"
            f"<td><code>{_esc(sha)}{dirty}</code></td>"
            f'<td class="num">{_esc(run.get("jobs") if run.get("jobs") is not None else "-")}</td>'
            f"<td>{_esc(run.get('kernel') if run.get('kernel') is not None else '-')}</td>"
            f'<td class="num">{run["wall_seconds"]:.3f}</td>'
            f"<td>{_verdict_pill(verdict)}</td>"
            f"<td>{_esc(run.get('source') or 'cli')}</td></tr>"
        )
    body.append("</table>")
    groups = sorted({key.describe() for key in group_status})
    if groups:
        body.append(
            '<p class="sub">baseline groups: '
            + ", ".join(f"<code>{_esc(group)}</code>" for group in groups)
            + "</p>"
        )
    return _page(f"experiment · {name}", "".join(body), crumb="exp")


def _bench_page(points_by_bench: dict[str, list[dict]]) -> str:
    body = [
        '<p class="sub">acceptance-benchmark trajectory points '
        "(<code>BENCH_*.json</code>), one sparkline per numeric series — "
        "speedups should hold, seconds should not climb</p>"
    ]
    for bench in sorted(points_by_bench):
        points = points_by_bench[bench]
        series = _numeric_series(points)
        body.append(f"<h2>{_esc(bench)} — {len(points)} point(s)</h2>")
        if not series:
            body.append('<p class="sub">no scalar series in this bench\'s data</p>')
            continue
        body.append("<table><tr><th>series</th><th>trend</th>"
                    "<th class=\"num\">latest</th></tr>")
        for key in sorted(series):
            values = series[key]
            body.append(
                f"<tr><td><code>{_esc(key)}</code></td>"
                f"<td>{_sparkline(values)}</td>"
                f'<td class="num">{values[-1]:.4g}</td></tr>'
            )
        body.append("</table>")
    return _page("bench trajectories", "".join(body), crumb="bench")


def render_dashboard(
    out_dir: str | Path,
    db: "obs_history.HistoryDB | None" = None,
    results_dir: str | Path | None = None,
    verdicts: list | None = None,
) -> dict:
    """Render the full static dashboard into ``out_dir``.

    Returns ``{"pages": [paths], "runs": N, "experiments": N,
    "bench_points": N, "flagged": N}``.  ``results_dir`` (optional)
    contributes ``*.trace.jsonl`` files for the flame pages.
    """
    db = db or obs_history.get_history()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    runs = db.runs(with_counters=True)
    if verdicts is None:
        verdicts = obs_regress.check_history(db)
    verdicts_by_run: dict = {}
    group_status: dict = {}
    for verdict in verdicts:
        group_status.setdefault(verdict.key, "ok")
        if verdict.status == "fail":
            group_status[verdict.key] = "fail"
            if verdict.run_id is not None:
                verdicts_by_run[verdict.run_id] = "fail"
        elif verdict.status == "ok" and verdicts_by_run.get(verdict.run_id) != "fail":
            if verdict.run_id is not None:
                verdicts_by_run.setdefault(verdict.run_id, "ok")
    runs_by_name: dict[str, list[dict]] = {}
    for run in runs:
        runs_by_name.setdefault(run["name"], []).append(run)
    bench_points = db.bench_points()
    points_by_bench: dict[str, list[dict]] = {}
    for point in bench_points:
        points_by_bench.setdefault(point["bench"], []).append(point)

    pages: list[Path] = []

    # Per-experiment pages.
    exp_links: dict[str, str] = {}
    for name, exp_runs in sorted(runs_by_name.items()):
        exp_groups = {
            key: status
            for key, status in group_status.items()
            if key.name == name
        }
        page_name = f"exp-{_slug(name)}.html"
        exp_links[name] = page_name
        path = out / page_name
        path.write_text(
            _experiment_page(name, exp_runs, verdicts_by_run, exp_groups),
            encoding="utf-8",
        )
        pages.append(path)

    # Bench trajectory page.
    if points_by_bench:
        path = out / "bench.html"
        path.write_text(_bench_page(points_by_bench), encoding="utf-8")
        pages.append(path)

    # Flame pages from trace shards.
    flame_links: dict[str, str] = {}
    if results_dir is not None:
        for trace_path in sorted(Path(results_dir).glob("*.trace.jsonl")):
            name = trace_path.name[: -len(".trace.jsonl")]
            rendered = _flame_page(name, trace_path)
            if rendered is None:
                continue
            page_name = f"flame-{_slug(name)}.html"
            path = out / page_name
            path.write_text(rendered, encoding="utf-8")
            pages.append(path)
            flame_links[name] = page_name

    # Fleet summary (index).
    flagged_groups = sum(1 for status in group_status.values() if status == "fail")
    body = [
        '<p class="sub">across-run observability for the reproduction: '
        "run history, perf-regression verdicts, bench trajectories and "
        "span flame views</p>"
    ]
    body.append('<div class="tiles">')
    for value, label in (
        (len(runs), "recorded runs"),
        (len(runs_by_name), "experiments"),
        (len(bench_points), "bench points"),
        (flagged_groups, "flagged groups"),
    ):
        body.append(
            f'<div class="tile"><div class="v">{value}</div>'
            f'<div class="k">{_esc(label)}</div></div>'
        )
    body.append("</div>")

    body.append("<h2>experiments</h2>")
    if runs_by_name:
        body.append(
            "<table><tr><th>experiment</th><th class=\"num\">runs</th>"
            "<th>wall-time trend</th><th class=\"num\">latest s</th>"
            "<th>verdict</th><th>latest run</th></tr>"
        )
        for name in sorted(runs_by_name):
            exp_runs = sorted(
                runs_by_name[name], key=lambda run: (run["created"], run["id"])
            )
            walls = [run["wall_seconds"] for run in exp_runs]
            latest = exp_runs[-1]
            statuses = {
                status
                for key, status in group_status.items()
                if key.name == name
            }
            status = (
                "fail" if "fail" in statuses else ("ok" if "ok" in statuses else None)
            )
            flagged_last = verdicts_by_run.get(latest["id"]) == "fail"
            body.append(
                f'<tr><td><a href="{exp_links[name]}">{_esc(name)}</a></td>'
                f'<td class="num">{len(exp_runs)}</td>'
                f"<td>{_sparkline(walls, flagged_last=flagged_last)}</td>"
                f'<td class="num">{walls[-1]:.3f}</td>'
                f"<td>{_verdict_pill(status)}</td>"
                f"<td>{_esc(latest['created'])} · "
                f"<code>{_esc(str(latest.get('git_sha') or '-')[:10])}</code></td></tr>"
            )
        body.append("</table>")
    else:
        body.append(
            '<p class="sub">no runs recorded yet — run '
            "<code>repro-cache history ingest benchmarks/results/</code> or "
            "any CLI command with <code>--metrics</code></p>"
        )

    if points_by_bench:
        body.append("<h2>bench trajectories</h2>")
        body.append(
            "<table><tr><th>bench</th><th class=\"num\">points</th>"
            "<th>speedup trend</th><th class=\"num\">latest speedup</th></tr>"
        )
        for bench in sorted(points_by_bench):
            series = _numeric_series(points_by_bench[bench])
            speedups = series.get("speedup", [])
            body.append(
                f'<tr><td><a href="bench.html">{_esc(bench)}</a></td>'
                f'<td class="num">{len(points_by_bench[bench])}</td>'
                f"<td>{_sparkline(speedups)}</td>"
                f'<td class="num">'
                f"{f'{speedups[-1]:.2f}x' if speedups else '-'}</td></tr>"
            )
        body.append("</table>")

    if flame_links:
        body.append("<h2>span flame views</h2><ul>")
        for name in sorted(flame_links):
            body.append(
                f'<li><a href="{flame_links[name]}">{_esc(name)}</a></li>'
            )
        body.append("</ul>")

    index = out / "index.html"
    index.write_text(
        _page("repro observability dashboard", "".join(body)), encoding="utf-8"
    )
    pages.insert(0, index)
    return {
        "pages": [str(path) for path in pages],
        "runs": len(runs),
        "experiments": len(runs_by_name),
        "bench_points": len(bench_points),
        "flagged": flagged_groups,
    }
