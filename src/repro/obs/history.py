"""Run-history database: every run, queryable, forever.

PRs 2/4 made single runs observable — metrics sidecars, span traces and
schema-versioned ``*.ledger.json`` manifests — but each run was an
island: ``report --diff`` compares exactly two ledgers by hand and the
``BENCH_*.json`` performance trajectory was unmonitored.  This module is
the across-run plane: a WAL-mode sqlite **run-history store**
(``history-v<schema>.sqlite``, beside the automaton store and the
measurement DB) that ingests

* run ledgers (:class:`~repro.obs.ledger.RunLedger`) — one ``runs`` row
  keyed by experiment name, git sha and timestamp, plus one ``counters``
  row per counter, and
* ``BENCH_*.json`` trajectory points (ExperimentResult envelopes from
  the acceptance benchmarks) — one ``bench_points`` row per point,

and answers the questions single ledgers cannot: *how has E3's wall time
moved over the last ten runs?  which commit did the query budget jump
at?  is the kernel speedup trajectory flat?*  The regression detector
(:mod:`repro.obs.regress`) and the HTML dashboard
(:mod:`repro.obs.dash`) are pure consumers of this store.

Rows arrive three ways:

* **auto-recorded** — the CLI records its ledger whenever ``--metrics``
  is on (and only then: without ``--metrics`` no history code runs and
  no sqlite file is created), and the benchmark ``save_result`` fixture
  records every bench ledger;
* **backfilled** — ``repro-cache history ingest benchmarks/results/``
  walks a results directory and ingests every ledger and BENCH file it
  finds;
* **programmatically** — :func:`record_ledger` / :func:`record_bench_point`.

Ingestion is idempotent: every row carries a content fingerprint
(blake2s of the canonical JSON) with a UNIQUE constraint, so
re-ingesting a directory records nothing twice.

Discipline mirrors :mod:`repro.measuredb.db`:

* **Location** — :func:`history_dir` defaults to the automaton store's
  directory (explicit override > ``$REPRO_CACHE_DIR`` >
  ``./.repro-cache``), so one ``--cache-dir`` governs all three
  persistent stores.  The file name embeds :data:`SCHEMA_VERSION`;
  bumping it orphans old databases, never misreads them.
* **Durability** — WAL journal mode, ``synchronous=NORMAL``, one
  transaction per recorded run.
* **Corruption** — a corrupt database is unlinked and reopened once;
  a second failure marks the handle dead and every later operation is a
  cheap no-op.  History recording never fails the run it documents.
* **Observability** — ``history.record`` / ``history.duplicate`` /
  ``history.corrupt`` counters land in
  :data:`repro.obs.metrics.DEFAULT`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import sqlite3
import time
from collections.abc import Iterable
from pathlib import Path

from repro.errors import ReproError, ResultSchemaError
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics

__all__ = [
    "SCHEMA_VERSION",
    "HISTORY_FILENAME",
    "HistoryDB",
    "close_history",
    "get_history",
    "history_dir",
    "history_disabled",
    "history_enabled",
    "history_path",
    "ingest_paths",
    "record_bench_point",
    "record_ledger",
    "reset",
    "set_history_dir",
    "set_history_enabled",
]

#: Bump on any change to the tables or the fingerprint rule.  The
#: version is part of the file name, so old databases become invisible.
SCHEMA_VERSION = 1

HISTORY_FILENAME = f"history-v{SCHEMA_VERSION}.sqlite"

#: How long a writer waits on a locked database before dropping its row.
BUSY_TIMEOUT_SECONDS = 10.0

_HISTORY_DIR: Path | None = None
_ENABLED = True
_DB: "HistoryDB | None" = None


# -- directory / enablement --------------------------------------------------
def history_dir() -> Path:
    """The history database directory.

    Defaults to the automaton store's directory (explicit override >
    ``$REPRO_CACHE_DIR`` > ``./.repro-cache``), so all three persistent
    stores live together and one ``--cache-dir`` governs them all.
    """
    if _HISTORY_DIR is not None:
        return _HISTORY_DIR
    from repro.kernels import store

    return store.cache_dir()


def set_history_dir(path: str | os.PathLike | None) -> None:
    """Override the history directory (None restores the shared rule)."""
    global _HISTORY_DIR
    _HISTORY_DIR = Path(path) if path is not None else None


def history_path() -> Path:
    """Where the current schema's history database lives."""
    return history_dir() / HISTORY_FILENAME


def history_enabled() -> bool:
    """True when run history may be recorded or queried."""
    return _ENABLED


def set_history_enabled(enabled: bool) -> None:
    """Globally enable or disable the run-history store."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextlib.contextmanager
def history_disabled():
    """Temporarily bypass the history store (benchmarks, tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def get_history() -> "HistoryDB":
    """The shared per-process history handle for the current directory."""
    global _DB
    path = history_path()
    if _DB is None or _DB.path != path:
        if _DB is not None:
            _DB.close()
        _DB = HistoryDB(path)
    return _DB


def close_history() -> None:
    """Close the shared handle (tests, directory changes, shutdown)."""
    global _DB
    if _DB is not None:
        _DB.close()
        _DB = None


def reset() -> None:
    """Close the handle; the next call reopens at the current directory."""
    close_history()


def _fingerprint(payload: dict) -> str:
    """Content fingerprint of one ingested document (idempotency key)."""
    canonical = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.blake2s(canonical, digest_size=16).hexdigest()


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class HistoryDB:
    """One run-history database file; lazy, fork-safe, never raises.

    Read paths never create the file (``history stats`` on a missing
    database reports emptiness; ``repro-cache evaluate`` without
    ``--metrics`` touches no history code at all), write paths create it
    on first record.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        self._recovered = False
        self._dead = False

    # -- connection lifecycle ------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=BUSY_TIMEOUT_SECONDS)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(BUSY_TIMEOUT_SECONDS * 1000)}")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS runs ("
            " id INTEGER PRIMARY KEY,"
            " fingerprint TEXT NOT NULL UNIQUE,"
            " name TEXT NOT NULL,"
            " created TEXT NOT NULL,"
            " ingested TEXT NOT NULL,"
            " wall_seconds REAL NOT NULL,"
            " git_sha TEXT,"
            " git_dirty INTEGER,"
            " seed INTEGER,"
            " jobs INTEGER,"
            " kernel INTEGER,"
            " vector INTEGER,"
            " params TEXT NOT NULL,"
            " env TEXT NOT NULL,"
            " maps TEXT,"
            " source TEXT"
            ")"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS runs_by_name ON runs (name, created, id)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS counters ("
            " run_id INTEGER NOT NULL,"
            " name TEXT NOT NULL,"
            " value REAL NOT NULL,"
            " PRIMARY KEY (run_id, name)"
            ") WITHOUT ROWID"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS bench_points ("
            " id INTEGER PRIMARY KEY,"
            " fingerprint TEXT NOT NULL UNIQUE,"
            " bench TEXT NOT NULL,"
            " ingested TEXT NOT NULL,"
            " params TEXT NOT NULL,"
            " data TEXT NOT NULL,"
            " source TEXT"
            ")"
        )
        conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema', ?)",
            (str(SCHEMA_VERSION),),
        )
        row = conn.execute("SELECT value FROM meta WHERE key = 'schema'").fetchone()
        if row is None or row[0] != str(SCHEMA_VERSION):
            conn.close()
            raise sqlite3.DatabaseError("history DB schema mismatch")
        conn.commit()
        return conn

    def _connection(self, create: bool = True) -> sqlite3.Connection | None:
        """The live connection, or None.

        ``create=False`` (read paths) returns None instead of creating
        a database file that does not exist yet.
        """
        if self._dead or not history_enabled():
            return None
        if self._conn is not None and self._pid != os.getpid():
            # Forked child: never reuse (or close) the parent's handle.
            self._conn = None
        if self._conn is None:
            if not create and not self.path.exists():
                return None
            try:
                self._conn = self._open()
            except sqlite3.OperationalError:
                return None  # unwritable/locked: degrade this operation
            except sqlite3.DatabaseError:
                return self._handle_corrupt()
            self._pid = os.getpid()
        return self._conn

    def _handle_corrupt(self) -> sqlite3.Connection | None:
        """Unlink the damaged database and reopen once; then give up."""
        obs_metrics.DEFAULT.incr("history.corrupt")
        if self._conn is not None:
            with contextlib.suppress(sqlite3.Error):
                self._conn.close()
            self._conn = None
        for suffix in ("", "-wal", "-shm"):
            with contextlib.suppress(OSError):
                os.unlink(f"{self.path}{suffix}")
        if self._recovered:
            self._dead = True
            return None
        self._recovered = True
        try:
            self._conn = self._open()
        except (sqlite3.Error, OSError):
            self._conn = None
            self._dead = True
            return None
        self._pid = os.getpid()
        return self._conn

    def close(self) -> None:
        """Close the underlying connection (reopened lazily if reused)."""
        if self._conn is not None and self._pid == os.getpid():
            with contextlib.suppress(sqlite3.Error):
                self._conn.close()
        self._conn = None

    # -- write plane ---------------------------------------------------------
    def record_ledger(
        self,
        ledger: "obs_ledger.RunLedger",
        source: str | None = None,
        maps: list | None = None,
    ) -> int | None:
        """Insert one run ledger; returns the run id, or None.

        None means the row was not recorded: history disabled, the
        database unavailable, or (the common case) the exact same ledger
        content already present — recording is idempotent.  ``maps`` is
        an optional list of runner map records (see
        :func:`repro.runner.core.add_map_hook`) attached to the run row
        for the dashboard's per-run breakdown.
        """
        conn = self._connection()
        if conn is None:
            return None
        payload = ledger.to_dict()
        fingerprint = _fingerprint(payload)
        params = payload.get("params") or {}
        git = payload.get("git") or {}
        vector = params.get("vector")
        try:
            with conn:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO runs"
                    " (fingerprint, name, created, ingested, wall_seconds,"
                    "  git_sha, git_dirty, seed, jobs, kernel, vector,"
                    "  params, env, maps, source)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        fingerprint,
                        ledger.name,
                        ledger.created,
                        _now(),
                        float(ledger.wall_seconds),
                        git.get("sha"),
                        None if git.get("dirty") is None else int(bool(git.get("dirty"))),
                        ledger.seed,
                        ledger.jobs,
                        None if ledger.kernel is None else int(ledger.kernel),
                        None if vector is None else int(bool(vector)),
                        json.dumps(params, sort_keys=True, default=str),
                        json.dumps(ledger.env, sort_keys=True, default=str),
                        None if maps is None else json.dumps(maps, default=str),
                        source,
                    ),
                )
                if cursor.rowcount == 0:
                    obs_metrics.DEFAULT.incr("history.duplicate")
                    return None
                run_id = cursor.lastrowid
                conn.executemany(
                    "INSERT OR REPLACE INTO counters (run_id, name, value)"
                    " VALUES (?, ?, ?)",
                    [
                        (run_id, name, float(value))
                        for name, value in ledger.counters.items()
                        if isinstance(value, (int, float))
                        and not isinstance(value, bool)
                    ],
                )
        except sqlite3.OperationalError:
            return None
        except sqlite3.DatabaseError:
            self._handle_corrupt()
            return None
        obs_metrics.DEFAULT.incr("history.record")
        return run_id

    def record_bench_point(self, payload: dict, source: str | None = None) -> int | None:
        """Insert one BENCH_*.json trajectory point (an ExperimentResult).

        Same idempotency and failure contract as :meth:`record_ledger`.
        """
        from repro.obs import result as obs_result

        obs_result.validate_result(payload)
        conn = self._connection()
        if conn is None:
            return None
        fingerprint = _fingerprint(payload)
        try:
            with conn:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO bench_points"
                    " (fingerprint, bench, ingested, params, data, source)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        fingerprint,
                        payload["name"],
                        _now(),
                        json.dumps(payload.get("params") or {}, sort_keys=True, default=str),
                        json.dumps(payload.get("data"), default=str),
                        source,
                    ),
                )
                if cursor.rowcount == 0:
                    obs_metrics.DEFAULT.incr("history.duplicate")
                    return None
                point_id = cursor.lastrowid
        except sqlite3.OperationalError:
            return None
        except sqlite3.DatabaseError:
            self._handle_corrupt()
            return None
        obs_metrics.DEFAULT.incr("history.record")
        return point_id

    # -- read plane ----------------------------------------------------------
    def runs(
        self,
        name: str | None = None,
        limit: int | None = None,
        with_counters: bool = False,
    ) -> list[dict]:
        """Run rows, newest first, optionally restricted to one experiment."""
        conn = self._connection(create=False)
        if conn is None:
            return []
        query = (
            "SELECT id, name, created, ingested, wall_seconds, git_sha,"
            " git_dirty, seed, jobs, kernel, vector, params, env, maps, source"
            " FROM runs"
        )
        args: tuple = ()
        if name is not None:
            query += " WHERE name = ?"
            args = (name,)
        query += " ORDER BY created DESC, id DESC"
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        try:
            rows = conn.execute(query, args).fetchall()
        except sqlite3.OperationalError:
            return []
        except sqlite3.DatabaseError:
            self._handle_corrupt()
            return []
        runs = [self._run_row(row) for row in rows]
        if with_counters:
            for run in runs:
                run["counters"] = self.counters_for(run["id"])
        return runs

    @staticmethod
    def _run_row(row: tuple) -> dict:
        (run_id, name, created, ingested, wall_seconds, git_sha, git_dirty,
         seed, jobs, kernel, vector, params, env, maps, source) = row
        return {
            "id": run_id,
            "name": name,
            "created": created,
            "ingested": ingested,
            "wall_seconds": wall_seconds,
            "git_sha": git_sha,
            "git_dirty": None if git_dirty is None else bool(git_dirty),
            "seed": seed,
            "jobs": jobs,
            "kernel": None if kernel is None else bool(kernel),
            "vector": None if vector is None else bool(vector),
            "params": json.loads(params) if params else {},
            "env": json.loads(env) if env else {},
            "maps": json.loads(maps) if maps else None,
            "source": source,
        }

    def counters_for(self, run_id: int) -> dict[str, float]:
        """All counters recorded for one run."""
        conn = self._connection(create=False)
        if conn is None:
            return {}
        try:
            rows = conn.execute(
                "SELECT name, value FROM counters WHERE run_id = ?", (run_id,)
            ).fetchall()
        except sqlite3.Error:
            return {}
        return {name: value for name, value in rows}

    def experiments(self) -> list[dict]:
        """Distinct experiment names with run counts and latest timestamps."""
        conn = self._connection(create=False)
        if conn is None:
            return []
        try:
            rows = conn.execute(
                "SELECT name, COUNT(*), MIN(created), MAX(created)"
                " FROM runs GROUP BY name ORDER BY name"
            ).fetchall()
        except sqlite3.Error:
            return []
        return [
            {"name": name, "runs": count, "first": first, "latest": latest}
            for name, count, first, latest in rows
        ]

    def bench_points(self, bench: str | None = None) -> list[dict]:
        """Bench trajectory points in ingestion order (oldest first)."""
        conn = self._connection(create=False)
        if conn is None:
            return []
        query = (
            "SELECT id, bench, ingested, params, data, source FROM bench_points"
        )
        args: tuple = ()
        if bench is not None:
            query += " WHERE bench = ?"
            args = (bench,)
        query += " ORDER BY id"
        try:
            rows = conn.execute(query, args).fetchall()
        except sqlite3.Error:
            return []
        return [
            {
                "id": point_id,
                "bench": name,
                "ingested": ingested,
                "params": json.loads(params) if params else {},
                "data": json.loads(data) if data else None,
                "source": source,
            }
            for point_id, name, ingested, params, data, source in rows
        ]

    def stats(self) -> dict:
        """Inventory: file size, run/bench counts, per-experiment totals."""
        conn = self._connection(create=False)
        experiments: list[dict] = []
        total_runs = 0
        total_points = 0
        if conn is not None:
            try:
                experiments = self.experiments()
                total_runs = sum(entry["runs"] for entry in experiments)
                row = conn.execute("SELECT COUNT(*) FROM bench_points").fetchone()
                total_points = row[0] if row else 0
            except sqlite3.Error:
                experiments, total_runs, total_points = [], 0, 0
        size = 0
        for suffix in ("", "-wal"):
            with contextlib.suppress(OSError):
                size += os.stat(f"{self.path}{suffix}").st_size
        return {
            "path": str(self.path),
            "exists": self.path.exists(),
            "schema_version": SCHEMA_VERSION,
            "enabled": history_enabled() and not self._dead,
            "experiments": experiments,
            "total_runs": total_runs,
            "total_bench_points": total_points,
            "total_bytes": size,
        }

    def clear(self) -> int:
        """Delete every run and bench point; returns rows removed."""
        conn = self._connection(create=False)
        if conn is None:
            return 0
        try:
            with conn:
                removed = conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
                removed += conn.execute(
                    "SELECT COUNT(*) FROM bench_points"
                ).fetchone()[0]
                conn.execute("DELETE FROM counters")
                conn.execute("DELETE FROM runs")
                conn.execute("DELETE FROM bench_points")
        except sqlite3.Error:
            return 0
        return removed


# -- module-level convenience ------------------------------------------------
def record_ledger(
    ledger: "obs_ledger.RunLedger",
    source: str | None = None,
    maps: list | None = None,
) -> int | None:
    """Record one ledger into the shared history database."""
    if not history_enabled():
        return None
    return get_history().record_ledger(ledger, source=source, maps=maps)


def record_bench_point(payload: dict, source: str | None = None) -> int | None:
    """Record one BENCH trajectory point into the shared history database."""
    if not history_enabled():
        return None
    return get_history().record_bench_point(payload, source=source)


def _is_bench_point(path: Path) -> bool:
    return path.name.startswith("BENCH_") and path.name.endswith(".json")


def ingest_paths(paths: Iterable[str | Path]) -> dict:
    """Backfill history from files and directories.

    Directories are scanned (non-recursively) for ``*.ledger.json`` and
    ``BENCH_*.json``; explicit file arguments are classified by name the
    same way.  Returns a report dict::

        {"recorded": N, "duplicates": N, "errors": [(path, reason), ...],
         "files": [(path, status), ...]}

    where status is ``recorded``, ``duplicate`` or ``error``.  Unreadable
    or schema-invalid files are reported, never raised — backfill must
    survive a results directory with half-written artifacts in it.
    """
    expanded: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            expanded.extend(sorted(path.glob("*.ledger.json")))
            expanded.extend(
                sorted(p for p in path.glob("BENCH_*.json") if _is_bench_point(p))
            )
        else:
            expanded.append(path)
    report: dict = {"recorded": 0, "duplicates": 0, "errors": [], "files": []}
    for path in expanded:
        try:
            if _is_bench_point(path):
                payload = json.loads(path.read_text(encoding="utf-8"))
                row_id = record_bench_point(payload, source=str(path))
            else:
                ledger = obs_ledger.read_ledger(path)
                row_id = record_ledger(ledger, source=str(path))
        except (OSError, ValueError, ReproError, ResultSchemaError) as error:
            report["errors"].append((str(path), str(error)))
            report["files"].append((str(path), "error"))
            continue
        if row_id is None:
            report["duplicates"] += 1
            report["files"].append((str(path), "duplicate"))
        else:
            report["recorded"] += 1
            report["files"].append((str(path), "recorded"))
    return report


def stats() -> dict:
    """Inventory of the current history database."""
    return get_history().stats()


def clear() -> int:
    """Delete all recorded history; returns rows removed."""
    return get_history().clear()
