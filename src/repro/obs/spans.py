"""Hierarchical timed spans over the event bus and metrics store.

A *span* brackets one logical unit of work — a CLI invocation, an
inference run, a runner grid, a single experiment cell — with a start
and end event plus a wall-time observation:

.. code-block:: python

    from repro.obs import span, traced

    with span("infer", processor="atom-d525-like"):
        finding = reverse_engineer(oracle)

    @traced("eval.matrix")
    def compute_matrix(...):
        ...

Each span emits ``span.start`` / ``span.end`` events through the active
:class:`~repro.obs.trace.Tracer` (nothing when none is installed) and
always observes ``span.seconds.<name>`` in
:data:`repro.obs.metrics.DEFAULT` — spans live on the cold layers, so
the per-span cost is irrelevant next to the work they bracket.

Span identities are hierarchical dotted paths assigned from a per-process
stack: the first top-level span is ``"1"``, its children ``"1.1"``,
``"1.2"``, and so on.  ``span.start`` carries both the span's ``id`` and
its ``parent`` id (``None`` at the root), so a trace consumer can rebuild
the tree without tracking state.

**Cross-process propagation.**  The experiment runner forwards the
current span id to its worker processes, and each worker brackets its
chunk with :func:`adopt`: top-level spans opened inside the worker get
ids under a chunk-unique prefix (``"<parent>.w<chunk>"``) and report the
parent process's span as their ``parent``.  Merged back into the parent
trace (see :meth:`repro.obs.trace.Tracer.ingest`), a cell's spans
therefore nest under the run that scheduled them, exactly as in a serial
run.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from contextlib import contextmanager
from functools import wraps

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["span", "traced", "adopt", "current_span", "reset"]

#: Stack of open spans in this process: ``[path, children_opened]`` frames.
_STACK: list[list] = []
#: Prefix for top-level span ids (adopted from a parent process, or "").
_ROOT_PREFIX = ""
#: Parent id reported by top-level spans (a span in another process, or None).
_ROOT_PARENT: str | None = None
#: Number of top-level spans opened under the current root.
_ROOT_CHILDREN = 0


def current_span() -> str | None:
    """Id of the innermost open span (or the adopted parent, or None)."""
    if _STACK:
        return _STACK[-1][0]
    return _ROOT_PARENT


def reset() -> None:
    """Drop all span state (open frames, counters, adopted root)."""
    global _ROOT_PREFIX, _ROOT_PARENT, _ROOT_CHILDREN
    _STACK.clear()
    _ROOT_PREFIX = ""
    _ROOT_PARENT = None
    _ROOT_CHILDREN = 0


def _open() -> tuple[str, str | None]:
    """Allocate the next span id; returns (id, parent id)."""
    global _ROOT_CHILDREN
    if _STACK:
        frame = _STACK[-1]
        frame[1] += 1
        path = f"{frame[0]}.{frame[1]}"
        parent = frame[0]
    else:
        _ROOT_CHILDREN += 1
        path = f"{_ROOT_PREFIX}{_ROOT_CHILDREN}"
        parent = _ROOT_PARENT
    _STACK.append([path, 0])
    return path, parent


@contextmanager
def span(name: str, **fields):
    """Bracket the enclosed block as one timed span.

    Yields the span's id.  ``fields`` are attached to the ``span.start``
    event; ``span.end`` carries the elapsed ``seconds``.  The wall time
    is also observed as ``span.seconds.<name>`` whether or not a tracer
    is installed.
    """
    path, parent = _open()
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.emit("span.start", span=name, id=path, parent=parent, **fields)
    start = time.perf_counter()
    try:
        yield path
    finally:
        seconds = time.perf_counter() - start
        _STACK.pop()
        _metrics.DEFAULT.observe(f"span.seconds.{name}", seconds)
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.emit("span.end", span=name, id=path, seconds=round(seconds, 6))


def traced(name: str | Callable | None = None):
    """Decorator form of :func:`span`; defaults to the function's name.

    Usable bare (``@traced``) or with a name (``@traced("eval.matrix")``).
    """
    if callable(name):  # bare @traced
        return traced(name.__name__)(name)

    def decorator(fn):
        span_name = name or fn.__name__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            with span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorator


@contextmanager
def adopt(parent: str | None, prefix: str):
    """Nest this process's top-level spans under a span of another process.

    Worker entry points wrap their chunk in ``adopt(parent_id, base)``:
    spans opened at the top level get ids ``"<parent>.<base>.1"``,
    ``"<parent>.<base>.2"``, ... (unique across workers as long as
    ``base`` is chunk-unique) and report ``parent`` as their parent id.
    Restores the previous root on exit, so pool processes can be reused.
    """
    global _ROOT_PREFIX, _ROOT_PARENT, _ROOT_CHILDREN
    saved = (_ROOT_PREFIX, _ROOT_PARENT, _ROOT_CHILDREN, list(_STACK))
    _STACK.clear()
    base = f"{parent}.{prefix}" if parent else prefix
    _ROOT_PREFIX = f"{base}." if base else ""
    _ROOT_PARENT = parent
    _ROOT_CHILDREN = 0
    try:
        yield
    finally:
        _ROOT_PREFIX, _ROOT_PARENT, _ROOT_CHILDREN, stack = saved
        _STACK.clear()
        _STACK.extend(stack)
