"""Zero-cost-when-disabled structured event bus and JSONL trace files.

Instrumented code emits events through the module-global :data:`ACTIVE`
tracer::

    from repro.obs import trace as obs_trace
    ...
    tracer = obs_trace.ACTIVE
    if tracer is not None:
        tracer.emit("oracle.query", setup=len(setup), probe=len(probe),
                    misses=misses)

With no tracer installed the cost is one global load and an ``is None``
check; the keyword arguments are never even built.  The per-access cache
events additionally gate on :attr:`Tracer.wants_cache`, a precomputed
flag, so a tracer configured without ``cache.*`` events adds no work to
the simulation hot path beyond that flag test.

An event is a plain dict: ``{"seq": int, "kind": str, **fields}``.
``seq`` is a per-tracer monotonic sequence number (timestamps are
deliberately omitted from hot events; the runner and inference layers
carry explicit wall-time fields where timing is meaningful).  Every emit
also bumps the ``events.<kind>`` counter in
:data:`repro.obs.metrics.DEFAULT`, so a metrics snapshot summarises the
event mix even when events themselves are not kept.

The kind namespace is documented in OBSERVABILITY.md:
``cache.*`` (hit/miss/evict/fill), ``oracle.*`` (query/vote),
``infer.*`` (phase/verify), ``identify.*`` (candidate), ``runner.*``
(scheduled/chunk/cell/retry), ``span.*`` (start/end, see
:mod:`repro.obs.spans`) and ``kernel.*`` (compiled-engine run summaries).

Events cross process boundaries: grid cells dispatched to worker
processes by the experiment runner are traced by a worker-local tracer
(same include filter), and the collected shards are merged back into the
parent tracer via :meth:`Tracer.ingest`, which rebases their ``seq``
numbers onto the parent's counter.  A parallel run therefore produces
one coherent trace, same event mix as ``jobs=0``.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from pathlib import Path

from repro.obs import metrics as _metrics

__all__ = [
    "ACTIVE",
    "Tracer",
    "JsonlWriter",
    "install",
    "uninstall",
    "tracing",
    "write_jsonl",
    "read_jsonl",
    "filter_events",
    "format_event",
]

#: The installed tracer, or None.  Instrumentation reads this directly.
ACTIVE: "Tracer | None" = None


class Tracer:
    """Structured event collector.

    Args:
        keep_events: accumulate events on :attr:`events` (the default).
            Disable for long runs that only stream to a sink.
        sink: optional callable invoked with every event dict as it is
            emitted (e.g. a :class:`JsonlWriter`).
        include: optional tuple of kind prefixes; events whose kind does
            not start with any prefix are dropped at the emit site.
            ``None`` keeps everything.  Excluding ``"cache."`` (or using
            an ``include`` list without it) turns the per-access
            instrumentation off entirely via :attr:`wants_cache`.
    """

    __slots__ = ("events", "sink", "keep_events", "include", "wants_cache", "_seq")

    def __init__(
        self,
        keep_events: bool = True,
        sink: Callable[[dict], None] | None = None,
        include: Sequence[str] | None = None,
    ) -> None:
        self.events: list[dict] = []
        self.sink = sink
        self.keep_events = keep_events
        self.include = tuple(include) if include is not None else None
        self.wants_cache = self.wants("cache.")
        self._seq = 0

    def wants(self, kind: str) -> bool:
        """True when events of ``kind`` pass the include filter."""
        if self.include is None:
            return True
        return kind.startswith(self.include) or any(
            prefix.startswith(kind) for prefix in self.include
        )

    def emit(self, kind: str, **fields) -> None:
        """Record one event (dropped if the include filter rejects it)."""
        if self.include is not None and not kind.startswith(self.include):
            return
        self._seq += 1
        event = {"seq": self._seq, "kind": kind}
        event.update(fields)
        _metrics.DEFAULT.incr(f"events.{kind}")
        if self.keep_events:
            self.events.append(event)
        if self.sink is not None:
            self.sink(event)

    def ingest(self, events: Iterable[dict]) -> int:
        """Merge events recorded by another tracer (e.g. a worker shard).

        Each event is re-sequenced onto this tracer's counter (its
        original ``seq`` is discarded), re-checked against the include
        filter, kept/sunk like a locally emitted event — but **not**
        re-counted in the ``events.<kind>`` metrics: the recording
        process's own store already counted it, and the runner merges
        that store's snapshot separately.  Returns the number of events
        accepted.
        """
        accepted = 0
        for event in events:
            kind = str(event.get("kind", ""))
            if self.include is not None and not kind.startswith(self.include):
                continue
            self._seq += 1
            merged = dict(event)
            merged["seq"] = self._seq
            if self.keep_events:
                self.events.append(merged)
            if self.sink is not None:
                self.sink(merged)
            accepted += 1
        return accepted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        filt = ",".join(self.include) if self.include is not None else "*"
        return f"<Tracer events={len(self.events)} include={filt}>"


class JsonlWriter:
    """Event sink that streams one JSON object per line to a file.

    Usable as a context manager (the recommended form — the file is
    flushed and closed even when the traced block raises)::

        with JsonlWriter("run.trace.jsonl") as sink:
            install(Tracer(keep_events=False, sink=sink))
            ...

    The stream is flushed every ``flush_every`` events, so a crashed run
    leaves at most ``flush_every - 1`` unflushed events behind instead of
    a silently truncated file.
    """

    def __init__(self, path: str | Path, flush_every: int = 100) -> None:
        self.path = Path(path)
        self.flush_every = max(1, int(flush_every))
        self.write_count = 0
        self._handle = open(self.path, "w", encoding="utf-8")

    def __call__(self, event: dict) -> None:
        self._handle.write(json.dumps(event, default=str) + "\n")
        self.write_count += 1
        if self.write_count % self.flush_every == 0:
            self._handle.flush()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """True once the underlying file has been closed."""
        return self._handle.closed

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the active event bus; returns it for chaining."""
    global ACTIVE
    ACTIVE = tracer
    return tracer


def uninstall() -> Tracer | None:
    """Deactivate and return the current tracer (None if none active)."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer


@contextmanager
def tracing(
    keep_events: bool = True,
    sink: Callable[[dict], None] | None = None,
    include: Sequence[str] | None = None,
):
    """Install a fresh tracer for the enclosed block; restore after.

        with tracing(include=("oracle.",)) as tracer:
            inference.infer()
        queries = tracer.events
    """
    global ACTIVE
    previous = ACTIVE
    tracer = Tracer(keep_events=keep_events, sink=sink, include=include)
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous


# -- trace files ------------------------------------------------------------
def write_jsonl(events: Iterable[dict], path: str | Path) -> Path:
    """Write events to ``path``, one JSON object per line."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, default=str) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace file back into a list of event dicts."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def filter_events(
    events: Iterable[dict],
    kinds: Sequence[str] | None = None,
    where: dict | None = None,
    limit: int | None = None,
) -> list[dict]:
    """Select events by kind prefix and field equality.

    ``kinds`` is a list of kind prefixes (``["oracle."]`` matches every
    oracle event); ``where`` maps field names to required values, with
    values compared after ``str()`` so CLI-supplied filters work against
    numeric fields; ``limit`` truncates the result.
    """
    prefixes = tuple(kinds) if kinds else None
    selected = []
    for event in events:
        if prefixes is not None and not str(event.get("kind", "")).startswith(prefixes):
            continue
        if where and any(
            str(event.get(key)) != str(value) for key, value in where.items()
        ):
            continue
        selected.append(event)
        if limit is not None and len(selected) >= limit:
            break
    return selected


def format_event(event: dict) -> str:
    """One-line human rendering: ``seq kind field=value ...``."""
    seq = event.get("seq", "?")
    kind = event.get("kind", "?")
    fields = " ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in ("seq", "kind")
    )
    return f"{seq:>6} {kind:<24} {fields}".rstrip()
