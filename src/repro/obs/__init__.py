"""Observability: structured events, metrics and the result protocol.

The paper's method is measurement, and ``repro.obs`` makes the
reproduction's own measurement loops observable the same way nanoBench
and CacheQuery are: every hot layer emits structured events through a
zero-cost-when-disabled :class:`~repro.obs.trace.Tracer`, cheap counters
and timers aggregate into the module-wide :data:`~repro.obs.metrics.DEFAULT`
:class:`~repro.obs.metrics.Metrics` store, and every experiment surfaces
its outcome as a schema-versioned
:class:`~repro.obs.result.ExperimentResult`.

Five layers:

* :mod:`repro.obs.trace` — the event bus.  ``install(Tracer(...))`` (or
  the ``tracing(...)`` context manager) turns on event emission from
  :class:`~repro.cache.set.CacheSet` (hit/miss/evict/fill),
  :class:`~repro.core.oracle.MissCountOracle` (queries),
  :class:`~repro.core.inference.PermutationInference` (phases, verify),
  :class:`~repro.core.identify.CandidateIdentification` (candidates
  accepted/rejected) and :class:`~repro.runner.core.ExperimentRunner`
  (cells scheduled/retried/completed).  With no tracer installed the
  instrumentation is a single global ``is None`` check.
* :mod:`repro.obs.metrics` — counters, timers and histograms,
  snapshot-able to JSON, printable as a summary table, and mergeable
  across processes (the runner folds worker stores back into the
  parent's :data:`~repro.obs.metrics.DEFAULT`).
* :mod:`repro.obs.spans` — hierarchical timed spans (context manager and
  decorator) emitting ``span.start``/``span.end`` events and feeding the
  metrics timers; span context propagates into runner worker processes
  so a cell's spans nest under the run that scheduled it.
* :mod:`repro.obs.result` — the unified experiment result protocol
  (:class:`~repro.obs.result.ExperimentResult`) shared by inference
  results, miss-ratio matrices, the CLI and the E1-E12 benchmarks.
* :mod:`repro.obs.ledger` — schema-versioned ``*.ledger.json`` run
  manifests (git SHA, params, seeds, environment, wall time, artifact
  digests, counter snapshot) written next to every sidecar and compared
  by the ``repro-cache report`` subcommand.

Three more layers build the *across-run* plane on top of those five:

* :mod:`repro.obs.history` — the WAL-mode sqlite run-history store
  (``history-v<schema>.sqlite``) that every ledger and ``BENCH_*.json``
  trajectory point can be recorded into (auto-recorded by the CLI under
  ``--metrics``, backfilled by ``repro-cache history ingest``);
* :mod:`repro.obs.regress` — the perf-regression detector (median + MAD
  baselines per experiment group) behind ``repro-cache history check``;
* :mod:`repro.obs.dash` — the static HTML dashboard renderer behind
  ``repro-cache dash``.

The event schema, result protocol, ledger schema and run-history plane
are documented in OBSERVABILITY.md.
"""

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    build_ledger,
    diff_ledgers,
    format_ledger,
    ledger_path_for,
    read_ledger,
    validate_ledger,
    write_ledger,
)
from repro.obs.metrics import DEFAULT, Metrics, MetricSummary
from repro.obs.result import (
    SCHEMA_VERSION,
    ExperimentResult,
    validate_result,
    validate_result_file,
)
from repro.obs.spans import adopt, current_span, span, traced
from repro.obs.trace import (
    JsonlWriter,
    Tracer,
    filter_events,
    format_event,
    install,
    read_jsonl,
    tracing,
    uninstall,
    write_jsonl,
)

__all__ = [
    "DEFAULT",
    "Metrics",
    "MetricSummary",
    "SCHEMA_VERSION",
    "LEDGER_SCHEMA_VERSION",
    "ExperimentResult",
    "RunLedger",
    "build_ledger",
    "diff_ledgers",
    "format_ledger",
    "ledger_path_for",
    "read_ledger",
    "validate_ledger",
    "validate_result",
    "validate_result_file",
    "write_ledger",
    "JsonlWriter",
    "Tracer",
    "adopt",
    "current_span",
    "span",
    "traced",
    "filter_events",
    "format_event",
    "install",
    "read_jsonl",
    "tracing",
    "uninstall",
    "write_jsonl",
]
