"""Run ledgers: schema-versioned provenance manifests for experiments.

Reproducing a measurement paper means being able to answer, for any
number in any table, *which code, inputs and environment produced it*.
A :class:`RunLedger` is a small JSON manifest written next to every
metrics sidecar (CLI ``--metrics`` runs and all E1-E12 benchmarks):

.. code-block:: json

    {
      "ledger_schema_version": 1,
      "name": "e3_missratio",
      "created": "2026-02-11T09:30:12Z",
      "wall_seconds": 12.7,
      "params": {"policies": ["lru", "fifo"], "seed": 0},
      "seed": 0,
      "jobs": 4,
      "kernel": true,
      "git": {"sha": "b557c57...", "dirty": false},
      "env": {"python": "3.11.9", "platform": "Linux-...", "cpu_count": 8},
      "counters": {"oracle.measurements": 1234, "kernel.calls": 99},
      "artifacts": [{"path": "e3_missratio.metrics.json",
                     "sha256": "...", "bytes": 4112}]
    }

Field contract (checked by :func:`validate_ledger`):

* ``ledger_schema_version`` — integer, currently
  :data:`LEDGER_SCHEMA_VERSION`;
* ``name`` — non-empty string; ``created`` — UTC timestamp string;
* ``wall_seconds`` — number; ``params`` / ``env`` / ``counters`` — JSON
  objects; ``git`` — object or null;
* ``seed`` / ``jobs`` — integer or null; ``kernel`` — boolean or null;
* ``artifacts`` — list of ``{"path", "sha256", "bytes"}`` records, the
  content digests of the files the run produced.

``counters`` carries the run's :class:`~repro.obs.metrics.Metrics`
counter snapshot, so two ledgers can be *diffed* — wall time, query
budget (``oracle.measurements`` / ``oracle.accesses``), kernel usage —
without re-opening the larger sidecars.  The ``repro-cache report``
subcommand renders exactly that comparison.

``python -m repro.obs.ledger FILE...`` validates ledger files (used by
CI, same exit convention as ``python -m repro.obs.result``).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as _platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ResultSchemaError
from repro.util.tables import format_table

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "RunLedger",
    "build_ledger",
    "collect_env",
    "diff_ledgers",
    "file_digest",
    "format_ledger",
    "git_revision",
    "ledger_path_for",
    "read_ledger",
    "validate_ledger",
    "verify_artifacts",
    "write_ledger",
    "main",
]

#: Current version of the ledger manifest schema.
LEDGER_SCHEMA_VERSION = 1


def ledger_path_for(artifact: str | Path) -> Path:
    """The ledger path paired with an artifact path.

    ``x.metrics.json`` maps to ``x.ledger.json``; anything else gets
    ``.ledger.json`` appended, so the pairing is invertible by eye.
    """
    artifact = Path(artifact)
    name = artifact.name
    if name.endswith(".metrics.json"):
        return artifact.with_name(name[: -len(".metrics.json")] + ".ledger.json")
    return artifact.with_name(name + ".ledger.json")


def git_revision(cwd: str | Path | None = None) -> dict | None:
    """``{"sha": ..., "dirty": ...}`` of the enclosing git checkout.

    Returns None when git is unavailable or the directory is not a
    repository — a ledger must never fail the run it documents.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"sha": sha.stdout.strip(), "dirty": dirty}
    except Exception:
        return None


def collect_env() -> dict:
    """The environment facts that matter for reproducing a run."""
    return {
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def file_digest(path: str | Path) -> dict:
    """Artifact record for one produced file: path name, sha256, size."""
    path = Path(path)
    hasher = hashlib.sha256()
    data = path.read_bytes()
    hasher.update(data)
    return {"path": path.name, "sha256": hasher.hexdigest(), "bytes": len(data)}


def validate_ledger(payload: object) -> dict:
    """Check ``payload`` against the ledger schema; return it on success.

    Raises :class:`~repro.errors.ResultSchemaError` with a field-level
    message on any violation.
    """
    if not isinstance(payload, dict):
        raise ResultSchemaError(
            f"ledger must be a JSON object, got {type(payload).__name__}"
        )
    required = (
        "ledger_schema_version", "name", "created", "wall_seconds",
        "params", "seed", "jobs", "kernel", "git", "env", "counters",
        "artifacts",
    )
    missing = [key for key in required if key not in payload]
    if missing:
        raise ResultSchemaError(f"ledger is missing fields: {', '.join(missing)}")
    version = payload["ledger_schema_version"]
    if not isinstance(version, int) or isinstance(version, bool):
        raise ResultSchemaError(
            f"ledger_schema_version must be an integer, got {version!r}"
        )
    if version != LEDGER_SCHEMA_VERSION:
        raise ResultSchemaError(
            f"unsupported ledger_schema_version {version} "
            f"(supported: {LEDGER_SCHEMA_VERSION})"
        )
    if not isinstance(payload["name"], str) or not payload["name"]:
        raise ResultSchemaError(
            f"name must be a non-empty string, got {payload['name']!r}"
        )
    if not isinstance(payload["created"], str):
        raise ResultSchemaError("created must be a timestamp string")
    if not isinstance(payload["wall_seconds"], (int, float)) or isinstance(
        payload["wall_seconds"], bool
    ):
        raise ResultSchemaError("wall_seconds must be a number")
    for key in ("params", "env", "counters"):
        if not isinstance(payload[key], dict):
            raise ResultSchemaError(
                f"{key} must be an object, got {type(payload[key]).__name__}"
            )
    if payload["git"] is not None and not isinstance(payload["git"], dict):
        raise ResultSchemaError("git must be an object or null")
    for key in ("seed", "jobs"):
        value = payload[key]
        if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
            raise ResultSchemaError(f"{key} must be an integer or null")
    if payload["kernel"] is not None and not isinstance(payload["kernel"], bool):
        raise ResultSchemaError("kernel must be a boolean or null")
    artifacts = payload["artifacts"]
    if not isinstance(artifacts, list):
        raise ResultSchemaError("artifacts must be a list")
    for record in artifacts:
        if not isinstance(record, dict) or not {"path", "sha256", "bytes"} <= set(record):
            raise ResultSchemaError(
                "each artifact needs path/sha256/bytes, got " f"{record!r}"
            )
    return payload


@dataclass(frozen=True)
class RunLedger:
    """One run's provenance manifest (see the module docstring)."""

    name: str
    created: str
    wall_seconds: float
    params: dict = field(default_factory=dict)
    seed: int | None = None
    jobs: int | None = None
    kernel: bool | None = None
    git: dict | None = None
    env: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    artifacts: list = field(default_factory=list)
    ledger_schema_version: int = LEDGER_SCHEMA_VERSION

    def to_dict(self) -> dict:
        """Plain-dict rendering following the documented schema."""
        return {
            "ledger_schema_version": self.ledger_schema_version,
            "name": self.name,
            "created": self.created,
            "wall_seconds": self.wall_seconds,
            "params": self.params,
            "seed": self.seed,
            "jobs": self.jobs,
            "kernel": self.kernel,
            "git": self.git,
            "env": self.env,
            "counters": self.counters,
            "artifacts": self.artifacts,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunLedger":
        """Build from a dict, validating against the schema first."""
        validate_ledger(payload)
        return cls(
            name=payload["name"],
            created=payload["created"],
            wall_seconds=float(payload["wall_seconds"]),
            params=payload["params"],
            seed=payload["seed"],
            jobs=payload["jobs"],
            kernel=payload["kernel"],
            git=payload["git"],
            env=payload["env"],
            counters=payload["counters"],
            artifacts=payload["artifacts"],
            ledger_schema_version=payload["ledger_schema_version"],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunLedger":
        """Parse and validate a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ResultSchemaError(f"not valid JSON: {error}") from None
        return cls.from_dict(payload)


def build_ledger(
    name: str,
    params: dict | None = None,
    wall_seconds: float = 0.0,
    seed: int | None = None,
    jobs: int | None = None,
    kernel: bool | None = None,
    counters: dict | None = None,
    artifacts: list | tuple = (),
    cwd: str | Path | None = None,
) -> RunLedger:
    """Assemble a ledger for a run that just finished.

    ``artifacts`` is a list of file paths the run produced; each is
    digested.  ``params`` is passed through ``json`` round-tripping so
    non-JSON values degrade to strings instead of failing the write.
    """
    return RunLedger(
        name=name,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        wall_seconds=wall_seconds,
        params=json.loads(json.dumps(params or {}, default=str)),
        seed=seed,
        jobs=jobs,
        kernel=kernel,
        git=git_revision(cwd),
        env=collect_env(),
        counters=dict(counters or {}),
        artifacts=[file_digest(path) for path in artifacts if Path(path).exists()],
    )


def write_ledger(ledger: RunLedger, path: str | Path) -> Path:
    """Write one ledger manifest; returns the path written."""
    path = Path(path)
    path.write_text(ledger.to_json(indent=2) + "\n", encoding="utf-8")
    return path


def read_ledger(path: str | Path) -> RunLedger:
    """Load and validate one ledger file."""
    return RunLedger.from_json(Path(path).read_text(encoding="utf-8"))


def verify_artifacts(
    ledger: RunLedger, base_dir: str | Path = "."
) -> list[tuple[str, str]]:
    """Check the ledger's artifact digests against the files on disk.

    Returns ``(path, problem)`` pairs — ``missing`` for an artifact file
    that no longer exists, ``digest mismatch ...`` / ``size mismatch
    ...`` for one whose content changed since the ledger was written.
    An empty list means every recorded artifact still matches.
    """
    problems: list[tuple[str, str]] = []
    base = Path(base_dir)
    for record in ledger.artifacts:
        path = base / record["path"]
        if not path.exists():
            problems.append((record["path"], "missing"))
            continue
        actual = file_digest(path)
        if actual["sha256"] != record["sha256"]:
            problems.append(
                (record["path"],
                 f"digest mismatch (recorded {str(record['sha256'])[:12]}, "
                 f"actual {actual['sha256'][:12]})")
            )
        elif actual["bytes"] != record["bytes"]:
            problems.append(
                (record["path"],
                 f"size mismatch (recorded {record['bytes']}, "
                 f"actual {actual['bytes']})")
            )
    return problems


# -- reporting ---------------------------------------------------------------

#: Counters surfaced first in summaries/diffs: the paper's cost model
#: (query budget) and the execution-tier counters.
KEY_COUNTERS = (
    "oracle.measurements",
    "oracle.accesses",
    "oracle.cache_hits",
    "db.hit",
    "db.miss",
    "db.write",
    "kernel.calls",
    "kernel.accesses",
    "kernel.compile.hit",
    "kernel.compile.load",
    "kernel.compile.miss",
    "kernel.trie.plans",
    "kernel.trie.reused_accesses",
    "runner.chunk_retries",
    "runner.pool.spawned",
    "runner.pool.reused",
    "runner.pool.restarted",
    "runner.shm.broadcasts",
    "runner.shm.bytes",
    "runner.shm.fallbacks",
)


def _cells_total(counters: dict) -> int:
    return sum(
        count for name, count in counters.items()
        if name.startswith("runner.cells.")
    )


def format_ledger(ledger: RunLedger) -> str:
    """Render one ledger as a printable summary table."""
    git = ledger.git or {}
    rows = [
        ["name", ledger.name],
        ["created", ledger.created],
        ["wall_seconds", f"{ledger.wall_seconds:.3f}"],
        ["git", f"{git.get('sha', '-')}{' (dirty)' if git.get('dirty') else ''}"],
        ["python", ledger.env.get("python", "-")],
        ["seed", ledger.seed if ledger.seed is not None else "-"],
        ["jobs", ledger.jobs if ledger.jobs is not None else "-"],
        ["kernel", ledger.kernel if ledger.kernel is not None else "-"],
        ["runner.cells", _cells_total(ledger.counters) or "-"],
    ]
    for name in KEY_COUNTERS:
        if name in ledger.counters:
            rows.append([name, ledger.counters[name]])
    for record in ledger.artifacts:
        rows.append(
            [f"artifact {record['path']}",
             f"{record['bytes']} bytes sha256:{str(record['sha256'])[:12]}"]
        )
    return format_table(["field", "value"], rows, title=f"ledger {ledger.name}")


def diff_ledgers(a: RunLedger, b: RunLedger) -> str:
    """Render a comparison table between two runs' ledgers.

    Wall time first, then every counter present in either run, with
    absolute delta and b/a ratio — the regression view for wall-time and
    query-budget drift between two invocations of the same experiment.
    """
    def _fmt_ratio(va: float, vb: float) -> str:
        if not va:
            return "-" if not vb else "new"
        return f"{vb / va:.2f}x"

    rows: list[list[object]] = [
        [
            "wall_seconds",
            f"{a.wall_seconds:.3f}",
            f"{b.wall_seconds:.3f}",
            f"{b.wall_seconds - a.wall_seconds:+.3f}",
            _fmt_ratio(a.wall_seconds, b.wall_seconds),
        ]
    ]
    names = sorted(set(a.counters) | set(b.counters))
    # Key counters first, everything else after, both alphabetical.
    names.sort(key=lambda name: (name not in KEY_COUNTERS, name))
    for name in names:
        va = a.counters.get(name, 0)
        vb = b.counters.get(name, 0)
        rows.append([name, va, vb, f"{vb - va:+d}", _fmt_ratio(va, vb)])
    git_a = (a.git or {}).get("sha", "-")
    git_b = (b.git or {}).get("sha", "-")
    header = (
        f"a: {a.name} @ {a.created} (git {str(git_a)[:12]}, jobs={a.jobs}, "
        f"kernel={a.kernel})\n"
        f"b: {b.name} @ {b.created} (git {str(git_b)[:12]}, jobs={b.jobs}, "
        f"kernel={b.kernel})\n"
    )
    return header + format_table(
        ["metric", "a", "b", "delta", "ratio"], rows, title="ledger diff"
    )


def main(argv: list[str] | None = None) -> int:
    """Validate ledger files given on the command line (CI entry point).

    ``--verify`` additionally checks each ledger's artifact digests
    against the files next to it (see :func:`verify_artifacts`).
    """
    paths = list(sys.argv[1:] if argv is None else argv)
    verify = "--verify" in paths
    paths = [path for path in paths if path != "--verify"]
    if not paths:
        print(
            "usage: python -m repro.obs.ledger [--verify] FILE [FILE ...]",
            file=sys.stderr,
        )
        return 2
    status = 0
    for path in paths:
        try:
            ledger = read_ledger(path)
        except (OSError, ResultSchemaError) as error:
            print(f"{path}: INVALID: {error}", file=sys.stderr)
            status = 1
            continue
        problems = (
            verify_artifacts(ledger, Path(path).parent) if verify else []
        )
        if problems:
            for name, problem in problems:
                print(f"{path}: ARTIFACT {name}: {problem}", file=sys.stderr)
            status = 1
        else:
            print(
                f"{path}: ok (name={ledger.name}, "
                f"ledger_schema_version={ledger.ledger_schema_version})"
            )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
