"""repro: reverse engineering of cache replacement policies.

A from-scratch reproduction of Abel & Reineke, *Reverse engineering of
cache replacement policies in Intel microprocessors and their
evaluation* (ISPASS 2014), with the hardware side replaced by a faithful
simulated measurement platform (see DESIGN.md).

Quick start::

    from repro import HardwarePlatform, HardwareSetOracle, get_processor
    from repro import reverse_engineer

    platform = HardwarePlatform(get_processor("nehalem-like"))
    finding = reverse_engineer(HardwareSetOracle(platform, "L1"))
    print(finding.summary())   # -> "plru (permutation)"

Package map:

* :mod:`repro.policies` — replacement policy zoo and registry;
* :mod:`repro.cache` — set-associative caches and hierarchies;
* :mod:`repro.hardware` — simulated processors, counters, the harness;
* :mod:`repro.core` — the inference algorithms (the paper's contribution);
* :mod:`repro.workloads` — trace generators and app models;
* :mod:`repro.eval` — performance and predictability evaluation;
* :mod:`repro.runner` — deterministic parallel experiment runner;
* :mod:`repro.obs` — tracing, metrics and the ExperimentResult protocol.
"""

from repro.cache import Cache, CacheConfig, CacheHierarchy
from repro.core import (
    CandidateIdentification,
    InferenceConfig,
    PermutationInference,
    SimulatedSetOracle,
    VotingOracle,
    derive_spec_from_policy,
    equivalent,
    name_spec,
    reverse_engineer,
)
from repro.errors import (
    ConfigurationError,
    InferenceError,
    MeasurementError,
    ReproError,
    SimulationError,
    TraceFormatError,
    UnknownPolicyError,
)
from repro.hardware import (
    PROCESSORS,
    HardwarePlatform,
    HardwareSetOracle,
    NoiseModel,
    get_processor,
)
from repro.errors import ResultSchemaError
from repro.obs import ExperimentResult, Metrics, Tracer, tracing, validate_result
from repro.policies import (
    PermutationPolicy,
    PermutationSpec,
    PolicyFactory,
    available,
    available_policies,
    default_policies,
    get,
    make_policy,
    register,
)
from repro.runner import ExperimentRunner, SimCell, run_sim_cells
from repro.workloads import APP_MODELS, Trace, workload_suite

__version__ = "1.0.0"

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "PermutationInference",
    "InferenceConfig",
    "CandidateIdentification",
    "SimulatedSetOracle",
    "VotingOracle",
    "derive_spec_from_policy",
    "equivalent",
    "name_spec",
    "reverse_engineer",
    "HardwarePlatform",
    "HardwareSetOracle",
    "NoiseModel",
    "PROCESSORS",
    "get_processor",
    "PermutationPolicy",
    "PermutationSpec",
    "PolicyFactory",
    "available",
    "available_policies",
    "default_policies",
    "get",
    "make_policy",
    "register",
    "ExperimentResult",
    "Metrics",
    "Tracer",
    "tracing",
    "validate_result",
    "Trace",
    "APP_MODELS",
    "workload_suite",
    "ExperimentRunner",
    "SimCell",
    "run_sim_cells",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "MeasurementError",
    "InferenceError",
    "UnknownPolicyError",
    "TraceFormatError",
    "ResultSchemaError",
    "__version__",
]
