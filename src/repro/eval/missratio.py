"""Miss-ratio evaluation of replacement policies.

The performance half of the paper's evaluation: run workload traces
through caches configured with each policy and compare miss ratios.
Provides single runs, (policy x workload) matrices and cache-size sweeps
— the data behind experiments E3 and E4.

Grid entry points (:func:`miss_ratio_matrix`, :func:`cache_size_sweep`)
accept ``jobs=``/``runner=`` and fan their cells out through
:mod:`repro.runner`; the default stays serial, and the parallel path is
guaranteed to produce bit-identical results (see the runner's module
docstring for why).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.cache import Cache, CacheConfig, CacheStats
from repro.kernels import try_simulate_trace
from repro.obs.result import ExperimentResult
from repro.policies import PolicyFactory
from repro.runner import ExperimentRunner, SimCell, run_sim_cells
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace


def simulate_trace(
    trace: Trace,
    config: CacheConfig,
    policy: str | PolicyFactory,
    seed: int = 0,
) -> CacheStats:
    """Run a trace through a fresh cache; return its statistics.

    Routed through the compiled kernel (:mod:`repro.kernels`) whenever
    it is enabled and no active tracer wants per-access ``cache.*``
    events; the interpreted path below is the reference behaviour, and
    the kernel is bit-identical to it.
    """
    stats = try_simulate_trace(trace, config, policy, seed)
    if stats is not None:
        return stats
    cache = Cache(config, policy, rng=SeededRng(seed))
    for address in trace:
        cache.access(address)
    return cache.stats.snapshot()


def miss_ratio(
    trace: Trace,
    config: CacheConfig,
    policy: str | PolicyFactory,
    seed: int = 0,
) -> float:
    """Miss ratio of one policy on one trace."""
    return simulate_trace(trace, config, policy, seed).miss_ratio


@dataclass(frozen=True)
class MissRatioCell:
    """One (policy, trace) measurement."""

    policy: str
    trace: str
    miss_ratio: float
    misses: int
    accesses: int


@dataclass(frozen=True)
class MissRatioMatrix:
    """Miss ratios of several policies across several traces."""

    config: CacheConfig
    cells: tuple[MissRatioCell, ...]

    @cached_property
    def _index(self) -> dict[tuple[str, str], MissRatioCell]:
        """(policy, trace) -> cell, built once; rendering is O(cells)."""
        return {(cell.policy, cell.trace): cell for cell in self.cells}

    def cell(self, policy: str, trace: str) -> MissRatioCell:
        """Look up one cell."""
        try:
            return self._index[(policy, trace)]
        except KeyError:
            raise KeyError(f"no cell for policy={policy!r} trace={trace!r}") from None

    def ratio(self, policy: str, trace: str) -> float:
        """Look up one cell's miss ratio."""
        return self.cell(policy, trace).miss_ratio

    def policies(self) -> list[str]:
        """Policy names, in first-seen order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.policy not in seen:
                seen.append(cell.policy)
        return seen

    def traces(self) -> list[str]:
        """Trace names, in first-seen order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.trace not in seen:
                seen.append(cell.trace)
        return seen

    def rows(self) -> list[list[object]]:
        """Render as table rows: one row per trace, one column per policy."""
        result = []
        for trace in self.traces():
            row: list[object] = [trace]
            for policy in self.policies():
                row.append(self.ratio(policy, trace))
            result.append(row)
        return result

    def relative_to(self, baseline: str) -> "MissRatioMatrix":
        """Divide every cell by the baseline policy's cell per trace.

        Traces on which the baseline has zero misses keep an absolute 1.0
        for the baseline and report ``inf``-free ratios by treating the
        baseline as one miss (conservative, documented in EXPERIMENTS.md).
        The raw ``misses``/``accesses`` counts are carried through from
        the source cells, so the conservative denominator stays correct
        even when applied to an already-relative matrix.
        """
        cells = []
        for trace in self.traces():
            base_cell = self.cell(baseline, trace)
            base = base_cell.miss_ratio
            # "One miss" on this trace, in miss-ratio units.
            one_miss = 1.0 / max(1, base_cell.accesses)
            denominator = base if base > 0 else one_miss
            for policy in self.policies():
                source = self.cell(policy, trace)
                if policy == baseline:
                    relative = 1.0
                else:
                    relative = source.miss_ratio / denominator
                cells.append(
                    MissRatioCell(
                        policy=policy,
                        trace=trace,
                        miss_ratio=relative,
                        misses=source.misses,
                        accesses=source.accesses,
                    )
                )
        return MissRatioMatrix(config=self.config, cells=tuple(cells))

    # -- unified result protocol ------------------------------------------
    def to_experiment_result(
        self,
        name: str = "miss-ratio-matrix",
        params: dict | None = None,
        metrics: dict | None = None,
    ) -> ExperimentResult:
        """Package the matrix as a schema-versioned ExperimentResult."""
        return ExperimentResult(
            name=name,
            params=dict(params or {}),
            data={
                "config": {
                    "name": self.config.name,
                    "size": self.config.size,
                    "ways": self.config.ways,
                    "line_size": self.config.line_size,
                    "inclusion": self.config.inclusion,
                    "index_hash": self.config.index_hash,
                },
                "cells": [
                    {
                        "policy": cell.policy,
                        "trace": cell.trace,
                        "miss_ratio": cell.miss_ratio,
                        "misses": cell.misses,
                        "accesses": cell.accesses,
                    }
                    for cell in self.cells
                ],
            },
            metrics=dict(metrics or {}),
        )

    @classmethod
    def from_experiment_result(cls, result: ExperimentResult) -> "MissRatioMatrix":
        """Rebuild a matrix from its ExperimentResult form."""
        config = CacheConfig(**result.data["config"])
        cells = tuple(MissRatioCell(**cell) for cell in result.data["cells"])
        return cls(config=config, cells=cells)


def miss_ratio_matrix(
    traces: Sequence[Trace],
    config: CacheConfig,
    policies: Sequence[str | PolicyFactory],
    seed: int = 0,
    jobs: int | None = None,
    runner: ExperimentRunner | None = None,
    memoize: bool = True,
) -> MissRatioMatrix:
    """Evaluate every policy on every trace at one cache configuration.

    ``jobs`` > 1 (or a parallel ``runner``) distributes the grid over
    worker processes; results are bit-identical to the serial default.
    """
    cells = [
        SimCell.make(trace, config, policy, seed)
        for policy in policies
        for trace in traces
    ]
    results = run_sim_cells(cells, runner=runner, jobs=jobs, memoize=memoize)
    return MissRatioMatrix(
        config=config,
        cells=tuple(
            MissRatioCell(
                policy=result.policy,
                trace=result.trace,
                miss_ratio=result.stats.miss_ratio,
                misses=result.stats.misses,
                accesses=result.stats.accesses,
            )
            for result in results
        ),
    )


@dataclass(frozen=True)
class SweepPoint:
    """One (policy, cache size) measurement of a size sweep."""

    policy: str
    cache_size: int
    miss_ratio: float


def cache_size_sweep(
    trace: Trace,
    sizes: Sequence[int],
    policies: Sequence[str | PolicyFactory],
    ways: int = 8,
    line_size: int = 64,
    seed: int = 0,
    jobs: int | None = None,
    runner: ExperimentRunner | None = None,
    memoize: bool = True,
) -> list[SweepPoint]:
    """Miss ratio of each policy at several cache sizes (experiment E4)."""
    cells = [
        SimCell.make(trace, CacheConfig("sweep", size, ways, line_size), policy, seed)
        for size in sizes
        for policy in policies
    ]
    results = run_sim_cells(cells, runner=runner, jobs=jobs, memoize=memoize)
    return [
        SweepPoint(
            policy=result.policy,
            cache_size=cell.config.size,
            miss_ratio=result.stats.miss_ratio,
        )
        for cell, result in zip(cells, results)
    ]
