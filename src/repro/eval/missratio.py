"""Miss-ratio evaluation of replacement policies.

The performance half of the paper's evaluation: run workload traces
through caches configured with each policy and compare miss ratios.
Provides single runs, (policy x workload) matrices and cache-size sweeps
— the data behind experiments E3 and E4.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cache import Cache, CacheConfig, CacheStats
from repro.policies import PolicyFactory
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace


def simulate_trace(
    trace: Trace,
    config: CacheConfig,
    policy: str | PolicyFactory,
    seed: int = 0,
) -> CacheStats:
    """Run a trace through a fresh cache; return its statistics."""
    cache = Cache(config, policy, rng=SeededRng(seed))
    for address in trace:
        cache.access(address)
    return cache.stats.snapshot()


def miss_ratio(
    trace: Trace,
    config: CacheConfig,
    policy: str | PolicyFactory,
    seed: int = 0,
) -> float:
    """Miss ratio of one policy on one trace."""
    return simulate_trace(trace, config, policy, seed).miss_ratio


@dataclass(frozen=True)
class MissRatioCell:
    """One (policy, trace) measurement."""

    policy: str
    trace: str
    miss_ratio: float
    misses: int
    accesses: int


@dataclass(frozen=True)
class MissRatioMatrix:
    """Miss ratios of several policies across several traces."""

    config: CacheConfig
    cells: tuple[MissRatioCell, ...]

    def ratio(self, policy: str, trace: str) -> float:
        """Look up one cell's miss ratio."""
        for cell in self.cells:
            if cell.policy == policy and cell.trace == trace:
                return cell.miss_ratio
        raise KeyError(f"no cell for policy={policy!r} trace={trace!r}")

    def policies(self) -> list[str]:
        """Policy names, in first-seen order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.policy not in seen:
                seen.append(cell.policy)
        return seen

    def traces(self) -> list[str]:
        """Trace names, in first-seen order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.trace not in seen:
                seen.append(cell.trace)
        return seen

    def rows(self) -> list[list[object]]:
        """Render as table rows: one row per trace, one column per policy."""
        result = []
        for trace in self.traces():
            row: list[object] = [trace]
            for policy in self.policies():
                row.append(self.ratio(policy, trace))
            result.append(row)
        return result

    def relative_to(self, baseline: str) -> "MissRatioMatrix":
        """Divide every cell by the baseline policy's cell per trace.

        Traces on which the baseline has zero misses keep an absolute 1.0
        for the baseline and report ``inf``-free ratios by treating the
        baseline as one miss (conservative, documented in EXPERIMENTS.md).
        """
        cells = []
        for trace in self.traces():
            base = self.ratio(baseline, trace)
            for policy in self.policies():
                cell_ratio = self.ratio(policy, trace)
                denominator = base if base > 0 else 1.0 / max(
                    1, next(c.accesses for c in self.cells if c.trace == trace)
                )
                cells.append(
                    MissRatioCell(
                        policy=policy,
                        trace=trace,
                        miss_ratio=cell_ratio / denominator,
                        misses=0,
                        accesses=0,
                    )
                )
        return MissRatioMatrix(config=self.config, cells=tuple(cells))


def miss_ratio_matrix(
    traces: Sequence[Trace],
    config: CacheConfig,
    policies: Sequence[str | PolicyFactory],
    seed: int = 0,
) -> MissRatioMatrix:
    """Evaluate every policy on every trace at one cache configuration."""
    cells = []
    for policy in policies:
        name = policy if isinstance(policy, str) else policy.name
        for trace in traces:
            stats = simulate_trace(trace, config, policy, seed)
            cells.append(
                MissRatioCell(
                    policy=name,
                    trace=trace.name,
                    miss_ratio=stats.miss_ratio,
                    misses=stats.misses,
                    accesses=stats.accesses,
                )
            )
    return MissRatioMatrix(config=config, cells=tuple(cells))


@dataclass(frozen=True)
class SweepPoint:
    """One (policy, cache size) measurement of a size sweep."""

    policy: str
    cache_size: int
    miss_ratio: float


def cache_size_sweep(
    trace: Trace,
    sizes: Sequence[int],
    policies: Sequence[str | PolicyFactory],
    ways: int = 8,
    line_size: int = 64,
    seed: int = 0,
) -> list[SweepPoint]:
    """Miss ratio of each policy at several cache sizes (experiment E4)."""
    points = []
    for size in sizes:
        config = CacheConfig("sweep", size, ways, line_size)
        for policy in policies:
            name = policy if isinstance(policy, str) else policy.name
            points.append(
                SweepPoint(
                    policy=name,
                    cache_size=size,
                    miss_ratio=miss_ratio(trace, config, policy, seed),
                )
            )
    return points
