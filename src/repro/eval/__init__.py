"""Evaluation of replacement policies: performance and predictability."""

from repro.eval.comparison import AgreementMatrix, agreement_matrix
from repro.eval.competitiveness import CompetitivenessResult, relative_competitiveness
from repro.eval.hierarchy_eval import (
    DEFAULT_LATENCIES,
    HierarchyEvaluation,
    compare_policy_assignments,
    evaluate_hierarchy,
)
from repro.eval.missratio import (
    MissRatioCell,
    MissRatioMatrix,
    SweepPoint,
    cache_size_sweep,
    miss_ratio,
    miss_ratio_matrix,
    simulate_trace,
)
from repro.eval.predictability import (
    PredictabilityResult,
    collapse_depth_policy,
    collapse_depth_spec,
    evict_metric_policy,
    evict_metric_spec,
    predictability_of_policy,
    predictability_of_spec,
    reachable_full_states,
)

__all__ = [
    "DEFAULT_LATENCIES",
    "HierarchyEvaluation",
    "compare_policy_assignments",
    "evaluate_hierarchy",
    "AgreementMatrix",
    "agreement_matrix",
    "CompetitivenessResult",
    "relative_competitiveness",
    "MissRatioCell",
    "MissRatioMatrix",
    "SweepPoint",
    "cache_size_sweep",
    "miss_ratio",
    "miss_ratio_matrix",
    "simulate_trace",
    "PredictabilityResult",
    "predictability_of_policy",
    "predictability_of_spec",
    "evict_metric_policy",
    "evict_metric_spec",
    "collapse_depth_policy",
    "collapse_depth_spec",
    "reachable_full_states",
]
