"""Behavioural agreement between policies.

Experiment E8: how often do two policies produce the *same* hit/miss
outcome on random access streams?  High agreement explains why random
testing alone cannot identify a policy and motivates the crafted
distinguishing sequences of :mod:`repro.core.distinguish`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.distinguish import established_set
from repro.policies import ReplacementPolicy
from repro.runner import ExperimentRunner


@dataclass(frozen=True)
class AgreementMatrix:
    """Pairwise agreement fractions over a policy list."""

    policies: tuple[str, ...]
    #: agreement[i][j] = fraction of accesses with identical hit/miss.
    agreement: tuple[tuple[float, ...], ...]

    def value(self, first: str, second: str) -> float:
        """Agreement between two named policies."""
        i = self.policies.index(first)
        j = self.policies.index(second)
        return self.agreement[i][j]

    def rows(self) -> list[list[object]]:
        """Table rows: policy name followed by one column per policy."""
        result = []
        for name, row in zip(self.policies, self.agreement):
            result.append([name] + list(row))
        return result


def _replay_stream(task: tuple[ReplacementPolicy, list[int]]) -> list[bool]:
    """Replay one access stream against one policy's established set.

    Module-level so the experiment runner can ship it to worker
    processes; :func:`established_set` clones and resets the policy, so
    replays are pure functions of (policy state, stream).
    """
    policy, stream = task
    cache_set = established_set(policy)
    return [cache_set.access(block).hit for block in stream]


def agreement_matrix(
    policies: dict[str, ReplacementPolicy],
    accesses: int = 20_000,
    seed: int = 0,
    jobs: int | None = None,
    runner: ExperimentRunner | None = None,
) -> AgreementMatrix:
    """Measure pairwise hit/miss agreement on one random access stream.

    All policies replay the identical stream from their established
    state; the stream mixes fresh blocks with reuse of a recent window,
    like the verification traces of the inference pipeline.  Replays are
    independent per policy, so ``jobs``/``runner`` can distribute them;
    the outcome vectors are identical either way.
    """
    names = tuple(sorted(policies))
    ways_values = {policies[name].ways for name in names}
    if len(ways_values) != 1:
        raise ValueError("all compared policies must share one associativity")
    ways = ways_values.pop()
    rng = random.Random(seed)
    next_fresh = ways
    window = ways + 3
    stream = []
    for _ in range(accesses):
        if rng.random() < 0.3:
            block = next_fresh
            next_fresh += 1
        else:
            block = max(next_fresh - 1 - rng.randrange(window), 0)
        stream.append(block)
    if runner is None:
        runner = ExperimentRunner(jobs=jobs)
    replayed = runner.map(
        _replay_stream,
        [(policies[name], stream) for name in names],
        labels=[f"replay:{name}" for name in names],
    )
    outcomes = dict(zip(names, replayed))
    matrix = []
    for first in names:
        row = []
        for second in names:
            same = sum(
                1 for a, b in zip(outcomes[first], outcomes[second]) if a == b
            )
            row.append(same / accesses)
        matrix.append(tuple(row))
    return AgreementMatrix(policies=names, agreement=tuple(matrix))
