"""Empirical relative competitiveness between policies.

Competitive analysis asks by what factor a policy's miss count can
exceed another's.  Exact competitive ratios require worst-case adversary
constructions; for the evaluation tables we estimate the *empirical*
ratio over a family of random traces — the worst and mean observed
``misses(P) / misses(Q)`` — which is how the paper contextualises the
performance impact of the policies it discovers.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cache import CacheConfig
from repro.eval.missratio import simulate_trace
from repro.policies import PolicyFactory
from repro.util.stats import geomean
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class CompetitivenessResult:
    """Observed miss-count ratios of ``policy`` relative to ``baseline``."""

    policy: str
    baseline: str
    worst_ratio: float
    best_ratio: float
    geomean_ratio: float
    traces_evaluated: int


def relative_competitiveness(
    policy: str | PolicyFactory,
    baseline: str | PolicyFactory,
    traces: Sequence[Trace],
    config: CacheConfig,
    seed: int = 0,
) -> CompetitivenessResult:
    """Estimate miss-count ratios of ``policy`` vs ``baseline``.

    Traces on which the baseline never misses are skipped (the ratio is
    undefined there); at least one usable trace is required.
    """
    policy_name = policy if isinstance(policy, str) else policy.name
    baseline_name = baseline if isinstance(baseline, str) else baseline.name
    ratios = []
    for trace in traces:
        policy_misses = simulate_trace(trace, config, policy, seed).misses
        baseline_misses = simulate_trace(trace, config, baseline, seed).misses
        if baseline_misses == 0:
            continue
        ratios.append(max(policy_misses, 1) / baseline_misses)
    if not ratios:
        raise ValueError("baseline missed on no trace; ratios undefined")
    return CompetitivenessResult(
        policy=policy_name,
        baseline=baseline_name,
        worst_ratio=max(ratios),
        best_ratio=min(ratios),
        geomean_ratio=geomean(ratios),
        traces_evaluated=len(ratios),
    )
