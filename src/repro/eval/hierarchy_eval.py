"""Whole-hierarchy evaluation: per-level miss ratios and average latency.

The single-level matrices of :mod:`repro.eval.missratio` answer "which
policy wins in isolation"; this module answers the system-level question
the paper's evaluation motivates: given the *combination* of policies a
real machine was found to run, what does a workload see end to end?

The latency model is the standard AMAT (average memory access time)
accounting: each level has a fixed access latency, a miss at every level
pays the next level too, and memory terminates the chain.  Latencies are
parameters, not measurements — the point is comparing policy
assignments under one consistent model.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.cache import CacheConfig, CacheHierarchy
from repro.errors import ConfigurationError
from repro.policies import PolicyFactory
from repro.runner import ExperimentRunner
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace

#: Round-number default latencies (cycles), L1 to memory.
DEFAULT_LATENCIES = {"L1": 4, "L2": 12, "L3": 40, "memory": 200}


@dataclass(frozen=True)
class HierarchyEvaluation:
    """Outcome of one trace through one hierarchy configuration."""

    label: str
    accesses: int
    level_miss_ratios: Mapping[str, float]
    memory_accesses: int
    amat: float

    def row(self, level_names: Sequence[str]) -> list[object]:
        """Render as a table row: label, per-level ratios, AMAT."""
        cells: list[object] = [self.label]
        for name in level_names:
            cells.append(self.level_miss_ratios[name])
        cells.append(self.memory_accesses / self.accesses if self.accesses else 0.0)
        cells.append(self.amat)
        return cells


def evaluate_hierarchy(
    trace: Trace,
    configs: Sequence[CacheConfig],
    policies: Sequence[str | PolicyFactory],
    latencies: Mapping[str, int] | None = None,
    label: str | None = None,
    seed: int = 0,
) -> HierarchyEvaluation:
    """Run ``trace`` through a fresh hierarchy; compute ratios and AMAT."""
    if latencies is None:
        latencies = DEFAULT_LATENCIES
    for config in configs:
        if config.name not in latencies:
            raise ConfigurationError(f"no latency given for level {config.name!r}")
    if "memory" not in latencies:
        raise ConfigurationError("no latency given for 'memory'")
    hierarchy = CacheHierarchy(configs, policies, rng=SeededRng(seed))
    for address in trace:
        hierarchy.access(address)

    total_accesses = len(trace)
    level_miss_ratios = {}
    total_cycles = 0
    for cache in hierarchy.levels:
        stats = cache.stats
        level_miss_ratios[cache.name] = stats.miss_ratio
        # Every access that reached this level pays its latency.
        total_cycles += stats.accesses * latencies[cache.name]
    total_cycles += hierarchy.stats.memory_accesses * latencies["memory"]

    if label is None:
        label = "+".join(
            policy if isinstance(policy, str) else policy.name for policy in policies
        )
    return HierarchyEvaluation(
        label=label,
        accesses=total_accesses,
        level_miss_ratios=level_miss_ratios,
        memory_accesses=hierarchy.stats.memory_accesses,
        amat=total_cycles / total_accesses if total_accesses else 0.0,
    )


def _evaluate_assignment(task) -> HierarchyEvaluation:
    """Worker entry point: one labelled assignment through one hierarchy."""
    trace, configs, policies, latencies, label, seed = task
    return evaluate_hierarchy(
        trace, configs, policies, latencies=latencies, label=label, seed=seed
    )


def compare_policy_assignments(
    trace: Trace,
    configs: Sequence[CacheConfig],
    assignments: Mapping[str, Sequence[str | PolicyFactory]],
    latencies: Mapping[str, int] | None = None,
    seed: int = 0,
    jobs: int | None = None,
    runner: ExperimentRunner | None = None,
) -> list[HierarchyEvaluation]:
    """Evaluate several named per-level policy assignments on one trace.

    Each assignment simulates an independent hierarchy, so
    ``jobs``/``runner`` can spread them over worker processes with
    results identical to the serial default.
    """
    for label, policies in assignments.items():
        if len(policies) != len(configs):
            raise ConfigurationError(
                f"assignment {label!r} has {len(policies)} policies for "
                f"{len(configs)} levels"
            )
    if runner is None:
        runner = ExperimentRunner(jobs=jobs)
    tasks = [
        (trace, tuple(configs), tuple(policies), latencies, label, seed)
        for label, policies in assignments.items()
    ]
    return runner.map(
        _evaluate_assignment, tasks, labels=[task[4] for task in tasks]
    )
