"""Predictability metrics of replacement policies.

The second half of the paper's evaluation asks how *analysable* the
reverse-engineered policies are for worst-case execution time analysis,
using the metrics of Reineke et al.:

* **evict** — the smallest number of accesses to pairwise distinct
  blocks after which the cache is *guaranteed* to contain only blocks
  from the accessed sequence, no matter the initial state and no matter
  which of the accessed blocks happened to be cached already (an old
  block that one of the accesses aliases becomes part of the known
  contents).  Small evict = fast "may" information for WCET analysis.
* **fill** — the smallest number of such accesses after which the cache
  state is *completely known*.  We compute it as ``evict + collapse``,
  where ``collapse`` is how many further guaranteed misses force every
  possible policy state into the same state (exactly A for standard-miss
  permutation policies, whose miss behaviour is a forced shift).

Both are computed exactly by an adversarial longest-path search: the
analyst picks the number of accesses, an adversary picks the initial
state and which accesses alias still-cached old blocks (each old block
can be claimed at most once because accesses are pairwise distinct).  A
reachable cycle that still contains old blocks means the metric is
unbounded (reported as ``None``), which is the correct verdict for
random replacement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.policies import PermutationSpec, ReplacementPolicy
from repro.policies.permutation import apply_permutation

OLD_FRESH = "O"  # unknown old block; the analysis goal is to clear these
# A claimed old block (hit by one of the distinct accesses) becomes part
# of the known contents, indistinguishable from a newly inserted block
# for the purposes of the metric, so both share one label.
NEW = "N"

_UNBOUNDED = object()


class _GameUnbounded(Exception):
    """Raised internally when the adversary can stall forever."""


def _search(initial_states, moves_of, max_states: int) -> int | None:
    """Longest adversary-controlled path until no old blocks remain.

    ``moves_of(state)`` yields successor states; terminal states (no old
    labels) have value 0.  Returns None when a cycle keeps old blocks
    alive forever.
    """
    values: dict = {}
    ON_STACK = _UNBOUNDED  # sentinel reused as the "in progress" marker

    def value(state) -> int:
        known = values.get(state)
        if known is ON_STACK:
            raise _GameUnbounded
        if known is not None:
            return known
        if len(values) > max_states:
            raise ConfigurationError(
                f"predictability search exceeded {max_states} states"
            )
        successors = list(moves_of(state))
        if not successors:
            values[state] = 0
            return 0
        values[state] = ON_STACK
        best = 1 + max(value(next_state) for next_state in successors)
        values[state] = best
        return best

    try:
        return max(value(state) for state in initial_states)
    except _GameUnbounded:
        return None


def evict_metric_spec(spec: PermutationSpec, max_states: int = 300_000) -> int | None:
    """Exact evict metric of a permutation policy.

    Positions abstract away the ways, so the game state is simply the
    label of each position (3^A states) and there is a single initial
    state: every position old.
    """
    ways = spec.ways

    def moves_of(labels: tuple[str, ...]):
        if OLD_FRESH not in labels:
            return
        # A miss: evict last position's label, relocate the rest, insert NEW.
        relocated = list(labels)
        relocated[ways - 1] = NEW
        yield tuple(apply_permutation(relocated, spec.miss_perm))
        # A hit claiming any still-unknown old block.
        for position, label in enumerate(labels):
            if label == OLD_FRESH:
                claimed = list(labels)
                claimed[position] = NEW
                yield tuple(apply_permutation(claimed, spec.hit_perms[position]))

    return _search([tuple([OLD_FRESH] * ways)], moves_of, max_states)


def reachable_full_states(policy: ReplacementPolicy, max_states: int = 100_000) -> list:
    """All policy states reachable once the set has filled up.

    Starts from the state after the cold fill of all ways (in ascending
    way order, matching :class:`~repro.cache.set.CacheSet`) and closes
    under hits on any way and miss/fill cycles.
    """
    start = policy.clone()
    start.reset()
    for way in range(policy.ways):
        start.fill(way)
    frontier = [start]
    seen = {start.state_key()}
    states = [start]
    while frontier:
        current = frontier.pop()
        successors = []
        for way in range(policy.ways):
            touched = current.clone()
            touched.touch(way)
            successors.append(touched)
        missed = current.clone()
        victim = missed.evict()
        missed.fill(victim)
        successors.append(missed)
        for successor in successors:
            key = successor.state_key()
            if key not in seen:
                if len(seen) >= max_states:
                    raise ConfigurationError(
                        f"policy has more than {max_states} reachable states"
                    )
                seen.add(key)
                states.append(successor)
                frontier.append(successor)
    return states


def evict_metric_policy(policy: ReplacementPolicy, max_states: int = 300_000) -> int | None:
    """Exact evict metric of an arbitrary deterministic policy.

    The game state pairs the policy state with a per-way label; the
    adversary additionally chooses the initial policy state among all
    reachable full-set states.
    """
    if not policy.DETERMINISTIC:
        return None  # e.g. random replacement: eviction can never be forced
    ways = policy.ways
    reachable = reachable_full_states(policy)
    # Keep concrete policy objects out of the memo key but reachable for
    # transition computation: rebuild successors with clones on the fly.
    prototypes = {state.state_key(): state for state in reachable}

    def moves_of(state):
        policy_key, labels = state
        if OLD_FRESH not in labels:
            return
        base = prototypes[policy_key]
        missed = base.clone()
        victim = missed.evict()
        missed.fill(victim)
        miss_labels = list(labels)
        miss_labels[victim] = NEW
        yield _register(missed, tuple(miss_labels))
        for way, label in enumerate(labels):
            if label == OLD_FRESH:
                claimed = base.clone()
                claimed.touch(way)
                hit_labels = list(labels)
                hit_labels[way] = NEW
                yield _register(claimed, tuple(hit_labels))

    def _register(policy_state: ReplacementPolicy, labels):
        key = policy_state.state_key()
        if key not in prototypes:
            prototypes[key] = policy_state
        return (key, labels)

    initial_states = [
        (key, tuple([OLD_FRESH] * ways)) for key in prototypes
    ]
    return _search(initial_states, moves_of, max_states)


def collapse_depth_spec(spec: PermutationSpec) -> int:
    """Misses needed to force a known state for a permutation policy.

    For the standard miss permutation this is exactly A: every miss
    inserts at a fixed position and shifts deterministically, so A
    consecutive guaranteed misses determine the position of every block.
    General miss permutations converge once every position has been
    visited by an insertion, bounded by A * A (or never, for
    non-thrashable miss permutations).
    """
    ways = spec.ways
    position = spec.insertion_position
    visited = {position}
    for step in range(1, ways * ways + 1):
        position = spec.miss_perm[position]
        visited.add(position)
        if len(visited) == ways:
            return step + 1
    return ways  # standard-miss specs exit through the loop; keep a floor


def collapse_depth_policy(policy: ReplacementPolicy, horizon_factor: int = 4) -> int | None:
    """Misses after which all reachable policy states coincide.

    Simulates ``m`` consecutive miss/fill cycles from every reachable
    full-set state and finds the smallest ``m`` (up to ``horizon_factor
    * ways``) where both the policy states and the orders in which the
    last ``ways`` fills happened agree; returns None if never.
    """
    if not policy.DETERMINISTIC:
        return None
    states = reachable_full_states(policy)
    horizon = horizon_factor * policy.ways
    current = [(state.clone(), ()) for state in states]
    for step in range(1, horizon + 1):
        advanced = []
        for state, fills in current:
            victim = state.evict()
            state.fill(victim)
            advanced.append((state, (fills + (victim,))[-policy.ways :]))
        current = advanced
        signatures = {(state.state_key(), fills) for state, fills in current}
        if len(signatures) == 1 and step >= policy.ways:
            return step
    return None


@dataclass(frozen=True)
class PredictabilityResult:
    """The predictability metrics of one policy.

    ``evict``/``fill`` are None when the metric is unbounded (note
    "unbounded"), when the policy is randomized (note "randomized"), or
    when the exact game was too large (note "state budget exceeded").
    """

    policy: str
    ways: int
    evict: int | None
    fill: int | None
    note: str = ""

    @staticmethod
    def na(policy: str, ways: int, note: str = "randomized") -> "PredictabilityResult":
        """A not-analysable result (e.g. random replacement)."""
        return PredictabilityResult(policy=policy, ways=ways, evict=None, fill=None, note=note)


def predictability_of_spec(name: str, spec: PermutationSpec) -> PredictabilityResult:
    """evict/fill for a permutation policy given by its spec."""
    evict = evict_metric_spec(spec)
    fill = None if evict is None else evict + collapse_depth_spec(spec)
    note = "unbounded" if evict is None else ""
    return PredictabilityResult(policy=name, ways=spec.ways, evict=evict, fill=fill, note=note)


def predictability_of_policy(name: str, policy: ReplacementPolicy) -> PredictabilityResult:
    """evict/fill for an arbitrary deterministic policy implementation.

    Permutation policies are analysed through their derived spec, whose
    abstract positions factor out way symmetry (a way-labeled collapse
    check would wrongly report unbounded fill for LRU: the block-to-way
    assignment stays unknown, but the observable state does collapse).
    Other policies are analysed in way space, where their victim choice
    genuinely depends on way indices.
    """
    if not policy.DETERMINISTIC:
        return PredictabilityResult.na(name, policy.ways)
    from repro.core.permutation import derive_spec_from_policy

    spec = derive_spec_from_policy(policy)
    if spec is not None:
        return predictability_of_spec(name, spec)
    try:
        evict = evict_metric_policy(policy)
        collapse = collapse_depth_policy(policy)
    except ConfigurationError:
        return PredictabilityResult.na(name, policy.ways, note="state budget exceeded")
    fill = None if evict is None or collapse is None else evict + collapse
    note = ""
    if evict is None:
        note = "unbounded"
    elif fill is None:
        note = "fill unbounded"
    return PredictabilityResult(policy=name, ways=policy.ways, evict=evict, fill=fill, note=note)
