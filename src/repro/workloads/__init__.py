"""Workload traces: generators, stack-distance tools, app models."""

from repro.workloads.generators import (
    cyclic_loop,
    hot_cold,
    pointer_chase,
    random_uniform,
    sequential_scan,
    strided,
    zipf,
)
from repro.workloads.stackdist import (
    INFINITE,
    StackDistanceModel,
    lru_miss_ratio_from_histogram,
    stack_distance_histogram,
    stack_distances,
)
from repro.workloads.synthetic import APP_MODELS, AppModel, workload_suite
from repro.workloads.trace import Trace

__all__ = [
    "Trace",
    "sequential_scan",
    "cyclic_loop",
    "random_uniform",
    "zipf",
    "strided",
    "pointer_chase",
    "hot_cold",
    "stack_distances",
    "stack_distance_histogram",
    "lru_miss_ratio_from_histogram",
    "StackDistanceModel",
    "INFINITE",
    "APP_MODELS",
    "AppModel",
    "workload_suite",
]
