"""Phased synthetic application models — the SPEC substitution.

The paper's performance evaluation replays SPEC benchmark traces, which
are not redistributable.  Each :class:`AppModel` below composes the
elementary generators into a multi-phase synthetic application whose
locality structure imitates a class of SPEC behaviour (streaming,
loop-nest-heavy, pointer-chasing, skewed-reuse, and mixtures).  DESIGN.md
documents this substitution; EXPERIMENTS.md compares the resulting
policy *orderings* with the paper's, which is the reproducible part —
absolute miss ratios are workload properties, not policy properties.

Models are deliberately parameterised by a target cache size class so
experiments can scale the footprints relative to the cache under test.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.workloads.stackdist import StackDistanceModel
from repro.workloads.generators import (
    cyclic_loop,
    hot_cold,
    pointer_chase,
    random_uniform,
    sequential_scan,
    zipf,
)
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class AppModel:
    """A named synthetic application."""

    name: str
    description: str
    build: Callable[[int, int], Trace]  # (cache_lines, seed) -> Trace

    def trace(self, cache_lines: int, seed: int = 0) -> Trace:
        """Instantiate the model against a cache of ``cache_lines`` lines."""
        trace = self.build(cache_lines, seed)
        return Trace(name=self.name, addresses=trace.addresses)


def _streaming(cache_lines: int, seed: int) -> Trace:
    # Footprint 4x the cache: pure streaming, like stream/libquantum.
    return sequential_scan(4 * cache_lines, passes=6)


def _loop_friendly(cache_lines: int, seed: int) -> Trace:
    # Working set comfortably inside the cache, like small loop nests.
    return cyclic_loop(max(4, cache_lines // 2), iterations=24)


def _loop_thrashing(cache_lines: int, seed: int) -> Trace:
    # Working set just above the cache: the classic LRU pathological case
    # where insertion policies (LIP/BIP/DIP) shine, like some SPEC loops.
    return cyclic_loop(cache_lines + max(1, cache_lines // 8), iterations=24)


def _pointer_chasing(cache_lines: int, seed: int) -> Trace:
    # Random cyclic traversal over twice the cache, like mcf.
    return pointer_chase(2 * cache_lines, length=24 * cache_lines, seed=seed)


def _skewed(cache_lines: int, seed: int) -> Trace:
    # Zipf reuse over 8x the cache, like gcc/perl-style code+data mixes.
    return zipf(8 * cache_lines, length=24 * cache_lines, alpha=1.1, seed=seed)


def _hot_cold(cache_lines: int, seed: int) -> Trace:
    # Small hot set plus cold scans, like database-ish kernels.
    return hot_cold(
        hot_lines=max(4, cache_lines // 4),
        cold_lines=8 * cache_lines,
        length=24 * cache_lines,
        hot_fraction=0.85,
        seed=seed,
    )


def _scan_interference(cache_lines: int, seed: int) -> Trace:
    # A resident loop periodically disturbed by streaming scans: the
    # motivating workload for scan-resistant policies (DIP, RRIP).
    loop = cyclic_loop(max(4, cache_lines // 2), iterations=4)
    scan = sequential_scan(2 * cache_lines, passes=1, base=1 << 30)
    phases = loop
    for _ in range(5):
        phases = phases.concat(scan).concat(loop)
    return phases


def _stackdist_mix(cache_lines: int, seed: int) -> Trace:
    # A reuse profile specified directly as stack distances: mostly very
    # short reuse, a band around half the cache, and a cold tail --
    # resembling integer SPEC mixes when only their profile is known.
    near = max(1, cache_lines // 16)
    mid = max(2, cache_lines // 2)
    model = StackDistanceModel(
        distance_weights=[(0, 30.0), (near, 25.0), (mid, 20.0)],
        new_line_weight=10.0,
        seed=seed,
    )
    return model.generate(24 * cache_lines, name="stackdist-mix")


def _random_noise(cache_lines: int, seed: int) -> Trace:
    # Uniform random over 4x the cache: little any policy can do.
    return random_uniform(4 * cache_lines, length=24 * cache_lines, seed=seed)


APP_MODELS: dict[str, AppModel] = {
    model.name: model
    for model in (
        AppModel("streaming", "sequential scans, footprint 4x cache", _streaming),
        AppModel("loop-friendly", "loop working set inside the cache", _loop_friendly),
        AppModel("loop-thrashing", "loop working set just above the cache", _loop_thrashing),
        AppModel("pointer-chasing", "random cyclic traversal, 2x cache", _pointer_chasing),
        AppModel("skewed", "zipf-distributed reuse, 8x cache", _skewed),
        AppModel("hot-cold", "hot set plus cold background", _hot_cold),
        AppModel("scan-interference", "resident loop disturbed by scans", _scan_interference),
        AppModel("stackdist-mix", "profile-specified reuse distances", _stackdist_mix),
        AppModel("random-noise", "uniform random, 4x cache", _random_noise),
    )
}


def workload_suite(cache_lines: int, seed: int = 0) -> list[Trace]:
    """Instantiate every application model for a given cache size."""
    return [model.trace(cache_lines, seed) for model in APP_MODELS.values()]
