"""Stack-distance tools: analysis of traces and model-driven generation.

The *stack distance* (LRU reuse distance) of an access is the number of
distinct lines touched since the previous access to the same line (∞ for
first touches).  The histogram of stack distances fully determines the
LRU miss ratio at every cache size, which makes it both a compact
workload characterisation and a knob for generating traces with a wanted
locality profile — our replacement for proprietary benchmark traces.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace

INFINITE = -1  # histogram key for first touches


def stack_distances(trace: Trace, line_size: int = 64) -> list[int]:
    """Per-access stack distances (INFINITE for first touches).

    O(n * footprint) worst case but fast in practice: the LRU stack is a
    list ordered by recency and most workloads have short distances.
    """
    stack: list[int] = []
    distances: list[int] = []
    for address in trace:
        line = address // line_size
        try:
            depth = stack.index(line)
        except ValueError:
            distances.append(INFINITE)
            stack.insert(0, line)
        else:
            distances.append(depth)
            del stack[depth]
            stack.insert(0, line)
    return distances


def stack_distance_histogram(trace: Trace, line_size: int = 64) -> dict[int, int]:
    """Histogram of stack distances (key INFINITE = first touches)."""
    return dict(Counter(stack_distances(trace, line_size)))


def lru_miss_ratio_from_histogram(histogram: dict[int, int], capacity_lines: int) -> float:
    """LRU miss ratio of a fully associative cache of ``capacity_lines``.

    An access misses iff its stack distance is >= the capacity; this is
    the classic single-pass Mattson result.
    """
    if capacity_lines < 1:
        raise ConfigurationError("capacity_lines must be >= 1")
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    misses = sum(
        count
        for distance, count in histogram.items()
        if distance == INFINITE or distance >= capacity_lines
    )
    return misses / total


class StackDistanceModel:
    """Generate traces whose stack distances follow a given profile.

    The model draws a stack distance from a weighted distribution for
    each access and touches the line currently at that depth of an LRU
    stack (or a brand-new line for the ∞ bucket).  The resulting trace
    reproduces the requested reuse profile under LRU by construction and
    exercises other policies with realistic locality.
    """

    def __init__(
        self,
        distance_weights: Sequence[tuple[int, float]],
        new_line_weight: float,
        seed: int = 0,
    ) -> None:
        if new_line_weight < 0 or any(w < 0 for _, w in distance_weights):
            raise ConfigurationError("weights must be non-negative")
        total = new_line_weight + sum(w for _, w in distance_weights)
        if total <= 0:
            raise ConfigurationError("at least one weight must be positive")
        self._choices: list[int] = [INFINITE]
        self._cumulative: list[float] = [new_line_weight / total]
        running = self._cumulative[0]
        for distance, weight in distance_weights:
            if distance < 0:
                raise ConfigurationError("distances must be non-negative")
            running += weight / total
            self._choices.append(distance)
            self._cumulative.append(running)
        self._rng = SeededRng(seed)

    def _draw(self) -> int:
        point = self._rng.random()
        for choice, cut in zip(self._choices, self._cumulative):
            if point <= cut:
                return choice
        return self._choices[-1]

    def generate(self, length: int, name: str = "stackdist", line_size: int = 64) -> Trace:
        """Generate a trace of ``length`` accesses."""
        if length < 1:
            raise ConfigurationError("length must be >= 1")
        stack: list[int] = []
        next_line = 0
        lines: list[int] = []
        for _ in range(length):
            distance = self._draw()
            if distance == INFINITE or distance >= len(stack):
                line = next_line
                next_line += 1
            else:
                line = stack[distance]
                del stack[distance]
            stack.insert(0, line)
            lines.append(line)
        return Trace(name=name, addresses=tuple(line * line_size for line in lines))
