"""Elementary trace generators.

Each generator produces a :class:`~repro.workloads.trace.Trace` with a
well-understood locality structure; the phased application models in
:mod:`repro.workloads.synthetic` compose them.  Addresses are line
granular (multiples of ``line_size``) on top of a ``base`` offset so
multiple generators can be laid out in disjoint address regions.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace


def _lines_to_trace(name: str, lines: list[int], line_size: int, base: int) -> Trace:
    return Trace(name=name, addresses=tuple(base + line * line_size for line in lines))


def sequential_scan(
    num_lines: int, passes: int = 1, line_size: int = 64, base: int = 0
) -> Trace:
    """Stream through ``num_lines`` lines, ``passes`` times.

    The classic streaming pattern: no reuse within a pass; reuse distance
    across passes equals the footprint, so it thrashes any cache smaller
    than the footprint under LRU but not under LIP/BIP-style insertion.
    """
    if num_lines < 1 or passes < 1:
        raise ConfigurationError("num_lines and passes must be >= 1")
    lines = [line for _ in range(passes) for line in range(num_lines)]
    return _lines_to_trace(f"scan-{num_lines}x{passes}", lines, line_size, base)


def cyclic_loop(
    working_set_lines: int, iterations: int, line_size: int = 64, base: int = 0
) -> Trace:
    """A tight loop over a fixed working set (scan repeated many times)."""
    trace = sequential_scan(working_set_lines, iterations, line_size, base)
    return Trace(name=f"loop-{working_set_lines}w", addresses=trace.addresses)


def random_uniform(
    num_lines: int, length: int, seed: int = 0, line_size: int = 64, base: int = 0
) -> Trace:
    """Uniformly random accesses over ``num_lines`` lines (no locality)."""
    if num_lines < 1 or length < 1:
        raise ConfigurationError("num_lines and length must be >= 1")
    rng = SeededRng(seed)
    lines = [rng.randrange(num_lines) for _ in range(length)]
    return _lines_to_trace(f"random-{num_lines}", lines, line_size, base)


def zipf(
    num_lines: int,
    length: int,
    alpha: float = 1.0,
    seed: int = 0,
    line_size: int = 64,
    base: int = 0,
) -> Trace:
    """Zipf-distributed accesses: few hot lines, a long cold tail.

    Models the skewed reuse typical of pointer-rich integer codes.
    """
    if alpha <= 0:
        raise ConfigurationError("alpha must be positive")
    rng = SeededRng(seed)
    weights = [1.0 / (rank**alpha) for rank in range(1, num_lines + 1)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    lines = []
    for _ in range(length):
        point = rng.random()
        low, high = 0, num_lines - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        lines.append(low)
    return _lines_to_trace(f"zipf-{num_lines}-a{alpha:g}", lines, line_size, base)


def strided(
    stride_lines: int, length: int, footprint_lines: int, line_size: int = 64, base: int = 0
) -> Trace:
    """Constant-stride walk, wrapping inside a footprint (matrix columns)."""
    if stride_lines < 1 or footprint_lines < 1:
        raise ConfigurationError("stride_lines and footprint_lines must be >= 1")
    lines = [(i * stride_lines) % footprint_lines for i in range(length)]
    return _lines_to_trace(f"stride-{stride_lines}", lines, line_size, base)


def pointer_chase(
    num_lines: int, length: int, seed: int = 0, line_size: int = 64, base: int = 0
) -> Trace:
    """Walk a random Hamiltonian cycle over ``num_lines`` lines.

    Every line is revisited exactly every ``num_lines`` accesses — the
    worst-case reuse distance for its footprint, like a randomized linked
    list traversal.
    """
    if num_lines < 1 or length < 1:
        raise ConfigurationError("num_lines and length must be >= 1")
    rng = SeededRng(seed)
    order = list(range(num_lines))
    rng.shuffle(order)
    lines = [order[i % num_lines] for i in range(length)]
    return _lines_to_trace(f"chase-{num_lines}", lines, line_size, base)


def hot_cold(
    hot_lines: int,
    cold_lines: int,
    length: int,
    hot_fraction: float = 0.9,
    seed: int = 0,
    line_size: int = 64,
    base: int = 0,
) -> Trace:
    """A small hot set absorbing most accesses plus a large cold region."""
    if not 0.0 < hot_fraction < 1.0:
        raise ConfigurationError("hot_fraction must be in (0, 1)")
    rng = SeededRng(seed)
    lines = []
    for _ in range(length):
        if rng.random() < hot_fraction:
            lines.append(rng.randrange(hot_lines))
        else:
            lines.append(hot_lines + rng.randrange(cold_lines))
    return _lines_to_trace(f"hotcold-{hot_lines}/{cold_lines}", lines, line_size, base)
