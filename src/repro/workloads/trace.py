"""Memory access traces.

A :class:`Trace` is a named sequence of byte addresses (loads).  The
evaluation half of the paper runs benchmark traces through simulated
caches under the reverse-engineered policies; our traces come from the
generators in this package (the SPEC substitution documented in
DESIGN.md) or from files in a simple text format::

    # name: loop-heavy
    # any other '#' lines are comments
    0x1a2b40
    0x1a2b80
    ...
"""

from __future__ import annotations

from array import array as _array
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TraceFormatError


@dataclass(frozen=True)
class Trace:
    """An immutable sequence of load addresses."""

    name: str
    addresses: tuple[int, ...]
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if any(address < 0 for address in self.addresses):
            raise TraceFormatError("trace contains a negative address")

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[int]:
        return iter(self.addresses)

    @property
    def footprint_lines(self) -> int:
        """Number of distinct 64-byte lines touched."""
        return len({address >> 6 for address in self.addresses})

    def address_array(self):
        """The addresses as a memoized numpy uint64 array.

        Returns None when numpy is not installed or an address does not
        fit in 64 bits (callers fall back to ``addresses``).  The array
        is built once per trace — the vector engine re-simulates the
        same trace under many policies, and converting a large tuple
        dominates its setup cost.
        """
        try:
            return self._address_array
        except AttributeError:
            pass
        try:
            import numpy
        except ImportError:
            array = None
        else:
            try:
                array = numpy.asarray(self.addresses, dtype=numpy.uint64)
            except (OverflowError, ValueError):
                array = None
            else:
                array.setflags(write=False)
        object.__setattr__(self, "_address_array", array)
        return array

    def address_bytes(self) -> bytes | None:
        """The addresses packed as native-endian uint64 bytes.

        Returns None when an address does not fit in 64 bits.  This is
        the wire format of the runner's shared-memory trace broadcasts
        (:mod:`repro.runner.shm`) — the same packing the fingerprint and
        ``address_array`` use, so one layout serves all three.
        """
        try:
            return _array("Q", self.addresses).tobytes()
        except OverflowError:
            return None

    def concat(self, other: "Trace", name: str | None = None) -> "Trace":
        """Concatenate two traces (phases of an application)."""
        return Trace(
            name=name if name is not None else f"{self.name}+{other.name}",
            addresses=self.addresses + other.addresses,
        )

    def repeat(self, times: int, name: str | None = None) -> "Trace":
        """Repeat the trace ``times`` times."""
        if times < 1:
            raise ValueError("times must be >= 1")
        return Trace(
            name=name if name is not None else f"{self.name}x{times}",
            addresses=self.addresses * times,
        )

    def save(self, path: str | Path) -> None:
        """Write the trace in the text format."""
        path = Path(path)
        with path.open("w") as handle:
            handle.write(f"# name: {self.name}\n")
            for address in self.addresses:
                handle.write(f"{address:#x}\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Parse a trace file written by :meth:`save`."""
        path = Path(path)
        name = path.stem
        addresses: list[int] = []
        with path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if line[1:].strip().startswith("name:"):
                        name = line.split("name:", 1)[1].strip()
                    continue
                try:
                    addresses.append(int(line, 0))
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{line_number}: not an address: {line!r}"
                    ) from exc
        return cls(name=name, addresses=tuple(addresses))

    @classmethod
    def from_lines(cls, name: str, lines: Iterable[int], line_size: int = 64) -> "Trace":
        """Build a trace from line numbers instead of byte addresses."""
        return cls(name=name, addresses=tuple(line * line_size for line in lines))
