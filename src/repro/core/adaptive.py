"""Detection of adaptive (set-dueling) replacement.

The paper's examined processors end at Ivy Bridge, whose L3 was later
shown to *adapt*: a few leader sets run fixed component policies and a
counter steers the remaining follower sets (DIP/DRRIP style).  Such a
cache breaks the core assumption that every set implements one fixed
deterministic policy — and the measurable symptoms are exactly:

* different sets identify as *different* policies, and/or
* some sets behave *nondeterministically* (bimodal insertion draws
  randomness), so repeated identical measurements disagree.

This module turns those symptoms into a detector:

1. :func:`detect_nondeterminism` repeats one fixed measurement and
   reports whether the counts vary;
2. :class:`AdaptivitySurvey` samples several sets of one cache level,
   classifies each (named policy / nondeterministic / unknown), and
   reports whether the level is adaptive along with the suspected
   leader sets.

Experiment E9 runs the survey against a simulated DIP L3 and checks that
the true leader sets are flagged.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.identify import CandidateIdentification, IdentificationConfig
from repro.core.oracle import MissCountOracle


def detect_nondeterminism(
    oracle: MissCountOracle,
    ways: int,
    trials: int = 6,
    probe_length: int = 40,
    seed: int = 0,
) -> bool:
    """Repeat one fixed measurement; True if the counts disagree.

    The probe mixes establishment blocks with fresh blocks so that
    insertion-position randomness (BIP/BRRIP) shows up as varying miss
    counts.  A deterministic policy on noise-free hardware must return
    the same count every time.
    """
    rng = random.Random(seed)
    setup = [10_000 + i for i in range(2 * ways)] + list(range(ways))
    pool = list(range(ways)) + [20_000 + i for i in range(ways)]
    probe = [rng.choice(pool) for _ in range(probe_length)]
    counts = {oracle.count_misses(setup, probe) for _ in range(trials)}
    return len(counts) > 1


@dataclass(frozen=True)
class SetClassification:
    """What one sampled set looked like."""

    set_index: int
    #: "named" (identified deterministic policy), "nondeterministic",
    #: or "unknown" (deterministic but matching no candidate).
    kind: str
    policy_name: str | None


@dataclass(frozen=True)
class AdaptivityReport:
    """Survey outcome over the sampled sets of one cache level."""

    level: str
    classifications: tuple[SetClassification, ...]

    @property
    def adaptive(self) -> bool:
        """True when the sets do not all behave like one fixed policy."""
        kinds = {c.kind for c in self.classifications}
        names = {c.policy_name for c in self.classifications if c.kind == "named"}
        return len(kinds) > 1 or len(names) > 1

    @property
    def fixed_policy(self) -> str | None:
        """The single policy name if the level is not adaptive."""
        if self.adaptive:
            return None
        named = [c.policy_name for c in self.classifications if c.kind == "named"]
        return named[0] if named else None

    def suspected_leaders(self) -> list[SetClassification]:
        """Sets whose behaviour differs from the majority.

        In a set-dueling design the follower sets dominate any uniform
        sample, so minority classifications point at leader sets (or at
        the component the followers are currently steered away from).
        """
        from collections import Counter

        keys = [(c.kind, c.policy_name) for c in self.classifications]
        majority_key = Counter(keys).most_common(1)[0][0]
        return [
            c
            for c in self.classifications
            if (c.kind, c.policy_name) != majority_key
        ]

    def summary(self) -> str:
        """One-line verdict for tables."""
        if not self.adaptive:
            policy = self.fixed_policy or "unidentified"
            return f"fixed policy: {policy}"
        leaders = ", ".join(str(c.set_index) for c in self.suspected_leaders())
        return f"ADAPTIVE (deviating sets: {leaders})"


class AdaptivitySurvey:
    """Classify several sets of one level and detect set dueling."""

    def __init__(
        self,
        oracle_factory: Callable[[int], MissCountOracle],
        ways: int,
        level: str = "cache",
        identification_config: IdentificationConfig | None = None,
        nondeterminism_trials: int = 6,
    ) -> None:
        """``oracle_factory(set_index)`` must build a set-targeted oracle."""
        self._factory = oracle_factory
        self.ways = ways
        self.level = level
        self._config = identification_config or IdentificationConfig(
            screening_sequences=25, validation_sequences=10
        )
        self._trials = nondeterminism_trials

    def classify_set(self, set_index: int) -> SetClassification:
        """Classify one set: nondeterministic / named policy / unknown."""
        oracle = self._factory(set_index)
        if detect_nondeterminism(oracle, self.ways, trials=self._trials):
            return SetClassification(set_index, "nondeterministic", None)
        result = CandidateIdentification(oracle, self.ways, config=self._config).identify()
        if result.succeeded:
            return SetClassification(set_index, "named", result.name)
        return SetClassification(set_index, "unknown", None)

    def survey(self, set_indices: Sequence[int]) -> AdaptivityReport:
        """Classify the given sets and assemble the report."""
        classifications = tuple(self.classify_set(index) for index in set_indices)
        return AdaptivityReport(level=self.level, classifications=classifications)
