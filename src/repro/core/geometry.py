"""Measurement-based inference of cache geometry.

Before a replacement policy can be probed, the experimenter needs the
cache's geometry.  Data sheets usually provide it, but the Abel/Reineke
line of work (and the tools that grew out of it) also *measures* it, and
so does this module — from the same miss-count primitive used
everywhere else, but over raw addresses rather than same-set block ids:

1. **line size** — the smallest power-of-two stride at which two
   addresses stop sharing a cache line (touch ``stride``, probe ``0``:
   a hit means same line);
2. **capacity** — the largest contiguous working set whose second pass
   is free of misses.  A contiguous region of N lines spreads
   round-robin over the sets, so it fits exactly when
   ``N <= sets * ways``; doubling finds the scale and a binary search
   pins the exact boundary (which need not be a power of two — Atom's
   24 KiB L1 is found exactly);
3. **associativity** — addresses at stride ``capacity`` all map to one
   set (capacity is a multiple of the way size), so the largest group
   that survives a double pass is the associativity;
4. **way size and set count** — derived.

The oracle is an :class:`AddressOracle`: run raw addresses from a fresh
state, count one level's misses.  :class:`PlatformAddressOracle` adapts
a simulated platform's first level; the same algorithms apply to higher
levels through conflict-pool wrapping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import InferenceError
from repro.hardware.platform import HardwarePlatform


class AddressOracle(ABC):
    """Miss counting over raw addresses (geometry probing)."""

    @abstractmethod
    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        """Run setup then probe from a fresh state; count probe misses."""


class PlatformAddressOracle(AddressOracle):
    """Address oracle over one level of a simulated platform.

    Addresses are offsets into a private buffer, so callers can treat
    the address space as starting at zero.
    """

    def __init__(
        self,
        platform: HardwarePlatform,
        level: str = "L1",
        buffer_size: int = 64 * 1024 * 1024,
    ) -> None:
        self.platform = platform
        self.level = level
        self._buffer = platform.allocate(buffer_size)

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        self.platform.wbinvd()
        for offset in setup:
            self.platform.load(self._buffer.base + offset)
        before = self.platform.counters.snapshot()
        for offset in probe:
            self.platform.load(self._buffer.base + offset)
        return self.platform.counters.delta(self.level, "miss", before)


@dataclass(frozen=True)
class GeometryFinding:
    """Measured geometry of one cache level."""

    line_size: int
    ways: int
    total_size: int

    @property
    def way_size(self) -> int:
        """Bytes covered by one way (the set-aliasing stride)."""
        return self.total_size // self.ways

    @property
    def num_sets(self) -> int:
        """Sets = way size / line size."""
        return self.way_size // self.line_size

    def describe(self) -> str:
        """Data-sheet style one-liner."""
        return (
            f"{self.total_size // 1024} KiB, {self.ways}-way, "
            f"{self.num_sets} sets, {self.line_size} B lines"
        )


class GeometryInference:
    """Infer line size, capacity and associativity from measurements."""

    def __init__(
        self,
        oracle: AddressOracle,
        max_line_size: int = 1024,
        max_ways: int = 64,
        max_size: int = 32 * 1024 * 1024,
    ) -> None:
        self.oracle = oracle
        self.max_line_size = max_line_size
        self.max_ways = max_ways
        self.max_size = max_size

    # -- stage 1: line size --------------------------------------------------
    def infer_line_size(self) -> int:
        """Smallest power-of-two stride separating two lines."""
        stride = 1
        while stride <= self.max_line_size:
            if self.oracle.count_misses([stride], [0]) == 1:
                return stride
            stride *= 2
        raise InferenceError(f"no line boundary found up to {self.max_line_size}")

    # -- stage 2: capacity -----------------------------------------------------
    def _working_set_fits(self, lines: int, line_size: int) -> bool:
        region = [index * line_size for index in range(lines)]
        return self.oracle.count_misses(region, region) == 0

    def infer_capacity(self, line_size: int) -> int:
        """Exact capacity in bytes via doubling plus binary search."""
        lines = 1
        max_lines = self.max_size // line_size
        while lines <= max_lines and self._working_set_fits(lines, line_size):
            lines *= 2
        if lines == 1:
            raise InferenceError("even a single line does not fit; broken oracle")
        if lines > max_lines:
            raise InferenceError(f"cache larger than the {self.max_size} B limit")
        low, high = lines // 2, lines  # fits at low, does not fit at high
        while high - low > 1:
            mid = (low + high) // 2
            if self._working_set_fits(mid, line_size):
                low = mid
            else:
                high = mid
        return low * line_size

    # -- stage 3: associativity ----------------------------------------------
    def infer_ways(self, capacity: int) -> int:
        """Largest group of stride-``capacity`` lines surviving a double pass."""
        best = 0
        for k in range(1, self.max_ways + 1):
            group = [index * capacity for index in range(k)]
            if self.oracle.count_misses([], group + group) == k:
                best = k
            elif best:
                break
        if best == 0:
            raise InferenceError("could not determine associativity")
        return best

    # -- all together ------------------------------------------------------------
    def infer(self) -> GeometryFinding:
        """Run all stages and assemble the finding."""
        line_size = self.infer_line_size()
        capacity = self.infer_capacity(line_size)
        ways = self.infer_ways(capacity)
        if capacity % ways != 0:
            raise InferenceError(
                f"inconsistent geometry: capacity {capacity} not divisible by "
                f"{ways} ways"
            )
        return GeometryFinding(line_size=line_size, ways=ways, total_size=capacity)
