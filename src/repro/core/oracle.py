"""Measurement oracles: the only window inference has onto a cache.

The paper's algorithms never see replacement state; they run access
sequences and read a miss counter.  :class:`MissCountOracle` captures
exactly that capability.  One *measurement* is

    ``count_misses(setup, probe) -> number of probe misses``

where ``setup`` is run first (uncounted, used to establish a state) and
``probe`` is the counted part.  Every measurement starts from an
equivalent fresh environment, mirroring how the paper restarts each
experiment; sequences are lists of abstract *block ids*, each id denoting
a distinct memory block mapping to the probed cache set.

Implementations:

* :class:`SimulatedSetOracle` — wraps a single simulated :class:`CacheSet`
  (white-box substrate, zero noise).  Used for unit tests, algorithm
  development and the cost experiments.
* :class:`HardwareSetOracle` — lives in :mod:`repro.hardware.harness`;
  drives a full simulated platform through virtual memory and performance
  counters, including the L1-defeating access patterns needed to probe
  L2/L3.
* :class:`VotingOracle` — repeats measurements and takes a per-sequence
  majority vote, the paper's defence against counter noise.
* :class:`CachingOracle` — memoizes identical ``(setup, probe)``
  measurements against a deterministic inner oracle.

Simulated measurements additionally route through the compiled kernel
(:mod:`repro.kernels`) when it is enabled and no active tracer wants
per-access ``cache.*`` events; the interpreted loop stays the
instrumented reference path, and ``oracle.query`` events/metrics are
identical on both paths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from collections.abc import Sequence

from repro.errors import KernelUnsupported, MeasurementError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.policies import ReplacementPolicy
from repro.cache.set import CacheSet
from repro import kernels


class MissCountOracle(ABC):
    """Counts the misses a probe sequence suffers in one cache set."""

    #: Associativity if known to the experimenter, else None (must be inferred).
    ways: int | None = None

    @abstractmethod
    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        """Run ``setup`` then ``probe`` from a fresh state; count probe misses."""

    #: Number of measurements performed (for the cost evaluation).
    measurements: int = 0
    #: Total accesses issued across all measurements.
    accesses: int = 0

    def reset_cost(self) -> None:
        """Zero the measurement cost counters."""
        self.measurements = 0
        self.accesses = 0

    def _note_measurement(self, setup_len: int, probe_len: int, misses: int) -> None:
        """Account one measurement: cost counters, metrics, trace event.

        Implementations call this once per :meth:`count_misses`; the
        rate is per measurement (not per simulated access), so the
        metrics bookkeeping stays off the simulation hot path.
        """
        self.measurements += 1
        self.accesses += setup_len + probe_len
        metrics = obs_metrics.DEFAULT
        metrics.incr("oracle.measurements")
        metrics.incr("oracle.accesses", setup_len + probe_len)
        metrics.observe("oracle.probe_misses", misses)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "oracle.query",
                oracle=type(self).__name__,
                setup=setup_len,
                probe=probe_len,
                misses=misses,
            )


class SimulatedSetOracle(MissCountOracle):
    """Oracle over a single simulated cache set.

    Each measurement gets a freshly reset clone of the prototype policy,
    so measurements are independent, as on rebooted hardware.
    """

    def __init__(self, policy: ReplacementPolicy, expose_ways: bool = True) -> None:
        self._prototype = policy
        self.ways = policy.ways if expose_ways else None
        self.measurements = 0
        self.accesses = 0

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        # Compiled fast path: same measurement as the interpreted loop
        # below (bit-identical by the kernel's equivalence suite), taken
        # whenever the kernel is on and no tracer wants per-access events.
        if kernels.kernel_allowed():
            compiled = kernels.compiled_for(self._prototype)
            if compiled is not None:
                try:
                    misses = kernels.count_misses_kernel(compiled, setup, probe)
                except KernelUnsupported:
                    kernels.mark_unsupported(self._prototype)
                else:
                    self._note_measurement(len(setup), len(probe), misses)
                    return misses
        policy = self._prototype.clone()
        policy.reset()
        cache_set = CacheSet(policy.ways, policy)
        for block in setup:
            cache_set.access(block)
        misses = 0
        for block in probe:
            if not cache_set.access(block).hit:
                misses += 1
        self._note_measurement(len(setup), len(probe), misses)
        return misses

    def count_misses_many(
        self, queries: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        """Answer many ``(setup, probe)`` measurements in order.

        On the compiled fast path the whole batch runs through one
        automaton in a single engine call
        (:func:`repro.kernels.count_misses_batch`); measurement results
        and per-measurement cost accounting (``measurements``,
        ``accesses``, ``oracle.*`` metrics and events) are bit-identical
        to looping over :meth:`count_misses`.
        """
        queries = list(queries)
        if len(queries) > 1 and kernels.kernel_allowed():
            compiled = kernels.compiled_for(self._prototype)
            if compiled is not None:
                try:
                    counts = kernels.count_misses_batch(compiled, queries)
                except KernelUnsupported:
                    kernels.mark_unsupported(self._prototype)
                else:
                    for (setup, probe), misses in zip(queries, counts):
                        self._note_measurement(len(setup), len(probe), misses)
                    return counts
        return [self.count_misses(setup, probe) for setup, probe in queries]


class VotingOracle(MissCountOracle):
    """Repeated-measurement wrapper that makes a noisy oracle reliable.

    Repeats every measurement ``repetitions`` times and aggregates:

    * ``"majority"`` (default) — the most common count.  Right when noise
      is rare per measurement (short probes).
    * ``"min"`` — the smallest count.  Right when noise is strictly
      additive (spurious events only ever *add* miss counts, which is how
      performance-counter pollution behaves), and the best choice for
      longer probes where a perfectly clean run is the rarity.
    * ``"median"`` — robust middle ground for symmetric disturbances.

    Experiment E6 quantifies the difference.
    """

    AGGREGATES = ("majority", "min", "median")

    def __init__(
        self, inner: MissCountOracle, repetitions: int = 5, aggregate: str = "majority"
    ) -> None:
        if repetitions < 1:
            raise MeasurementError("repetitions must be >= 1")
        if aggregate not in self.AGGREGATES:
            raise MeasurementError(
                f"unknown aggregate {aggregate!r}; known: {self.AGGREGATES}"
            )
        self._inner = inner
        self.repetitions = repetitions
        self.aggregate = aggregate
        self.ways = inner.ways

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        if self.aggregate == "majority":
            # Short-circuit: once one count holds a strict majority
            # (floor(reps/2)+1 votes, the ceil(reps/2) threshold for the
            # odd repetition counts used in practice), no other count can
            # catch up or tie, so the remaining repetitions cannot change
            # the vote and are skipped.  min/median need every sample.
            decisive = self.repetitions // 2 + 1
            tally: Counter[int] = Counter()
            counts = []
            result: int | None = None
            for _ in range(self.repetitions):
                count = self._inner.count_misses(setup, probe)
                counts.append(count)
                tally[count] += 1
                if tally[count] >= decisive:
                    result = count
                    break
            if result is None:
                result = tally.most_common(1)[0][0]
        else:
            counts = [
                self._inner.count_misses(setup, probe)
                for _ in range(self.repetitions)
            ]
            if self.aggregate == "min":
                result = min(counts)
            else:
                result = sorted(counts)[len(counts) // 2]
        disagreements = sum(1 for count in counts if count != result)
        if disagreements:
            obs_metrics.DEFAULT.incr("oracle.vote_disagreements", disagreements)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "oracle.vote",
                aggregate=self.aggregate,
                repetitions=self.repetitions,
                counts=counts,
                result=result,
            )
        return result

    @property
    def measurements(self) -> int:  # type: ignore[override]
        return self._inner.measurements

    @measurements.setter
    def measurements(self, value: int) -> None:
        # The base class assigns this attribute in __init__; delegate.
        self._inner.measurements = value

    @property
    def accesses(self) -> int:  # type: ignore[override]
        return self._inner.accesses

    @accesses.setter
    def accesses(self, value: int) -> None:
        self._inner.accesses = value

    def reset_cost(self) -> None:
        self._inner.reset_cost()


class CachingOracle(MissCountOracle):
    """Memoizing wrapper: identical measurements are answered once.

    Inference and the E7 ablations re-issue many structurally identical
    ``(setup, probe)`` measurements (the establishment prefix is shared
    by every position measurement, verification windows replay prefixes).
    Against a *deterministic* oracle the answer cannot change, so it is
    cached on the exact sequence pair and served back for free — cached
    answers perform no inner measurement and therefore do not advance the
    ``measurements``/``accesses`` cost counters, which is the point.

    Do **not** wrap a noisy oracle directly: caching freezes the first
    noisy sample.  Put the :class:`VotingOracle` *inside* the cache
    (``CachingOracle(VotingOracle(noisy))``) so denoised values are what
    gets memoized.
    """

    def __init__(self, inner: MissCountOracle) -> None:
        self._inner = inner
        self.ways = inner.ways
        self._cache: dict[tuple[tuple[int, ...], tuple[int, ...]], int] = {}
        #: Measurements answered from the cache / passed to the inner oracle.
        self.cache_hits = 0
        self.cache_misses = 0

    @staticmethod
    def memo_key(
        setup: Sequence[int], probe: Sequence[int]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The memo key of one measurement: a *nested* pair of tuples.

        The split matters as much as the contents: ``([1], [2, 3])`` and
        ``([1, 2], [3])`` replay the same concatenated accesses but count
        different misses, so the key must never flatten the pair into one
        sequence (or join it with any in-band separator an id could
        collide with).  Every cache path keys through here so the
        invariant lives in one place.
        """
        return (tuple(setup), tuple(probe))

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        key = self.memo_key(setup, probe)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            obs_metrics.DEFAULT.incr("oracle.cache_hits")
            return cached
        self.cache_misses += 1
        obs_metrics.DEFAULT.incr("oracle.cache_misses")
        result = self._inner.count_misses(setup, probe)
        self._cache[key] = result
        return result

    def count_misses_many(
        self, queries: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        """Answer a batch of ``(setup, probe)`` queries in order.

        Duplicates within the batch are measured once (later occurrences
        are cache hits, exactly as in the sequential loop), and the
        deduplicated misses are dispatched to the inner oracle's own
        ``count_misses_many`` when it has one — for a
        :class:`SimulatedSetOracle` that is one batched kernel call for
        the whole list.  Results and hit/miss accounting are
        bit-identical to looping over :meth:`count_misses`.
        """
        queries = [self.memo_key(setup, probe) for setup, probe in queries]
        pending: dict[tuple, int] = {}
        to_measure: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        hits = 0
        for key in queries:
            if key in self._cache or key in pending:
                hits += 1
            else:
                pending[key] = len(to_measure)
                to_measure.append(key)
        self.cache_hits += hits
        self.cache_misses += len(to_measure)
        if hits:
            obs_metrics.DEFAULT.incr("oracle.cache_hits", hits)
        if to_measure:
            obs_metrics.DEFAULT.incr("oracle.cache_misses", len(to_measure))
            inner_many = getattr(self._inner, "count_misses_many", None)
            if inner_many is not None:
                measured = inner_many(to_measure)
            else:
                measured = [
                    self._inner.count_misses(setup, probe)
                    for setup, probe in to_measure
                ]
            for key, result in zip(to_measure, measured):
                self._cache[key] = result
        return [self._cache[key] for key in queries]

    def clear_cache(self) -> None:
        """Drop every memoized measurement and zero the hit/miss counters."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def measurements(self) -> int:  # type: ignore[override]
        return self._inner.measurements

    @measurements.setter
    def measurements(self, value: int) -> None:
        self._inner.measurements = value

    @property
    def accesses(self) -> int:  # type: ignore[override]
        return self._inner.accesses

    @accesses.setter
    def accesses(self, value: int) -> None:
        self._inner.accesses = value

    def reset_cost(self) -> None:
        self._inner.reset_cost()
