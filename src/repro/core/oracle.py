"""Measurement oracles: the only window inference has onto a cache.

The paper's algorithms never see replacement state; they run access
sequences and read a miss counter.  One *measurement* is

    ``(setup, probe) -> number of probe misses``

where ``setup`` is run first (uncounted, used to establish a state) and
``probe`` is the counted part.  Every measurement starts from an
equivalent fresh environment, mirroring how the paper restarts each
experiment; sequences are lists of abstract *block ids*, each id denoting
a distinct memory block mapping to the probed cache set.

**The protocol.**  :class:`OracleProtocol` is the single oracle surface:
the canonical entry point is the *batched* :meth:`~OracleProtocol.query`
(``requests -> miss counts``), which lets implementations answer a whole
batch in one kernel/vector engine call or one measurement-DB pass.
:meth:`~OracleProtocol.provenance` names what is being measured — the
stable identity that keys the persistent measurement database
(:mod:`repro.measuredb`); oracles whose answers are not a pure function
of the request (randomized policies, noisy hardware) return ``None``
and are thereby refused persistence.

:class:`MissCountOracle` keeps the scalar ``count_misses`` as the
measurement *primitive* for adaptive algorithms (inference decides each
request from the previous answer); its default ``query`` loops over it,
and subclasses override ``query`` with real batch paths.  The legacy
``count_misses_many`` shape survives as a thin deprecated wrapper over
``query``.

Implementations:

* :class:`SimulatedSetOracle` — wraps a single simulated :class:`CacheSet`
  (white-box substrate, zero noise).  Used for unit tests, algorithm
  development and the cost experiments.
* :class:`HardwareSetOracle` — lives in :mod:`repro.hardware.harness`;
  drives a full simulated platform through virtual memory and performance
  counters, including the L1-defeating access patterns needed to probe
  L2/L3.
* :class:`VotingOracle` — repeats measurements and takes a per-sequence
  majority vote, the paper's defence against counter noise.
* :class:`CachingOracle` — memoizes identical ``(setup, probe)``
  measurements against a deterministic inner oracle (per-process; the
  cross-process sibling is :class:`repro.measuredb.MeasurementDBOracle`).

Simulated measurements additionally route through the compiled kernel
(:mod:`repro.kernels`) when it is enabled and no active tracer wants
per-access ``cache.*`` events; the interpreted loop stays the
instrumented reference path, and ``oracle.query`` events/metrics are
identical on both paths.
"""

from __future__ import annotations

import hashlib
import warnings
from abc import ABC, abstractmethod
from collections import Counter
from collections.abc import Sequence

from repro.errors import KernelUnsupported, MeasurementError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.policies import PermutationPolicy, ReplacementPolicy
from repro.cache.set import CacheSet
from repro import kernels


def policy_provenance(policy: ReplacementPolicy) -> str | None:
    """Stable identity of a *deterministic* policy, or None.

    The provenance string keys the persistent measurement database, so
    it must (a) uniquely determine the policy's measurable behaviour and
    (b) exist only when that behaviour is reproducible:

    * registry-built instances carry a ``_registry_key`` provenance
      stamp (name + sorted params, see
      :meth:`repro.policies.registry.PolicyFactory.build`) — combined
      with the associativity that pins the automaton exactly;
    * a :class:`~repro.policies.PermutationPolicy` is identified by a
      content digest of its permutation vectors;
    * randomized policies and bare unregistered instances (whose
      constructor params are unknowable here) return None.
    """
    if isinstance(policy, PermutationPolicy):
        spec = policy.spec
        payload = repr((spec.ways, spec.hit_perms, spec.miss_perm)).encode()
        digest = hashlib.blake2s(payload, digest_size=8).hexdigest()
        return f"spec:{digest}|ways={spec.ways}"
    if not type(policy).DETERMINISTIC:
        return None
    key = getattr(policy, "_registry_key", None)
    if key is None:
        return None
    name, params = key
    return f"policy:{name}|{params!r}|ways={policy.ways}"


class OracleProtocol(ABC):
    """The unified oracle surface: batched queries plus provenance.

    ``query`` is the canonical call shape every oracle implements; the
    scalar/legacy shapes (``count_misses``, ``count_misses_many``) are
    wrappers layered on top by :class:`MissCountOracle`.  Results are
    returned in request order and are bit-identical to issuing the
    requests one at a time — batching is an execution strategy, never a
    semantic change.
    """

    #: Associativity if known to the experimenter, else None (must be inferred).
    ways: int | None = None

    @abstractmethod
    def query(
        self, requests: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        """Miss counts for a batch of ``(setup, probe)`` requests, in order."""

    def provenance(self) -> str | None:
        """Stable identity of the measured substrate, or None.

        None means the oracle's answers are not a reproducible function
        of the request (noise, randomness) and must not be persisted.
        """
        return None


class MissCountOracle(OracleProtocol):
    """Oracle built on a scalar measurement primitive.

    Subclasses implement :meth:`count_misses` (one measurement) and may
    override :meth:`query` with a genuinely batched path; the default
    implementation loops, so every scalar-only oracle still satisfies
    the full protocol.
    """

    @abstractmethod
    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        """Run ``setup`` then ``probe`` from a fresh state; count probe misses."""

    def query(
        self, requests: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        return [self.count_misses(setup, probe) for setup, probe in requests]

    def count_misses_many(
        self, queries: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        """Deprecated alias for :meth:`query` (the pre-protocol batch shape).

        Kept as a thin warning wrapper for external call sites; all
        internal callers use ``query`` directly.
        """
        warnings.warn(
            "count_misses_many() is deprecated; use OracleProtocol.query()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(queries)

    #: Number of measurements performed (for the cost evaluation).
    measurements: int = 0
    #: Total accesses issued across all measurements.
    accesses: int = 0

    def reset_cost(self) -> None:
        """Zero the measurement cost counters."""
        self.measurements = 0
        self.accesses = 0

    def _note_measurement(self, setup_len: int, probe_len: int, misses: int) -> None:
        """Account one measurement: cost counters, metrics, trace event.

        Implementations call this once per :meth:`count_misses`; the
        rate is per measurement (not per simulated access), so the
        metrics bookkeeping stays off the simulation hot path.
        """
        self.measurements += 1
        self.accesses += setup_len + probe_len
        metrics = obs_metrics.DEFAULT
        metrics.incr("oracle.measurements")
        metrics.incr("oracle.accesses", setup_len + probe_len)
        metrics.observe("oracle.probe_misses", misses)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "oracle.query",
                oracle=type(self).__name__,
                setup=setup_len,
                probe=probe_len,
                misses=misses,
            )


class SimulatedSetOracle(MissCountOracle):
    """Oracle over a single simulated cache set.

    Each measurement gets a freshly reset clone of the prototype policy,
    so measurements are independent, as on rebooted hardware.
    """

    def __init__(self, policy: ReplacementPolicy, expose_ways: bool = True) -> None:
        self._prototype = policy
        self.ways = policy.ways if expose_ways else None
        self.measurements = 0
        self.accesses = 0

    def provenance(self) -> str | None:
        identity = policy_provenance(self._prototype)
        return f"sim|{identity}" if identity is not None else None

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        # Compiled fast path: same measurement as the interpreted loop
        # below (bit-identical by the kernel's equivalence suite), taken
        # whenever the kernel is on and no tracer wants per-access events.
        if kernels.kernel_allowed():
            compiled = kernels.compiled_for(self._prototype)
            if compiled is not None:
                try:
                    misses = kernels.count_misses_kernel(compiled, setup, probe)
                except KernelUnsupported:
                    kernels.mark_unsupported(self._prototype)
                else:
                    self._note_measurement(len(setup), len(probe), misses)
                    return misses
        policy = self._prototype.clone()
        policy.reset()
        cache_set = CacheSet(policy.ways, policy)
        for block in setup:
            cache_set.access(block)
        misses = 0
        for block in probe:
            if not cache_set.access(block).hit:
                misses += 1
        self._note_measurement(len(setup), len(probe), misses)
        return misses

    def query(
        self, requests: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        """Answer many ``(setup, probe)`` measurements in order.

        On the compiled fast path the batch is first deduplicated —
        identical requests (by :meth:`CachingOracle.memo_key`) are
        measured once and fanned back out, since a deterministic set
        answers them identically — and the unique requests run through
        one automaton in a single engine call
        (:func:`repro.kernels.count_misses_batch`, where the trie
        planner additionally collapses shared prefixes).  Measurement
        results and per-measurement cost accounting (``measurements``,
        ``accesses``, ``oracle.*`` metrics and events) are bit-identical
        to looping over :meth:`count_misses` — every *logical*
        measurement is accounted, duplicates included; only the executed
        ``kernel.*`` work shrinks.
        """
        requests = list(requests)
        if len(requests) > 1 and kernels.kernel_allowed():
            compiled = kernels.compiled_for(self._prototype)
            if compiled is not None:
                keys = [
                    CachingOracle.memo_key(setup, probe)
                    for setup, probe in requests
                ]
                position: dict[tuple, int] = {}
                unique: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
                for key in keys:
                    if key not in position:
                        position[key] = len(unique)
                        unique.append(key)
                try:
                    measured = kernels.count_misses_batch(compiled, unique)
                except KernelUnsupported:
                    kernels.mark_unsupported(self._prototype)
                else:
                    counts = [measured[position[key]] for key in keys]
                    for (setup, probe), misses in zip(requests, counts):
                        self._note_measurement(len(setup), len(probe), misses)
                    return counts
        return [self.count_misses(setup, probe) for setup, probe in requests]


class VotingOracle(MissCountOracle):
    """Repeated-measurement wrapper that makes a noisy oracle reliable.

    Repeats every measurement ``repetitions`` times and aggregates:

    * ``"majority"`` (default) — the most common count.  Right when noise
      is rare per measurement (short probes).
    * ``"min"`` — the smallest count.  Right when noise is strictly
      additive (spurious events only ever *add* miss counts, which is how
      performance-counter pollution behaves), and the best choice for
      longer probes where a perfectly clean run is the rarity.
    * ``"median"`` — robust middle ground for symmetric disturbances.

    Experiment E6 quantifies the difference.
    """

    AGGREGATES = ("majority", "min", "median")

    def __init__(
        self, inner: MissCountOracle, repetitions: int = 5, aggregate: str = "majority"
    ) -> None:
        if repetitions < 1:
            raise MeasurementError("repetitions must be >= 1")
        if aggregate not in self.AGGREGATES:
            raise MeasurementError(
                f"unknown aggregate {aggregate!r}; known: {self.AGGREGATES}"
            )
        self._inner = inner
        self.repetitions = repetitions
        self.aggregate = aggregate
        self.ways = inner.ways

    def provenance(self) -> str | None:
        inner = self._inner.provenance()
        if inner is None:
            return None
        return f"vote[{self.aggregate}x{self.repetitions}]|{inner}"

    def _note_vote(self, counts: list[int], result: int) -> None:
        """Per-request vote bookkeeping, shared by scalar and batch paths."""
        disagreements = sum(1 for count in counts if count != result)
        if disagreements:
            obs_metrics.DEFAULT.incr("oracle.vote_disagreements", disagreements)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "oracle.vote",
                aggregate=self.aggregate,
                repetitions=self.repetitions,
                counts=counts,
                result=result,
            )

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        if self.aggregate == "majority":
            # Short-circuit: once one count holds a strict majority
            # (floor(reps/2)+1 votes, the ceil(reps/2) threshold for the
            # odd repetition counts used in practice), no other count can
            # catch up or tie, so the remaining repetitions cannot change
            # the vote and are skipped.  min/median need every sample.
            decisive = self.repetitions // 2 + 1
            tally: Counter[int] = Counter()
            counts = []
            result: int | None = None
            for _ in range(self.repetitions):
                count = self._inner.count_misses(setup, probe)
                counts.append(count)
                tally[count] += 1
                if tally[count] >= decisive:
                    result = count
                    break
            if result is None:
                result = tally.most_common(1)[0][0]
        else:
            counts = [
                self._inner.count_misses(setup, probe)
                for _ in range(self.repetitions)
            ]
            if self.aggregate == "min":
                result = min(counts)
            else:
                result = sorted(counts)[len(counts) // 2]
        self._note_vote(counts, result)
        return result

    def query(
        self, requests: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        """Batched voting: whole repetition rounds ride the inner batch path.

        ``majority`` proceeds in rounds — one inner :meth:`query` over
        the still-undecided requests per round — so each request
        consumes exactly as many inner measurements as the scalar
        short-circuit would (a request decided in round *k* took *k*
        samples).  ``min``/``median`` flatten to ``repetitions``
        consecutive copies per request, matching the scalar loop's
        measurement stream order exactly.  Against a deterministic
        inner oracle (the only kind with a real batch fast path),
        results and per-request sample counts are bit-identical to
        looping over :meth:`count_misses`; against a noisy oracle the
        *interleaving* of noise draws differs between the two shapes,
        as it would between any two measurement schedules.
        """
        requests = list(requests)
        if not requests:
            return []
        if self.aggregate == "majority":
            decisive = self.repetitions // 2 + 1
            tallies: list[Counter[int]] = [Counter() for _ in requests]
            counts_per: list[list[int]] = [[] for _ in requests]
            results: list[int | None] = [None] * len(requests)
            undecided = list(range(len(requests)))
            for _ in range(self.repetitions):
                if not undecided:
                    break
                measured = self._inner.query([requests[i] for i in undecided])
                still: list[int] = []
                for index, count in zip(undecided, measured):
                    counts_per[index].append(count)
                    tallies[index][count] += 1
                    if tallies[index][count] >= decisive:
                        results[index] = count
                    else:
                        still.append(index)
                undecided = still
            for index in range(len(requests)):
                if results[index] is None:
                    results[index] = tallies[index].most_common(1)[0][0]
        else:
            flat: list[tuple[Sequence[int], Sequence[int]]] = []
            for request in requests:
                flat.extend([request] * self.repetitions)
            measured = self._inner.query(flat)
            counts_per = [
                measured[i * self.repetitions : (i + 1) * self.repetitions]
                for i in range(len(requests))
            ]
            if self.aggregate == "min":
                results = [min(counts) for counts in counts_per]
            else:
                results = [
                    sorted(counts)[len(counts) // 2] for counts in counts_per
                ]
        for counts, result in zip(counts_per, results):
            self._note_vote(counts, result)
        return list(results)

    @property
    def measurements(self) -> int:  # type: ignore[override]
        return self._inner.measurements

    @measurements.setter
    def measurements(self, value: int) -> None:
        # The base class assigns this attribute in __init__; delegate.
        self._inner.measurements = value

    @property
    def accesses(self) -> int:  # type: ignore[override]
        return self._inner.accesses

    @accesses.setter
    def accesses(self, value: int) -> None:
        self._inner.accesses = value

    def reset_cost(self) -> None:
        self._inner.reset_cost()


class CachingOracle(MissCountOracle):
    """Memoizing wrapper: identical measurements are answered once.

    Inference and the E7 ablations re-issue many structurally identical
    ``(setup, probe)`` measurements (the establishment prefix is shared
    by every position measurement, verification windows replay prefixes).
    Against a *deterministic* oracle the answer cannot change, so it is
    cached on the exact sequence pair and served back for free — cached
    answers perform no inner measurement and therefore do not advance the
    ``measurements``/``accesses`` cost counters, which is the point.
    (:class:`repro.measuredb.MeasurementDBOracle` is the persistent
    sibling with the opposite accounting choice: it keeps the logical
    cost model intact so cold and warm inference results compare equal.)

    Do **not** wrap a noisy oracle directly: caching freezes the first
    noisy sample.  Put the :class:`VotingOracle` *inside* the cache
    (``CachingOracle(VotingOracle(noisy))``) so denoised values are what
    gets memoized.
    """

    def __init__(self, inner: MissCountOracle) -> None:
        self._inner = inner
        self.ways = inner.ways
        self._cache: dict[tuple[tuple[int, ...], tuple[int, ...]], int] = {}
        #: Measurements answered from the cache / passed to the inner oracle.
        self.cache_hits = 0
        self.cache_misses = 0

    def provenance(self) -> str | None:
        # Pure memoization: measurably identical to the inner oracle.
        return self._inner.provenance()

    @staticmethod
    def memo_key(
        setup: Sequence[int], probe: Sequence[int]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The memo key of one measurement: a *nested* pair of tuples.

        The split matters as much as the contents: ``([1], [2, 3])`` and
        ``([1, 2], [3])`` replay the same concatenated accesses but count
        different misses, so the key must never flatten the pair into one
        sequence (or join it with any in-band separator an id could
        collide with).  Every cache path keys through here so the
        invariant lives in one place (the measurement DB's
        :func:`repro.measuredb.request_digest` hashes the same nested
        shape).
        """
        return (tuple(setup), tuple(probe))

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        key = self.memo_key(setup, probe)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            obs_metrics.DEFAULT.incr("oracle.cache_hits")
            return cached
        self.cache_misses += 1
        obs_metrics.DEFAULT.incr("oracle.cache_misses")
        result = self._inner.count_misses(setup, probe)
        self._cache[key] = result
        return result

    def query(
        self, requests: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        """Answer a batch of ``(setup, probe)`` requests in order.

        Duplicates within the batch are measured once (later occurrences
        are cache hits, exactly as in the sequential loop), and the
        deduplicated misses are dispatched through the inner oracle's
        own :meth:`~OracleProtocol.query` — for a
        :class:`SimulatedSetOracle` that is one batched kernel call for
        the whole list, where the prefix-trie planner
        (:mod:`repro.kernels.trie`) executes shared prefixes once.
        Results and hit/miss accounting are bit-identical to looping
        over :meth:`count_misses`.
        """
        keys = [self.memo_key(setup, probe) for setup, probe in requests]
        pending: set[tuple] = set()
        to_measure: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        hits = 0
        for key in keys:
            if key in self._cache or key in pending:
                hits += 1
            else:
                pending.add(key)
                to_measure.append(key)
        self.cache_hits += hits
        self.cache_misses += len(to_measure)
        if hits:
            obs_metrics.DEFAULT.incr("oracle.cache_hits", hits)
        if to_measure:
            obs_metrics.DEFAULT.incr("oracle.cache_misses", len(to_measure))
            measured = self._inner.query(to_measure)
            for key, result in zip(to_measure, measured):
                self._cache[key] = result
        return [self._cache[key] for key in keys]

    def clear_cache(self) -> None:
        """Drop every memoized measurement and zero the hit/miss counters."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def measurements(self) -> int:  # type: ignore[override]
        return self._inner.measurements

    @measurements.setter
    def measurements(self, value: int) -> None:
        self._inner.measurements = value

    @property
    def accesses(self) -> int:  # type: ignore[override]
        return self._inner.accesses

    @accesses.setter
    def accesses(self, value: int) -> None:
        self._inner.accesses = value

    def reset_cost(self) -> None:
        self._inner.reset_cost()
