"""Matching inferred permutation specs against known policies.

The paper reports its findings as "this cache implements PLRU" or "this
is a previously undocumented policy with these vectors".  This module
provides the lookup: derive the specs of the classic policies at the
relevant associativity and compare the inferred spec against them up to
observational equivalence.
"""

from __future__ import annotations

from repro.core.permutation import derive_spec_from_policy, equivalent
from repro.policies import (
    FifoPolicy,
    LruPolicy,
    PermutationSpec,
    PlruPolicy,
)
from repro.util.bits import is_power_of_two

_KNOWN_CACHE: dict[int, dict[str, PermutationSpec]] = {}


def known_specs(ways: int) -> dict[str, PermutationSpec]:
    """Specs of the named permutation policies at associativity ``ways``.

    Currently LRU, FIFO, and (for power-of-two associativities) tree
    PLRU — the permutation policies with established names.  Results are
    cached per associativity.
    """
    if ways not in _KNOWN_CACHE:
        table: dict[str, PermutationSpec] = {}
        prototypes = {"lru": LruPolicy(ways), "fifo": FifoPolicy(ways)}
        if is_power_of_two(ways):
            prototypes["plru"] = PlruPolicy(ways)
        for name, policy in prototypes.items():
            spec = derive_spec_from_policy(policy)
            assert spec is not None, f"{name} must derive as a permutation policy"
            table[name] = spec
        _KNOWN_CACHE[ways] = table
    return _KNOWN_CACHE[ways]


def name_spec(spec: PermutationSpec) -> str | None:
    """Return the established name of ``spec``, or None if undocumented."""
    for name, known in known_specs(spec.ways).items():
        if equivalent(spec, known):
            return name
    return None
