"""Finding access sequences that tell two policies apart.

Two tools, used by candidate identification and the E8 experiment:

* :func:`bfs_distinguishing_sequence` — exact shortest distinguishing
  probe via breadth-first search over the product of the two policies'
  state spaces (small associativities);
* :func:`random_distinguishing_sequence` — randomized search that scales
  to any associativity and to expensive candidate pools.

Both compare policies from their *established* state (a thrashed, then
deterministically refilled set), the same reference point the inference
algorithms use, and both treat the per-access hit/miss outcome as the
only observable.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Callable, Sequence

from repro.cache.set import CacheSet
from repro.errors import KernelUnsupported
from repro.obs import trace as obs_trace
from repro.policies import ReplacementPolicy
from repro import kernels

PolicyFactoryFn = Callable[[], ReplacementPolicy]


def established_set(policy: ReplacementPolicy, thrash_factor: int = 2) -> CacheSet:
    """Return a set in the policy's established state.

    Thrash blocks use ids >= 10_000, establishment blocks are 0..A-1 —
    the same convention as :class:`repro.core.inference.PermutationInference`.
    """
    clone = policy.clone()
    clone.reset()
    cache_set = CacheSet(clone.ways, clone)
    for i in range(thrash_factor * clone.ways):
        cache_set.access(10_000 + i)
    for block in range(clone.ways):
        cache_set.access(block)
    return cache_set


def response(policy: ReplacementPolicy, probe: Sequence[int], thrash_factor: int = 2) -> tuple[bool, ...]:
    """Hit/miss outcome of each probe access from the established state."""
    # Compiled fast path (deterministic policies, kernel on, no tracer
    # wanting cache.* events): identification replays thousands of
    # candidate responses, and the established state is just thrash +
    # establishment from reset.
    if kernels.kernel_allowed():
        compiled = kernels.compiled_for(policy)
        if compiled is not None:
            setup = [10_000 + i for i in range(thrash_factor * policy.ways)]
            setup += list(range(policy.ways))
            try:
                return kernels.sequence_hits(compiled, setup, probe)
            except KernelUnsupported:
                kernels.mark_unsupported(policy)
    cache_set = established_set(policy, thrash_factor)
    return tuple(cache_set.access(block).hit for block in probe)


_measuredb = None


def _hits_cache(policy: ReplacementPolicy, thrash_factor: int):
    """The persistent hit-vector cache for ``policy``, if opted in.

    Opt-in via :func:`repro.measuredb.set_hits_cache_enabled`; policies
    without provenance (randomized, unregistered) get None and keep
    re-simulating.  The import is deferred and memoized so the disabled
    path costs one attribute read.
    """
    global _measuredb
    if _measuredb is None:
        from repro import measuredb

        _measuredb = measuredb
    if not _measuredb.hits_cache_enabled():
        return None
    return _measuredb.response_cache_for(policy, thrash_factor)


def responses(
    policy: ReplacementPolicy,
    probes: Sequence[Sequence[int]],
    thrash_factor: int = 2,
) -> list[tuple[bool, ...]]:
    """Outcome of each probe in ``probes`` from the established state.

    The batched form of :func:`response`: on the compiled fast path the
    whole list runs through one automaton in a single engine call, with
    the shared establishment setup replayed from a snapshot instead of
    re-simulated per probe.  Bit-identical to mapping :func:`response`.

    With the measurement DB's hit-vector cache opted in
    (:func:`repro.measuredb.set_hits_cache_enabled`) and a provenanced
    policy, previously computed vectors are served from the database and
    only the unresolved probes are simulated (and written back).
    """
    probes = list(probes)
    cache = _hits_cache(policy, thrash_factor)
    if cache is not None:
        found, missing = cache.lookup(probes)
        if not missing:
            return [vector for vector in found if vector is not None]
        computed = _responses_simulated(
            policy, [probes[index] for index in missing], thrash_factor
        )
        cache.store([probes[index] for index in missing], computed)
        for index, vector in zip(missing, computed):
            found[index] = vector
        return found
    return _responses_simulated(policy, probes, thrash_factor)


def _responses_simulated(
    policy: ReplacementPolicy,
    probes: Sequence[Sequence[int]],
    thrash_factor: int = 2,
) -> list[tuple[bool, ...]]:
    """Simulate every probe's response (kernel batch when allowed)."""
    if kernels.kernel_allowed():
        compiled = kernels.compiled_for(policy)
        if compiled is not None:
            setup = [10_000 + i for i in range(thrash_factor * policy.ways)]
            setup += list(range(policy.ways))
            try:
                return kernels.sequence_hits_batch(
                    compiled, [(setup, probe) for probe in probes]
                )
            except KernelUnsupported:
                kernels.mark_unsupported(policy)
    return [response(policy, probe, thrash_factor) for probe in probes]


def miss_count(policy: ReplacementPolicy, probe: Sequence[int], thrash_factor: int = 2) -> int:
    """Number of probe misses from the established state."""
    return sum(1 for hit in response(policy, probe, thrash_factor) if not hit)


def bfs_distinguishing_sequence(
    first: ReplacementPolicy,
    second: ReplacementPolicy,
    max_depth: int = 12,
    max_states: int = 200_000,
) -> list[int] | None:
    """Shortest probe on which the two policies' hit/miss outcomes differ.

    Returns None if no distinguishing probe of length ``max_depth`` or
    less exists within the state budget (the policies may be equivalent).
    Requires deterministic policies (hashable state keys).
    """
    if first.ways != second.ways:
        raise ValueError("policies must have equal associativity")
    ways = first.ways
    universe = list(range(ways + 2))
    start = (established_set(first), established_set(second))

    def key(pair):
        return (pair[0].state_key(), pair[1].state_key())

    seen = {key(start)}
    queue: deque = deque([(start, [])])
    while queue:
        (set_a, set_b), path = queue.popleft()
        if len(path) >= max_depth:
            continue
        for block in universe:
            next_a = set_a.clone()
            next_b = set_b.clone()
            hit_a = next_a.access(block).hit
            hit_b = next_b.access(block).hit
            probe = path + [block]
            if hit_a != hit_b:
                return probe
            pair_key = key((next_a, next_b))
            if pair_key not in seen and len(seen) < max_states:
                seen.add(pair_key)
                queue.append(((next_a, next_b), probe))
    return None


def random_distinguishing_sequence(
    first: ReplacementPolicy,
    second: ReplacementPolicy,
    tries: int = 400,
    length: int = 40,
    seed: int = 0,
) -> list[int] | None:
    """Randomized search for a probe with differing *miss counts*.

    Miss counts (not per-access outcomes) are what a hardware oracle
    reports, so this is the discriminator candidate identification needs.
    The found sequence is greedily truncated to the shortest prefix that
    still discriminates.
    """
    if first.ways != second.ways:
        raise ValueError("policies must have equal associativity")
    ways = first.ways
    rng = random.Random(seed)
    pool = list(range(ways)) + [20_000 + i for i in range(ways)]
    # Probes are generated and examined in rng order but simulated in
    # chunks, so each policy's automaton runs one batched engine call
    # per chunk.  The returned sequence is the first diverging probe in
    # generation order — identical to the probe-at-a-time search, and
    # (because the rng feeds nothing but probe generation) independent
    # of the chunk size, so the vector engine gets wider batches.
    chunk_size = 256 if kernels.vector_allowed() else 32
    produced = 0
    while produced < tries:
        count = min(chunk_size, tries - produced)
        produced += count
        probes = [
            [rng.choice(pool) for _ in range(length)] for _ in range(count)
        ]
        resp_as = responses(first, probes)
        resp_bs = responses(second, probes)
        for probe, resp_a, resp_b in zip(probes, resp_as, resp_bs):
            if resp_a != resp_b:
                # Truncate to the first divergence point: miss counts on
                # the prefix up to and including it must differ by
                # construction.
                for index, (bit_a, bit_b) in enumerate(zip(resp_a, resp_b)):
                    if bit_a != bit_b:
                        return probe[: index + 1]
    return None
