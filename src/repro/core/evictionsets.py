"""Eviction-set discovery for hashed (sliced) caches.

The paper's set targeting computes a line's set from its address bits.
Modern sliced LLCs break that: the set/slice is a hash of many address
bits (``CacheConfig.index_hash = "xor-fold"`` in this library), so
conflicting addresses must be *discovered*, not computed.  This module
implements the classic group-testing reduction (Vila et al.) on top of
the platform's load/counter interface:

1. start from a large candidate pool that evicts the victim as a whole;
2. while the set is larger than the target size, partition it into
   ``target + 1`` groups — at least one group is redundant (the other
   groups still contain a full eviction set) and can be dropped;
3. when group testing stalls (non-LRU policies may need slack), fall
   back to dropping single elements.

The result is a minimal eviction set: every member maps to the victim's
cache set, and for an A-way LRU cache it has exactly A members.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.errors import MeasurementError
from repro.hardware.platform import HardwarePlatform


class EvictionTester(ABC):
    """The one primitive discovery needs: does this set evict the victim?"""

    #: Number of eviction tests performed (cost accounting).
    tests: int = 0

    @abstractmethod
    def evicts(self, candidates: Sequence[int], victim: int) -> bool:
        """True if accessing ``candidates`` evicts a fresh ``victim``."""


class PlatformEvictionTester(EvictionTester):
    """Eviction testing against one level of a simulated platform.

    Each test starts from a flushed hierarchy, loads the victim, streams
    the candidate set twice (two passes force eviction decisions under
    any of the library's deterministic policies), and re-probes the
    victim while watching the level's demand-miss counter.
    """

    def __init__(self, platform: HardwarePlatform, level: str, passes: int = 2) -> None:
        if passes < 1:
            raise MeasurementError("passes must be >= 1")
        self.platform = platform
        self.level = level
        self.passes = passes
        self.tests = 0

    def evicts(self, candidates: Sequence[int], victim: int) -> bool:
        self.tests += 1
        platform = self.platform
        platform.wbinvd()
        platform.load(victim)
        for _ in range(self.passes):
            for address in candidates:
                platform.load(address)
        before = platform.counters.snapshot()
        platform.load(victim)
        return platform.counters.delta(self.level, "miss", before) > 0


def find_eviction_set(
    tester: EvictionTester,
    victim: int,
    candidate_pool: Sequence[int],
    target_size: int,
) -> list[int]:
    """Reduce ``candidate_pool`` to a minimal eviction set for ``victim``.

    Raises:
        MeasurementError: if the full pool does not evict the victim
            (enlarge the pool) or reduction stalls above ``target_size``.
    """
    if target_size < 1:
        raise MeasurementError("target_size must be >= 1")
    working = [address for address in candidate_pool if address != victim]
    if not tester.evicts(working, victim):
        raise MeasurementError(
            f"candidate pool of {len(working)} lines does not evict the victim; "
            "use a larger pool"
        )
    # Phase 1: group-testing reduction.
    while len(working) > target_size:
        group_count = min(target_size + 1, len(working))
        size = -(-len(working) // group_count)
        groups = [working[i : i + size] for i in range(0, len(working), size)]
        for group in groups:
            without = [address for address in working if address not in set(group)]
            if without and tester.evicts(without, victim):
                working = without
                break
        else:
            break  # no whole group droppable: switch to single elements
    # Phase 2: one-by-one minimisation (also proves minimality).
    index = 0
    while index < len(working) and len(working) > target_size:
        without = working[:index] + working[index + 1 :]
        if without and tester.evicts(without, victim):
            working = without
        else:
            index += 1
    if len(working) > target_size:
        raise MeasurementError(
            f"reduction stalled at {len(working)} > target {target_size}; the "
            "policy may need a larger eviction set than the associativity"
        )
    return working


def conflict_partition(
    tester: EvictionTester,
    addresses: Sequence[int],
    target_size: int,
    max_groups: int = 64,
) -> list[list[int]]:
    """Partition addresses into conflict groups (same hashed set).

    Repeatedly pick an unclassified address as victim, find its minimal
    eviction set within the remaining pool, and claim every address the
    found set also evicts... simplified here to: claim the found set
    members plus the victim, then continue with the rest.  The number of
    returned groups estimates how many distinct sets the pool touches.
    """
    remaining = list(addresses)
    groups: list[list[int]] = []
    while remaining and len(groups) < max_groups:
        victim = remaining[0]
        pool = remaining[1:]
        try:
            eviction_set = find_eviction_set(tester, victim, pool, target_size)
        except MeasurementError:
            remaining = remaining[1:]  # not enough partners in the pool
            continue
        group = [victim] + eviction_set
        groups.append(group)
        claimed = set(group)
        remaining = [address for address in remaining if address not in claimed]
    return groups
