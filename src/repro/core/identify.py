"""Candidate-set identification of policies outside the permutation class.

When :class:`~repro.core.inference.PermutationInference` reports that a
cache is not a (standard-miss) permutation policy — as the paper found
for several L2 caches — the fallback is classic hypothesis elimination:

1. start from a pool of candidate policy implementations (every
   deterministic policy in the registry, plus any caller-supplied spec);
2. screen the pool against random measured sequences;
3. while more than one candidate survives, search for a sequence that
   *distinguishes* two survivors, measure it, and drop the losers;
4. validate the survivor against additional random sequences.

The oracle interface is the same miss-count primitive used everywhere
else, so the procedure runs unchanged against simulated hardware with
noisy counters (wrap the oracle in a
:class:`~repro.core.oracle.VotingOracle`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.distinguish import miss_count, random_distinguishing_sequence
from repro.core.oracle import MissCountOracle
from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.policies import (
    PermutationPolicy,
    PermutationSpec,
    ReplacementPolicy,
    available,
    get,
)


def default_candidates(ways: int) -> dict[str, ReplacementPolicy]:
    """All deterministic registry policies constructible at ``ways``."""
    candidates: dict[str, ReplacementPolicy] = {}
    for name in available():
        if name == "permutation":
            continue  # needs an explicit spec
        try:
            policy = get(name, ways)
        except ConfigurationError:
            continue  # e.g. tree PLRU at a non-power-of-two associativity
        if policy.DETERMINISTIC:
            candidates[name] = policy
    return candidates


@dataclass
class IdentificationConfig:
    """Knobs for the elimination procedure."""

    screening_sequences: int = 40
    screening_length: int = 50
    validation_sequences: int = 20
    distinguisher_tries: int = 400
    distinguisher_length: int = 40
    thrash_factor: int = 2
    seed: int = 0


@dataclass
class IdentificationResult:
    """Outcome of a candidate-elimination run."""

    name: str | None
    survivors: list[str]
    measurements: int
    accesses: int
    validated: bool
    eliminated: dict[str, str] = field(default_factory=dict)  # name -> stage

    @property
    def succeeded(self) -> bool:
        """True when exactly one validated candidate survived."""
        return self.name is not None and self.validated


class CandidateIdentification:
    """Identify an unknown cache by eliminating candidate policies."""

    def __init__(
        self,
        oracle: MissCountOracle,
        ways: int,
        candidates: dict[str, ReplacementPolicy] | None = None,
        config: IdentificationConfig | None = None,
    ) -> None:
        self.oracle = oracle
        self.ways = ways
        self.config = config if config is not None else IdentificationConfig()
        if candidates is None:
            candidates = default_candidates(ways)
        self.candidates = dict(candidates)

    def add_spec_candidate(self, name: str, spec: PermutationSpec) -> None:
        """Add an inferred permutation spec to the candidate pool."""
        self.candidates[name] = PermutationPolicy(self.ways, spec)

    # -- measurement helpers ---------------------------------------------
    def _setup(self) -> list[int]:
        prefix = [10_000 + i for i in range(self.config.thrash_factor * self.ways)]
        return prefix + list(range(self.ways))

    def _measure(self, probe: list[int]) -> int:
        return self.oracle.count_misses(self._setup(), probe)

    def _predicts(self, policy: ReplacementPolicy, probe: list[int], measured: int) -> bool:
        return miss_count(policy, probe, self.config.thrash_factor) == measured

    def _random_probe(self, rng: random.Random, length: int) -> list[int]:
        pool = list(range(self.ways)) + [20_000 + i for i in range(self.ways)]
        return [rng.choice(pool) for _ in range(length)]

    # -- the elimination loop -----------------------------------------------
    @staticmethod
    def _reject(name: str, stage: str) -> None:
        obs_metrics.DEFAULT.incr("identify.rejected")
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "identify.candidate", name=name, accepted=False, stage=stage
            )

    def identify(self) -> IdentificationResult:
        """Run screening, targeted elimination and validation."""
        self.oracle.reset_cost()
        obs_metrics.DEFAULT.incr("identify.runs")
        rng = random.Random(self.config.seed)
        alive = dict(self.candidates)
        eliminated: dict[str, str] = {}
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "identify.start", ways=self.ways, candidates=sorted(alive)
            )

        # Stage 1: random screening.
        for _ in range(self.config.screening_sequences):
            if len(alive) <= 1:
                break
            probe = self._random_probe(rng, self.config.screening_length)
            measured = self._measure(probe)
            for name in list(alive):
                if not self._predicts(alive[name], probe, measured):
                    eliminated[name] = "screening"
                    self._reject(name, "screening")
                    del alive[name]

        # Stage 2: targeted elimination of behaviourally close survivors.
        stuck_pairs: set[tuple[str, str]] = set()
        while len(alive) > 1:
            names = sorted(alive)
            pair = None
            for i, first in enumerate(names):
                for second in names[i + 1 :]:
                    if (first, second) not in stuck_pairs:
                        pair = (first, second)
                        break
                if pair:
                    break
            if pair is None:
                break  # every remaining pair is behaviourally indistinguishable
            probe = random_distinguishing_sequence(
                alive[pair[0]],
                alive[pair[1]],
                tries=self.config.distinguisher_tries,
                length=self.config.distinguisher_length,
                seed=rng.randrange(1 << 30),
            )
            if probe is None:
                stuck_pairs.add(pair)
                continue
            measured = self._measure(probe)
            for name in list(alive):
                if not self._predicts(alive[name], probe, measured):
                    eliminated[name] = "targeted"
                    self._reject(name, "targeted")
                    del alive[name]

        # Stage 3: validate the survivor(s).
        validated = False
        winner: str | None = None
        if alive:
            # With several indistinguishable survivors report the first in
            # name order; they are behaviourally identical anyway.
            winner = sorted(alive)[0]
            validated = True
            for _ in range(self.config.validation_sequences):
                probe = self._random_probe(rng, self.config.screening_length)
                measured = self._measure(probe)
                if not self._predicts(alive[winner], probe, measured):
                    validated = False
                    break
            if not validated and winner is not None:
                self._reject(winner, "validation")

        tracer = obs_trace.ACTIVE
        if tracer is not None:
            if winner is not None and validated:
                tracer.emit(
                    "identify.candidate",
                    name=winner,
                    accepted=True,
                    stage="validation",
                )
            tracer.emit(
                "identify.end",
                name=winner if validated else None,
                survivors=sorted(alive),
                validated=validated,
                measurements=self.oracle.measurements,
                accesses=self.oracle.accesses,
            )
        return IdentificationResult(
            name=winner if validated else None,
            survivors=sorted(alive),
            measurements=self.oracle.measurements,
            accesses=self.oracle.accesses,
            validated=validated,
            eliminated=eliminated,
        )
