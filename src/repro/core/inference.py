"""Measurement-based inference of permutation policies.

This is the paper's central algorithm.  Given only a
:class:`~repro.core.oracle.MissCountOracle` — "run this access sequence,
tell me how many misses the probe part suffered" — it reconstructs the
policy's permutation vectors:

1. **Associativity** (if unknown): the largest ``k`` for which accessing
   ``k`` distinct blocks twice costs exactly ``k`` misses.
2. **Establishment**: after a *thrash prefix* fills the set (cold-fill
   arrangements differ from steady state!), accessing fresh blocks
   ``e_0 .. e_{A-1}`` leaves ``e_j`` in position ``A-1-j`` — forced by the
   standard miss behaviour (evict last, insert first, shift).
3. **Position measurement**: a block in position ``p`` survives exactly
   ``A-1-p`` further misses, so its position is read off by evicting with
   fresh blocks and probing — linearly or by binary search (the E7
   ablation).
4. **Hit permutations**: establish, hit the block in position ``i``,
   measure everyone's new position; repeat for each ``i``.
5. **Verification**: random access sequences are measured and compared
   against the inferred spec's prediction.

If any stage is inconsistent (positions do not form a permutation, the
miss behaviour is not standard, or verification fails), the result
carries ``spec=None`` and a failure reason; callers fall back to
candidate-set identification (:mod:`repro.core.identify`).
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.oracle import MissCountOracle
from repro.core.permutation import standard_miss_perm
from repro.errors import InferenceError, KernelUnsupported
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.result import ExperimentResult
from repro.policies import PermutationPolicy, PermutationSpec
from repro.cache.set import CacheSet
from repro import kernels


@contextmanager
def _phase(name: str):
    """Bracket one inference stage with trace events and a phase timer."""
    tracer = obs_trace.ACTIVE
    if tracer is not None:
        tracer.emit("infer.phase", phase=name, status="start")
    start = time.perf_counter()
    try:
        yield
    finally:
        seconds = time.perf_counter() - start
        obs_metrics.DEFAULT.observe(f"infer.phase_seconds.{name}", seconds)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "infer.phase", phase=name, status="end", seconds=round(seconds, 6)
            )


@dataclass
class InferenceConfig:
    """Tunable knobs of the inference procedure."""

    #: Position-measurement strategy: "linear" scans the miss depth,
    #: "binary" binary-searches it (fewer, longer measurements).
    strategy: str = "linear"
    #: Length of the thrash prefix in multiples of the associativity.
    thrash_factor: int = 2
    #: Number of random verification sequences.
    verify_sequences: int = 30
    #: Length of each verification sequence.
    verify_length: int = 60
    #: Measure verification sequences in windows of this many accesses
    #: (0 = one measurement per sequence).  Short windows keep each
    #: measurement's exposure to counter noise small, so repetition-based
    #: denoising works; the cost is more measurements.
    verify_window: int = 0
    #: Seed for verification sequence generation.
    seed: int = 0
    #: Upper bound used when the associativity must be inferred.
    max_ways: int = 64

    def __post_init__(self) -> None:
        if self.strategy not in ("linear", "binary"):
            raise InferenceError(f"unknown strategy {self.strategy!r}")


@dataclass
class InferenceResult:
    """Outcome of one inference run."""

    ways: int
    spec: PermutationSpec | None
    verified: bool
    measurements: int
    accesses: int
    failure_reason: str | None = None
    #: Raw measured position tables, for diagnostics: index i gives the
    #: positions of blocks e_0..e_{A-1} after a hit at position i.
    position_tables: list[list[int]] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """True when a verified spec was produced."""
        return self.spec is not None and self.verified

    # -- unified result protocol ------------------------------------------
    def to_experiment_result(
        self,
        name: str = "permutation-inference",
        params: dict | None = None,
        metrics: dict | None = None,
    ) -> ExperimentResult:
        """Package this outcome as a schema-versioned ExperimentResult."""
        spec_data = None
        if self.spec is not None:
            spec_data = {
                "hit_perms": [list(perm) for perm in self.spec.hit_perms],
                "miss_perm": list(self.spec.miss_perm),
            }
        return ExperimentResult(
            name=name,
            params=dict(params or {}),
            data={
                "ways": self.ways,
                "spec": spec_data,
                "verified": self.verified,
                "succeeded": self.succeeded,
                "measurements": self.measurements,
                "accesses": self.accesses,
                "failure_reason": self.failure_reason,
                "position_tables": [list(table) for table in self.position_tables],
            },
            metrics=dict(metrics or {}),
        )

    @classmethod
    def from_experiment_result(cls, result: ExperimentResult) -> "InferenceResult":
        """Rebuild an InferenceResult from its ExperimentResult form."""
        data = result.data
        spec = None
        if data.get("spec") is not None:
            spec = PermutationSpec(
                data["ways"],
                tuple(tuple(perm) for perm in data["spec"]["hit_perms"]),
                tuple(data["spec"]["miss_perm"]),
            )
        return cls(
            ways=data["ways"],
            spec=spec,
            verified=data["verified"],
            measurements=data["measurements"],
            accesses=data["accesses"],
            failure_reason=data.get("failure_reason"),
            position_tables=[list(table) for table in data.get("position_tables", [])],
        )


class PermutationInference:
    """Reverse engineers one cache set through a miss-count oracle.

    Measurements are issued through the scalar ``count_misses`` wrapper
    of the :class:`~repro.core.oracle.OracleProtocol` surface on
    purpose: every stage is *adaptive* — each request (how deep to
    evict, whether to keep scanning) depends on the previous answer, so
    there is no batch to form and the early exits are what the paper's
    cost model counts.  Batching lives below the oracle (the kernel's
    batched engines, the measurement DB's preloaded memo), not here.
    Wrap the oracle in :class:`repro.measuredb.MeasurementDBOracle` to
    persist the measurements; its logical cost accounting keeps the
    resulting :class:`InferenceResult` bit-identical between cold and
    DB-served runs.
    """

    def __init__(
        self,
        oracle: MissCountOracle,
        ways: int | None = None,
        config: InferenceConfig | None = None,
    ) -> None:
        self.oracle = oracle
        self.config = config if config is not None else InferenceConfig()
        self._ways = ways if ways is not None else oracle.ways

    # -- block id allocation ------------------------------------------------
    # Measurements are independent runs, so ids can be reused across
    # measurements; within one run the id spaces below never collide.
    def _prefix(self, ways: int) -> list[int]:
        return [10_000 + i for i in range(self.config.thrash_factor * ways)]

    @staticmethod
    def _establishment(ways: int) -> list[int]:
        return list(range(ways))

    @staticmethod
    def _fresh(ways: int, count: int) -> list[int]:
        return [20_000 + i for i in range(count)]

    # -- stage 1: associativity ----------------------------------------------
    def infer_associativity(self) -> int:
        """Return the largest k for which k blocks accessed twice cost k misses."""
        best = 0
        for k in range(1, self.config.max_ways + 1):
            blocks = list(range(k))
            misses = self.oracle.count_misses([], blocks + blocks)
            if misses == k:
                best = k
            elif best:
                break
        if best == 0:
            raise InferenceError("could not determine associativity")
        return best

    # -- stage 3: position measurement ----------------------------------------
    def _present_after(self, ways: int, tail: list[int], depth: int, block: int) -> bool:
        """Is ``block`` still cached after establishment + tail + depth misses?"""
        setup = self._prefix(ways) + self._establishment(ways) + tail + self._fresh(ways, depth)
        return self.oracle.count_misses(setup, [block]) == 0

    def _position_of(self, ways: int, tail: list[int], block: int) -> int:
        """Measure the position of ``block`` after establishment + tail.

        A block in position p survives exactly A-1-p further misses.
        """
        if self.config.strategy == "linear":
            survived = 0
            for depth in range(1, ways + 1):
                if not self._present_after(ways, tail, depth, block):
                    break
                survived = depth
            return ways - 1 - survived
        low, high = 0, ways  # invariant: survives `low`, does not survive `high`
        if not self._present_after(ways, tail, 0, block):
            return ways  # not resident at all (inconsistent state)
        while high - low > 1:
            mid = (low + high) // 2
            if self._present_after(ways, tail, mid, block):
                low = mid
            else:
                high = mid
        return ways - 1 - low

    def _position_table(self, ways: int, tail: list[int]) -> list[int] | None:
        """Positions of every establishment block after ``tail``.

        Returns None when the measured positions are not a permutation,
        i.e. the standard-miss permutation-policy assumption is violated.
        """
        positions = [self._position_of(ways, tail, block) for block in range(ways)]
        if sorted(positions) != list(range(ways)):
            return None
        return positions

    # -- the full pipeline -------------------------------------------------------
    def infer(self) -> InferenceResult:
        """Run all stages and return the (possibly failed) result."""
        self.oracle.reset_cost()
        obs_metrics.DEFAULT.incr("inference.runs")
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "infer.start",
                oracle=type(self.oracle).__name__,
                ways=self._ways,
                strategy=self.config.strategy,
            )
        if self._ways is not None:
            ways = self._ways
        else:
            with _phase("associativity"):
                ways = self.infer_associativity()

        def result(spec, verified, reason=None, tables=()):
            succeeded = spec is not None and verified
            obs_metrics.DEFAULT.incr(
                "inference.succeeded" if succeeded else "inference.failed"
            )
            tracer = obs_trace.ACTIVE
            if tracer is not None:
                tracer.emit(
                    "infer.end",
                    ways=ways,
                    succeeded=succeeded,
                    reason=reason,
                    measurements=self.oracle.measurements,
                    accesses=self.oracle.accesses,
                )
            return InferenceResult(
                ways=ways,
                spec=spec,
                verified=verified,
                measurements=self.oracle.measurements,
                accesses=self.oracle.accesses,
                failure_reason=reason,
                position_tables=list(tables),
            )

        # Sanity-check the establishment arrangement: e_j must sit at
        # position A-1-j.  A mismatch means non-standard miss behaviour.
        with _phase("baseline"):
            baseline = self._position_table(ways, [])
        if baseline is None:
            return result(None, False, "baseline positions not a permutation")
        if baseline != [ways - 1 - j for j in range(ways)]:
            return result(None, False, "establishment arrangement is not standard-miss")

        # Measure each hit permutation.
        hit_perms: list[tuple[int, ...]] = []
        tables = []
        with _phase("hit-perms"):
            for position in range(ways):
                block_at_position = ways - 1 - position
                table = self._position_table(ways, [block_at_position])
                if table is None:
                    return result(
                        None,
                        False,
                        f"positions after hit at {position} not a permutation",
                        tables,
                    )
                tables.append(table)
                perm = [0] * ways
                for block, new_position in enumerate(table):
                    perm[ways - 1 - block] = new_position
                hit_perms.append(tuple(perm))

        spec = PermutationSpec(ways, tuple(hit_perms), standard_miss_perm(ways))
        with _phase("verify"):
            verified = self._verify(ways, spec)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit("infer.verify", passed=verified)
        if not verified:
            return result(spec, False, "random-sequence verification failed", tables)
        return result(spec, True, None, tables)

    # -- stage 5: verification ------------------------------------------------------
    def _verify(self, ways: int, spec: PermutationSpec) -> bool:
        """Compare oracle miss counts against the spec's predictions.

        All verification sequences are generated first (same rng, same
        draw order as generating them one at a time — the rng feeds
        nothing else) and predicted in one batch, so the vector engine
        can run every sequence as a lane of a single kernel call.
        Predictions are kernel work, not oracle cost, so the oracle's
        ``measurements``/``accesses`` accounting is unchanged by them.

        Measurements: against a *deterministic* oracle (``provenance()``
        is not None) every verification window is issued as one
        :meth:`~repro.core.oracle.OracleProtocol.query` batch — the
        windows replay nested prefixes of each other, exactly the shape
        the prefix-trie planner collapses — in the same request order as
        the sequential loop, with identical results and identical
        measurement cost when verification *passes* (the overwhelmingly
        common case; every window is measured either way).  On a
        *failing* verification the batch measures every window where
        the loop stopped at the first mismatch, trading a few extra
        measurements on a cold negative for the batched fast path on
        every positive.  Noisy oracles (provenance None) keep the
        sequential first-mismatch loop so a failure costs as little
        hardware time as before.
        """
        rng = random.Random(self.config.seed)
        establishment = self._establishment(ways)
        probes: list[list[int]] = []
        for _ in range(self.config.verify_sequences):
            probe: list[int] = []
            next_fresh = 30_000
            for _ in range(self.config.verify_length):
                if rng.random() < 0.35:
                    probe.append(next_fresh)
                    next_fresh += 1
                else:
                    pool = establishment + probe[-ways:]
                    probe.append(rng.choice(pool))
            probes.append(probe)
        setup = self._prefix(ways) + establishment
        # One simulation pass per sequence predicts every window at
        # once: the prediction for window [start, end) is the difference
        # of cumulative miss counts, identical (by determinism) to a
        # pair of fresh _predict() runs per window but costing
        # O(len(probe)) instead of O(len(probe)^2 / window) work.
        cumulatives = self._predict_cumulative_batch(
            ways, spec, establishment, probes
        )
        if self.oracle.provenance() is not None:
            requests: list[tuple[list[int], list[int]]] = []
            predicted: list[int] = []
            for probe, cumulative in zip(probes, cumulatives):
                window = self.config.verify_window or len(probe)
                for start in range(0, len(probe), window):
                    end = min(start + window, len(probe))
                    requests.append((setup + probe[:start], probe[start:end]))
                    predicted.append(cumulative[end] - cumulative[start])
            if not requests:
                return True
            measured = self.oracle.query(requests)
            return measured == predicted
        for probe, cumulative in zip(probes, cumulatives):
            window = self.config.verify_window or len(probe)
            for start in range(0, len(probe), window):
                end = min(start + window, len(probe))
                measured = self.oracle.count_misses(
                    setup + probe[:start], probe[start:end]
                )
                if measured != cumulative[end] - cumulative[start]:
                    return False
        return True

    @staticmethod
    def _predict(
        ways: int, spec: PermutationSpec, establishment: list[int], probe: list[int]
    ) -> int:
        """Simulate the spec from the established state; count probe misses."""
        # The established state: way p holds establishment[A-1-p] at position p.
        preload = [establishment[ways - 1 - p] for p in range(ways)]
        if kernels.kernel_allowed():
            compiled = kernels.compiled_for_spec(spec)
            if compiled is not None:
                try:
                    return kernels.count_misses_preloaded(compiled, preload, probe)
                except KernelUnsupported:
                    kernels.mark_spec_unsupported(spec)
        cache_set = CacheSet(ways, PermutationPolicy(ways, spec))
        cache_set.preload(preload)
        misses = 0
        for block in probe:
            if not cache_set.access(block).hit:
                misses += 1
        return misses

    @staticmethod
    def _predict_cumulative(
        ways: int, spec: PermutationSpec, establishment: list[int], probe: list[int]
    ) -> list[int]:
        """Cumulative predicted misses: ``result[i]`` covers ``probe[:i]``.

        One pass over the probe (kernel
        :func:`~repro.kernels.sequence_hits_preloaded` when allowed,
        interpreted otherwise) replaces a pair of :meth:`_predict` runs
        per verification window.
        """
        preload = [establishment[ways - 1 - p] for p in range(ways)]
        flags: tuple[bool, ...] | None = None
        if kernels.kernel_allowed():
            compiled = kernels.compiled_for_spec(spec)
            if compiled is not None:
                try:
                    flags = kernels.sequence_hits_preloaded(compiled, preload, probe)
                except KernelUnsupported:
                    kernels.mark_spec_unsupported(spec)
        if flags is None:
            cache_set = CacheSet(ways, PermutationPolicy(ways, spec))
            cache_set.preload(preload)
            flags = tuple(cache_set.access(block).hit for block in probe)
        cumulative = [0]
        misses = 0
        for hit in flags:
            if not hit:
                misses += 1
            cumulative.append(misses)
        return cumulative

    @classmethod
    def _predict_cumulative_batch(
        cls,
        ways: int,
        spec: PermutationSpec,
        establishment: list[int],
        probes: list[list[int]],
    ) -> list[list[int]]:
        """Cumulative predicted misses for many probes from one state.

        Every probe starts from the same established state, so the batch
        maps onto :func:`~repro.kernels.sequence_hits_preloaded_batch`
        (one vector-engine call when numpy is available).  Per-probe
        results are bit-identical to :meth:`_predict_cumulative`.
        """
        preload = [establishment[ways - 1 - p] for p in range(ways)]
        flags_list: list[tuple[bool, ...]] | None = None
        if len(probes) > 1 and kernels.kernel_allowed():
            compiled = kernels.compiled_for_spec(spec)
            if compiled is not None:
                try:
                    flags_list = kernels.sequence_hits_preloaded_batch(
                        compiled, preload, probes
                    )
                except KernelUnsupported:
                    kernels.mark_spec_unsupported(spec)
        if flags_list is None:
            return [
                cls._predict_cumulative(ways, spec, establishment, probe)
                for probe in probes
            ]
        cumulatives = []
        for flags in flags_list:
            cumulative = [0]
            misses = 0
            for hit in flags:
                if not hit:
                    misses += 1
                cumulative.append(misses)
            cumulatives.append(cumulative)
        return cumulatives
