"""End-to-end reverse engineering driver and result reporting.

:func:`reverse_engineer` glues the pipeline together the way the paper's
toolchain does per cache:

1. run permutation inference;
2. if it yields a verified spec, try to match it to a known policy name;
3. otherwise fall back to candidate-set identification;
4. package everything into a :class:`PolicyFinding` suitable for the
   per-processor tables of experiment E1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.identify import CandidateIdentification, IdentificationConfig
from repro.core.inference import InferenceConfig, PermutationInference
from repro.core.naming import name_spec
from repro.core.oracle import MissCountOracle
from repro.policies import PermutationSpec


@dataclass(frozen=True)
class PolicyFinding:
    """The reverse-engineered identity of one cache."""

    ways: int
    #: "permutation" when the permutation-inference pipeline succeeded,
    #: "candidate" when elimination identified the policy, "unknown" else.
    method: str
    #: Established policy name, or None when undocumented/unidentified.
    policy_name: str | None
    #: The inferred vectors when the policy is a permutation policy.
    spec: PermutationSpec | None
    measurements: int
    accesses: int
    detail: str = ""

    @property
    def identified(self) -> bool:
        """True when the cache's policy was pinned down."""
        return self.method != "unknown"

    def summary(self) -> str:
        """One-line rendering for tables, e.g. ``plru (permutation)``."""
        if self.method == "permutation":
            label = self.policy_name or "undocumented permutation policy"
            return f"{label} (permutation)"
        if self.method == "candidate":
            return f"{self.policy_name} (candidate)"
        return f"unidentified: {self.detail}"


def reverse_engineer(
    oracle: MissCountOracle,
    ways: int | None = None,
    inference_config: InferenceConfig | None = None,
    identification_config: IdentificationConfig | None = None,
) -> PolicyFinding:
    """Fully reverse engineer the cache behind ``oracle``.

    ``ways`` may be omitted if the oracle knows it or if it should be
    inferred from measurements.
    """
    inference = PermutationInference(oracle, ways=ways, config=inference_config)
    result = inference.infer()
    if result.succeeded:
        assert result.spec is not None
        return PolicyFinding(
            ways=result.ways,
            method="permutation",
            policy_name=name_spec(result.spec),
            spec=result.spec,
            measurements=result.measurements,
            accesses=result.accesses,
        )

    permutation_cost = (result.measurements, result.accesses)
    identification = CandidateIdentification(
        oracle, result.ways, config=identification_config
    )
    ident = identification.identify()
    measurements = permutation_cost[0] + ident.measurements
    accesses = permutation_cost[1] + ident.accesses
    if ident.succeeded:
        return PolicyFinding(
            ways=result.ways,
            method="candidate",
            policy_name=ident.name,
            spec=None,
            measurements=measurements,
            accesses=accesses,
            detail=f"survivors: {', '.join(ident.survivors)}",
        )
    return PolicyFinding(
        ways=result.ways,
        method="unknown",
        policy_name=None,
        spec=None,
        measurements=measurements,
        accesses=accesses,
        detail=result.failure_reason or "no candidate matched",
    )
