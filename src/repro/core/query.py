"""A tiny access-sequence query language (CacheQuery style).

The follow-up tooling to the paper (CacheQuery) popularised a notation
for talking to one cache set: a query is a whitespace-separated list of
block names; a ``?`` suffix marks the accesses whose hit/miss outcome
should be reported.

    >>> from repro.core import SimulatedSetOracle
    >>> from repro.policies import LruPolicy
    >>> result = run_query(SimulatedSetOracle(LruPolicy(2)), "a b a? c b?")
    >>> [(o.name, o.hit) for o in result.outcomes]
    [('a', True), ('b', False)]
    >>> result.miss_count
    1

Semantics:

* block names are arbitrary identifiers; equal names mean equal blocks;
* an optional ``N*`` repetition prefix expands a group: ``3*x`` is
  ``x x x`` and ``2*( a b )`` is ``a b a b``;
* ``!`` suffix establishes a fresh-block barrier: ``@!`` is sugar for a
  never-before-used block (each occurrence of ``@`` is a distinct fresh
  block, so ``@ @ @`` touches three new blocks);
* outcomes are measured through any :class:`MissCountOracle` by
  replaying the prefix for every marked access, so queries work against
  simulated sets and simulated hardware alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.oracle import MissCountOracle
from repro.errors import InferenceError


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed query: block ids plus which positions are probed."""

    blocks: tuple[int, ...]
    probed: tuple[int, ...]  # indices into blocks
    names: tuple[str, ...]  # display name per access


class QueryParseError(InferenceError):
    """The query string is malformed."""


def parse_query(text: str) -> ParsedQuery:
    """Parse the query notation into block ids and probe positions."""
    tokens = _expand(_tokenize(text))
    blocks: list[int] = []
    probed: list[int] = []
    names: list[str] = []
    ids: dict[str, int] = {}
    fresh_counter = 0
    for token in tokens:
        probe = token.endswith("?")
        if probe:
            token = token[:-1]
        if not token:
            raise QueryParseError("empty block name")
        if token == "@":
            block = 1_000_000 + fresh_counter
            fresh_counter += 1
            display = f"@{fresh_counter}"
        else:
            if not token.replace("_", "").isalnum():
                raise QueryParseError(f"bad block name {token!r}")
            if token not in ids:
                ids[token] = len(ids)
            block = ids[token]
            display = token
        if probe:
            probed.append(len(blocks))
        blocks.append(block)
        names.append(display)
    if not blocks:
        raise QueryParseError("empty query")
    return ParsedQuery(tuple(blocks), tuple(probed), tuple(names))


def _tokenize(text: str) -> list[str]:
    # Make parentheses standalone tokens, then split on whitespace.
    spaced = text.replace("(", " ( ").replace(")", " ) ")
    return [token for token in spaced.split() if token]


def _expand(tokens: list[str]) -> list[str]:
    """Expand ``N*token`` and ``N*( group )`` repetitions."""
    result: list[str] = []
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if "*" in token and token.split("*", 1)[0].isdigit():
            count_text, rest = token.split("*", 1)
            count = int(count_text)
            if count < 1:
                raise QueryParseError(f"repetition count must be >= 1 in {token!r}")
            if rest == "" and index + 1 < len(tokens) and tokens[index + 1] == "(":
                depth = 1
                group: list[str] = []
                scan = index + 2
                while scan < len(tokens) and depth > 0:
                    if tokens[scan] == "(":
                        depth += 1
                    elif tokens[scan] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    group.append(tokens[scan])
                    scan += 1
                if depth != 0:
                    raise QueryParseError("unbalanced parentheses")
                result.extend(_expand(group) * count)
                index = scan + 1
                continue
            if rest:
                result.extend([rest] * count)
                index += 1
                continue
            raise QueryParseError(f"dangling repetition {token!r}")
        if token in ("(", ")"):
            raise QueryParseError("parentheses are only valid after 'N*'")
        result.append(token)
        index += 1
    return result


@dataclass(frozen=True)
class AccessOutcome:
    """Measured outcome of one probed access."""

    name: str
    position: int  # index of the access within the query
    hit: bool


@dataclass(frozen=True)
class QueryResult:
    """Structured outcome of :func:`run_query`.

    Presentation (the classic ``a=hit b=miss`` line) lives with the
    callers; this object carries the data.
    """

    query: str
    outcomes: tuple[AccessOutcome, ...]

    @property
    def miss_count(self) -> int:
        """Number of probed accesses that missed."""
        return sum(1 for outcome in self.outcomes if not outcome.hit)

    @property
    def hit_count(self) -> int:
        """Number of probed accesses that hit."""
        return sum(1 for outcome in self.outcomes if outcome.hit)


def run_query(oracle: MissCountOracle, text: str) -> QueryResult:
    """Execute a query; report each probed access's hit/miss outcome.

    Every probed access is measured in its own run (replay the prefix,
    count the single probe access), which is exactly how the inference
    algorithms observe individual outcomes through a miss counter.
    """
    query = parse_query(text)
    outcomes = []
    for position in query.probed:
        prefix = list(query.blocks[:position])
        misses = oracle.count_misses(prefix, [query.blocks[position]])
        outcomes.append(
            AccessOutcome(
                name=query.names[position], position=position, hit=misses == 0
            )
        )
    return QueryResult(query=text, outcomes=tuple(outcomes))
