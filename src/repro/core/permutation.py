"""Algorithms on permutation policies: derivation, equivalence, naming.

This module complements the data definition in
:mod:`repro.policies.permutation` with the algorithmic machinery the
paper's formalism rests on:

* :func:`derive_spec_from_policy` — extract the permutation vectors of an
  arbitrary deterministic policy *implementation* (e.g. tree-PLRU) by
  white-box simulation, or report that the policy is not a (standard-miss)
  permutation policy;
* :func:`specs_equivalent` — decide observational equivalence of two
  specs by an exhaustive product-state search;
* :func:`canonical_form` — a canonical representative under position
  relabeling, used to compare and name inferred policies.

"Standard miss" means the miss behaviour assumed by the paper's
measurement algorithms: the block in the last position is evicted, the
new block enters at position 0, and all survivors shift one position
towards eviction.
"""

from __future__ import annotations

from collections import deque
from itertools import permutations as iter_permutations

from repro.policies import ReplacementPolicy, PermutationPolicy, PermutationSpec
from repro.cache.set import CacheSet

#: The standard miss permutation: insert at 0, shift survivors, evict last.
def standard_miss_perm(ways: int) -> tuple[int, ...]:
    """Return ``(1, 2, ..., ways-1, 0)``."""
    return tuple(list(range(1, ways)) + [0])


def _fresh_set(policy: ReplacementPolicy) -> CacheSet:
    clone = policy.clone()
    clone.reset()
    return CacheSet(clone.ways, clone)


def _eviction_order(cache_set: CacheSet, next_block: int) -> list[int] | None:
    """Destructively read the positions of all resident blocks.

    Issues misses with fresh block ids and records the eviction sequence.
    The block evicted first was in the eviction position, so the reversed
    eviction sequence lists blocks from position 0 to position A-1 --
    provided the policy has standard miss behaviour.

    Returns None if the original blocks are not all evicted within a
    miss budget of ``ways**2 + ways`` (a non-thrashable policy).
    """
    ways = cache_set.ways
    evicted: list[int] = []
    block = next_block
    budget = ways * ways + ways
    while len(evicted) < ways and block - next_block < budget:
        result = cache_set.access(block)
        if result.hit:
            return None  # fresh block hit: caller's bookkeeping is broken
        if result.evicted_tag is not None and result.evicted_tag < next_block:
            evicted.append(result.evicted_tag)
        block += 1
    if len(evicted) < ways:
        return None
    return list(reversed(evicted))


def derive_spec_from_policy(
    policy: ReplacementPolicy,
    verify_accesses: int = 2000,
    seed: int = 0,
) -> PermutationSpec | None:
    """Derive the permutation vectors of a deterministic policy.

    The derivation establishes a reference state by filling a cold set
    with blocks ``0 .. A-1``, reads the position of every block through
    eviction sequences, measures how a hit at each position reorders the
    set, and finally *verifies* the resulting spec against the original
    implementation on random traces (including from states other than the
    reference state).

    Returns:
        The spec, or ``None`` if the policy is not observationally a
        standard-miss permutation policy (verification failed).
    """
    ways = policy.ways
    establish = list(range(ways))

    def established_set() -> CacheSet:
        cache_set = _fresh_set(policy)
        for block in establish:
            cache_set.access(block)
        return cache_set

    # Reference order after establishment.
    base_order = _eviction_order(established_set(), next_block=ways)
    if base_order is None or sorted(base_order) != establish:
        return None  # some establishment block was never evicted

    # Miss permutation: must be the standard one for the class we handle.
    cache_set = established_set()
    cache_set.access(ways)  # one miss
    after_miss = _eviction_order(cache_set, next_block=ways + 1)
    expected = [ways] + base_order[:-1]
    if after_miss != expected:
        return None

    # Hit permutations.
    hit_perms = []
    for position in range(ways):
        cache_set = established_set()
        cache_set.access(base_order[position])  # hit at `position`
        after_hit = _eviction_order(cache_set, next_block=ways)
        if after_hit is None or sorted(after_hit) != establish:
            return None
        perm = [0] * ways
        for old_position, block in enumerate(base_order):
            perm[old_position] = after_hit.index(block)
        hit_perms.append(tuple(perm))

    spec = PermutationSpec(ways, tuple(hit_perms), standard_miss_perm(ways))
    if not _verify_spec(policy, spec, base_order, verify_accesses, seed):
        return None
    return spec


def _verify_spec(
    policy: ReplacementPolicy,
    spec: PermutationSpec,
    base_order: list[int],
    accesses: int,
    seed: int,
) -> bool:
    """Check spec and policy respond identically to a random trace.

    The comparison starts from the policy's *established* state (a cold
    set filled with blocks ``0 .. A-1``) because a policy's cold-fill
    arrangement generally differs from its steady-state miss behaviour:
    invalid ways are filled in index order, not in victim order.  The
    permutation model — like the paper's — describes the steady state of
    a full set.  The candidate is aligned using the measured
    ``base_order`` (block resident at each position).
    """
    import random

    rng = random.Random(seed)
    ways = policy.ways
    reference = _fresh_set(policy)
    for block in range(ways):
        reference.access(block)
    candidate = CacheSet(ways, PermutationPolicy(ways, spec))
    # Way p holds block base_order[p]; the fresh policy has way p at
    # position p, so block base_order[p] sits at position p as measured.
    candidate.preload(list(base_order))
    window = ways + 3
    next_fresh = ways
    for _ in range(accesses):
        if rng.random() < 0.3:
            block = next_fresh
            next_fresh += 1
        else:
            # Re-access a recently seen block (may or may not be resident).
            block = max(next_fresh - 1 - rng.randrange(window), 0)
        got = candidate.access(block)
        want = reference.access(block)
        if got.hit != want.hit or got.evicted_tag != want.evicted_tag:
            return False
    return True


def specs_equivalent(first: PermutationSpec, second: PermutationSpec, max_states: int = 500_000) -> bool:
    """Decide observational equivalence of two specs.

    Performs a breadth-first search over pairs of policy states driven by
    a block universe of size A+1, which suffices to expose any reachable
    behavioural difference: hits/misses and (indirectly observable)
    evictions must agree everywhere.

    Raises:
        MemoryError-like ValueError when the search exceeds ``max_states``
        (callers should fall back to :func:`conjugate_equivalent`).
    """
    if first.ways != second.ways:
        return False
    ways = first.ways
    universe = list(range(ways + 1))

    def initial(spec: PermutationSpec) -> CacheSet:
        cache_set = CacheSet(ways, PermutationPolicy(ways, spec))
        # Thrash with throwaway blocks, then establish with 0..A-1, so the
        # comparison starts from steady state (cold-fill arrangements are
        # representation dependent; see _random_trace_equivalent).
        for block in range(ways):
            cache_set.access(1000 + block)
        for block in range(ways):
            cache_set.access(block)
        return cache_set

    start = (initial(first), initial(second))
    seen: set = set()
    queue = deque([start])

    def key(pair) -> tuple:
        set_a, set_b = pair
        return (set_a.state_key(), set_b.state_key())

    seen.add(key(start))
    while queue:
        set_a, set_b = queue.popleft()
        for block in universe:
            next_a = set_a.clone()
            next_b = set_b.clone()
            result_a = next_a.access(block)
            result_b = next_b.access(block)
            if result_a.hit != result_b.hit:
                return False
            pair_key = key((next_a, next_b))
            if pair_key not in seen:
                if len(seen) >= max_states:
                    raise ValueError("state space too large for exhaustive equivalence")
                seen.add(pair_key)
                queue.append((next_a, next_b))
    return True


def equivalent(first: PermutationSpec, second: PermutationSpec) -> bool:
    """Decide equivalence with the best method for the associativity.

    Up to 5 ways the exhaustive product search is used (complete).  Above
    that, position-relabeling conjugation is tried (sound), backed by a
    long randomized trace comparison: conjugation failures combined with
    identical random-trace behaviour are vanishingly unlikely for the
    specs this library produces, but the randomized check alone is what
    makes the answer "False" trustworthy.
    """
    if first.ways != second.ways:
        return False
    if first.ways <= 5:
        return specs_equivalent(first, second)
    if first.ways <= 8 and conjugate_equivalent(first, second):
        return True
    return _random_trace_equivalent(first, second)


def _random_trace_equivalent(
    first: PermutationSpec, second: PermutationSpec, accesses: int = 20_000, seed: int = 7
) -> bool:
    """Compare two specs on a long random trace from aligned start states."""
    import random

    rng = random.Random(seed)
    ways = first.ways
    set_a = CacheSet(ways, PermutationPolicy(ways, first))
    set_b = CacheSet(ways, PermutationPolicy(ways, second))
    # Cold-fill with throwaway blocks, then establish with blocks 0..A-1:
    # A misses on a full set leave both specs in aligned states when their
    # miss permutation is the standard one (always true for inferred and
    # derived specs), whereas cold-fill arrangements are representation
    # dependent and must not influence the comparison.
    for block in range(ways):
        set_a.access(1000 + block)
        set_b.access(1000 + block)
    for block in range(ways):
        set_a.access(block)
        set_b.access(block)
    next_fresh = ways
    window = ways + 3
    for _ in range(accesses):
        if rng.random() < 0.3:
            block = next_fresh
            next_fresh += 1
        else:
            block = max(next_fresh - 1 - rng.randrange(window), 0)
        if set_a.access(block).hit != set_b.access(block).hit:
            return False
    return True


def conjugate_equivalent(first: PermutationSpec, second: PermutationSpec) -> bool:
    """Sufficient equivalence check: is one spec a position relabeling of
    the other?

    Sound but not complete; used for associativities where the exhaustive
    search is too large.
    """
    if first.ways != second.ways:
        return False
    ways = first.ways
    for relabel in iter_permutations(range(ways - 1)):
        full = tuple(relabel) + (ways - 1,)
        if first.conjugate(full) == second:
            return True
    return False


def canonical_form(spec: PermutationSpec) -> PermutationSpec:
    """Return the lexicographically smallest conjugate of ``spec``.

    Two specs with equal canonical forms are observationally equivalent;
    the converse holds for specs whose every position is reachable, which
    is the case for all specs produced by derivation or inference.
    For associativities above 8 the exact canonicalisation is too
    expensive ((A-1)! relabelings), so the spec itself is returned.
    """
    ways = spec.ways
    if ways > 8:
        return spec
    best: PermutationSpec | None = None
    best_key = None
    for relabel in iter_permutations(range(ways - 1)):
        full = tuple(relabel) + (ways - 1,)
        candidate = spec.conjugate(full)
        candidate_key = (candidate.hit_perms, candidate.miss_perm)
        if best_key is None or candidate_key < best_key:
            best, best_key = candidate, candidate_key
    assert best is not None
    return best
