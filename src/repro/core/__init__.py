"""The paper's contribution: measurement-based policy reverse engineering.

Public surface:

* :class:`~repro.core.oracle.MissCountOracle` and implementations — the
  measurement abstraction;
* :class:`~repro.core.inference.PermutationInference` — permutation
  policy inference from miss counts;
* :class:`~repro.core.identify.CandidateIdentification` — hypothesis
  elimination for policies outside the permutation class;
* :func:`~repro.core.report.reverse_engineer` — the combined pipeline;
* the permutation-spec algorithm toolbox in
  :mod:`repro.core.permutation`.
"""

from repro.core.adaptive import (
    AdaptivityReport,
    AdaptivitySurvey,
    SetClassification,
    detect_nondeterminism,
)
from repro.core.distinguish import (
    bfs_distinguishing_sequence,
    established_set,
    miss_count,
    random_distinguishing_sequence,
    response,
)
from repro.core.evictionsets import (
    EvictionTester,
    PlatformEvictionTester,
    conflict_partition,
    find_eviction_set,
)
from repro.core.geometry import (
    AddressOracle,
    GeometryFinding,
    GeometryInference,
    PlatformAddressOracle,
)
from repro.core.identify import (
    CandidateIdentification,
    IdentificationConfig,
    IdentificationResult,
    default_candidates,
)
from repro.core.inference import InferenceConfig, InferenceResult, PermutationInference
from repro.core.naming import known_specs, name_spec
from repro.core.oracle import (
    CachingOracle,
    MissCountOracle,
    OracleProtocol,
    SimulatedSetOracle,
    VotingOracle,
    policy_provenance,
)
from repro.core.permutation import (
    canonical_form,
    conjugate_equivalent,
    derive_spec_from_policy,
    equivalent,
    specs_equivalent,
    standard_miss_perm,
)
from repro.core.query import (
    AccessOutcome,
    ParsedQuery,
    QueryParseError,
    QueryResult,
    parse_query,
    run_query,
)
from repro.core.report import PolicyFinding, reverse_engineer

__all__ = [
    "AdaptivityReport",
    "AdaptivitySurvey",
    "SetClassification",
    "detect_nondeterminism",
    "EvictionTester",
    "PlatformEvictionTester",
    "conflict_partition",
    "find_eviction_set",
    "AddressOracle",
    "GeometryFinding",
    "GeometryInference",
    "PlatformAddressOracle",
    "MissCountOracle",
    "OracleProtocol",
    "policy_provenance",
    "SimulatedSetOracle",
    "VotingOracle",
    "CachingOracle",
    "PermutationInference",
    "InferenceConfig",
    "InferenceResult",
    "CandidateIdentification",
    "IdentificationConfig",
    "IdentificationResult",
    "default_candidates",
    "derive_spec_from_policy",
    "specs_equivalent",
    "conjugate_equivalent",
    "equivalent",
    "canonical_form",
    "standard_miss_perm",
    "known_specs",
    "name_spec",
    "bfs_distinguishing_sequence",
    "random_distinguishing_sequence",
    "established_set",
    "response",
    "miss_count",
    "PolicyFinding",
    "reverse_engineer",
    "AccessOutcome",
    "ParsedQuery",
    "QueryParseError",
    "QueryResult",
    "parse_query",
    "run_query",
]
