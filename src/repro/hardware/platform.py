"""The simulated measurement platform.

:class:`HardwarePlatform` is the stand-in for "an Intel machine with a
kernel module for measurements".  It bundles a cache hierarchy built from
a :class:`~repro.hardware.catalog.ProcessorSpec`, virtual memory,
performance counters, and the platform's noise model.  The experimenter
API mirrors what the paper's tooling had:

* :meth:`HardwarePlatform.allocate` — map a measurement buffer;
* :meth:`HardwarePlatform.load` — perform one load from a virtual
  address (the only way to touch the caches);
* :attr:`HardwarePlatform.counters` — read performance counters;
* :meth:`HardwarePlatform.wbinvd` — privileged whole-hierarchy flush
  (the kernel-module luxury; the harness uses it to make measurements
  independent, the same role thrashing plays in user-space-only setups).

Nothing else is exposed: replacement state, tags, and the ground-truth
policies are deliberately unreachable from this API, so the inference
code cannot cheat.
"""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.hardware.catalog import ProcessorSpec
from repro.hardware.counters import CounterBank
from repro.hardware.memory import VirtualBuffer, VirtualMemory
from repro.policies import PolicyFactory
from repro.util.rng import SeededRng


class HardwarePlatform:
    """A bootable instance of a catalog processor."""

    def __init__(self, spec: ProcessorSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        rng = SeededRng(seed)
        self._noise_rng = rng.fork("noise")
        self.memory = VirtualMemory(page_size=spec.page_size, rng=rng.fork("vm"))
        policies = [
            PolicyFactory(level.policy, **level.policy_params) for level in spec.levels
        ]
        self.hierarchy = CacheHierarchy(
            [level.config for level in spec.levels], policies, rng=rng.fork("caches")
        )
        self.counters = CounterBank(self.hierarchy)
        self.loads_performed = 0

    # -- experimenter API ----------------------------------------------------
    @property
    def level_configs(self) -> list[CacheConfig]:
        """Published cache geometries (data-sheet information)."""
        return [cache.config for cache in self.hierarchy.levels]

    def level_config(self, name: str) -> CacheConfig:
        """Geometry of the level called ``name``."""
        return self.hierarchy.level(name).config

    def allocate(self, size: int) -> VirtualBuffer:
        """Map a measurement buffer of at least ``size`` bytes."""
        return self.memory.allocate(size)

    def translate(self, virtual: int) -> int:
        """Virtual-to-physical translation (the /proc/pagemap privilege)."""
        return self.memory.translate(virtual)

    def load(self, virtual: int) -> None:
        """Perform one load; updates caches, counters and noise."""
        physical = self.memory.translate(virtual)
        self.hierarchy.access(physical)
        self.loads_performed += 1
        noise = self.spec.noise
        if noise.counter_noise_rate > 0.0:
            for level_name in self.hierarchy.level_names:
                if self._noise_rng.random() < noise.counter_noise_rate:
                    self.counters.inject_spurious(level_name, "miss")
        if noise.background_rate > 0.0 and self._noise_rng.random() < noise.background_rate:
            # Interrupt / other-process traffic: a random line in a fixed
            # physical window, issued as a demand access of another agent
            # (it moves replacement state but not *our* retired-load
            # counters, which are per-logical-core on real hardware).
            line_size = self.level_configs[0].line_size
            background = self._noise_rng.randrange(1 << 24) * line_size
            self.hierarchy.access(background, demand=False)
        if noise.prefetch_rate > 0.0 and self._noise_rng.random() < noise.prefetch_rate:
            try:
                neighbour = self.memory.translate(virtual + self.level_configs[0].line_size)
            except Exception:  # next line crosses into unmapped space
                return
            # Prefetches disturb cache state but are not demand loads, so
            # they do not move the MEM_LOAD_RETIRED-style counters.
            self.hierarchy.access(neighbour, demand=False)

    def wbinvd(self) -> None:
        """Flush the whole hierarchy (privileged, as from a kernel module)."""
        self.hierarchy.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        levels = ", ".join(config.describe() for config in self.level_configs)
        return f"<HardwarePlatform {self.spec.name}: {levels}>"
