"""Simulated measurement hardware: platforms, counters, memory, harness."""

from repro.hardware.catalog import PROCESSORS, LevelSpec, ProcessorSpec, get_processor
from repro.hardware.counters import EVENTS, CounterBank
from repro.hardware.harness import HardwareSetOracle, MeasurementHarness
from repro.hardware.memory import HUGE_PAGE_SIZE, VirtualBuffer, VirtualMemory
from repro.hardware.noise import NO_NOISE, NoiseModel
from repro.hardware.platform import HardwarePlatform

__all__ = [
    "PROCESSORS",
    "LevelSpec",
    "ProcessorSpec",
    "get_processor",
    "CounterBank",
    "EVENTS",
    "HardwareSetOracle",
    "MeasurementHarness",
    "VirtualMemory",
    "VirtualBuffer",
    "HUGE_PAGE_SIZE",
    "NoiseModel",
    "NO_NOISE",
    "HardwarePlatform",
]
