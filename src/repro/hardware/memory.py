"""Virtual memory for the simulated platform.

The paper's measurements run in user space, so the experimenter controls
*virtual* addresses while the caches beyond L1 are indexed by *physical*
addresses.  The practical fix — used by the paper and reproduced here —
is large pages: with 2 MiB pages the low 21 address bits are identical in
both spaces, which covers the index bits of every cache of interest.

:class:`VirtualMemory` hands out buffers backed by a simulated physical
page mapping:

* ``page_size >= 2 MiB`` — contiguous physical backing (huge pages);
  virtual offsets translate one-to-one.
* small pages (e.g. 4 KiB) — a shuffled physical page assignment, so the
  harness must *search* a buffer for lines that map to a wanted set,
  exactly as on hardware without huge pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, MeasurementError
from repro.util.bits import is_power_of_two
from repro.util.rng import SeededRng

HUGE_PAGE_SIZE = 2 * 1024 * 1024


@dataclass(frozen=True)
class VirtualBuffer:
    """A contiguous virtual allocation."""

    base: int
    size: int

    def line_addresses(self, line_size: int) -> range:
        """Virtual addresses of every line in the buffer."""
        return range(self.base, self.base + self.size, line_size)


class VirtualMemory:
    """Page-granular virtual-to-physical mapping."""

    def __init__(
        self,
        page_size: int = HUGE_PAGE_SIZE,
        physical_size: int = 1 << 34,
        rng: SeededRng | None = None,
    ) -> None:
        if not is_power_of_two(page_size):
            raise ConfigurationError(f"page_size must be a power of two, got {page_size}")
        if physical_size % page_size != 0:
            raise ConfigurationError("physical_size must be a multiple of page_size")
        self.page_size = page_size
        self.physical_size = physical_size
        self._rng = rng if rng is not None else SeededRng(0)
        self._next_virtual = page_size  # keep 0 unmapped, like a real process
        self._page_table: dict[int, int] = {}  # virtual page number -> physical
        self._free_frames = list(range(physical_size // page_size))
        self._rng.shuffle(self._free_frames)

    @property
    def huge_pages(self) -> bool:
        """True when pages are large enough for easy set targeting."""
        return self.page_size >= HUGE_PAGE_SIZE

    def allocate(self, size: int) -> VirtualBuffer:
        """Map a new buffer of at least ``size`` bytes; return it."""
        if size <= 0:
            raise MeasurementError("allocation size must be positive")
        pages = -(-size // self.page_size)
        base = self._next_virtual
        if self.huge_pages:
            # Contiguous physical backing: reserve a run of frames.
            start = self._claim_contiguous(pages)
            for i in range(pages):
                self._page_table[(base // self.page_size) + i] = start + i
        else:
            if pages > len(self._free_frames):
                raise MeasurementError("out of simulated physical memory")
            for i in range(pages):
                self._page_table[(base // self.page_size) + i] = self._free_frames.pop()
        self._next_virtual = base + pages * self.page_size
        return VirtualBuffer(base=base, size=pages * self.page_size)

    def _claim_contiguous(self, pages: int) -> int:
        frames = sorted(self._free_frames)
        if len(frames) < pages:
            raise MeasurementError("out of simulated physical memory")
        run_start, run_length = frames[0], 1
        if run_length >= pages:
            self._free_frames.remove(run_start)
            return run_start
        for previous, current in zip(frames, frames[1:]):
            if current == previous + 1:
                run_length += 1
            else:
                run_start, run_length = current, 1
            if run_length >= pages:
                start = current - pages + 1
                claimed = set(range(start, start + pages))
                self._free_frames = [f for f in self._free_frames if f not in claimed]
                return start
        if pages == 1 and frames:
            frame = frames[0]
            self._free_frames.remove(frame)
            return frame
        raise MeasurementError("no contiguous physical range available")

    def translate(self, virtual: int) -> int:
        """Translate a virtual address to its physical address."""
        page = virtual // self.page_size
        if page not in self._page_table:
            raise MeasurementError(f"access to unmapped virtual address {virtual:#x}")
        frame = self._page_table[page]
        return frame * self.page_size + (virtual % self.page_size)
