"""Measurement harness: turning loads and counters into a set oracle.

This module reproduces the experimental technique of the paper:

* **Set targeting** — find distinct physical line addresses that all map
  to one chosen set of the probed cache level (easy with huge pages,
  a buffer scan otherwise).
* **Upper-level defeat** — an access can only reach L2/L3 if it misses
  all smaller caches, so after every *logical* access the harness runs a
  *conflict pool*: addresses that share the upper levels' set bits with
  the target lines but map to different sets of the probed level.
  Accessing enough of them evicts the target line from every level above
  the probed one without touching the probed set.
* **Pollution-free counting** — the conflict pool is warmed during setup
  so its lines are resident in the probed level (in other sets); during
  the counted probe phase the pool therefore *hits* the probed level and
  the probed level's miss counter moves only for the logical accesses.

The result is :class:`HardwareSetOracle`, a drop-in
:class:`~repro.core.oracle.MissCountOracle`: the inference algorithms
run unchanged against simulated hardware.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.oracle import MissCountOracle
from repro.errors import MeasurementError
from repro.hardware.platform import HardwarePlatform
from repro.util.bits import extract_bits


class MeasurementHarness:
    """Address construction and measured runs on one platform."""

    def __init__(self, platform: HardwarePlatform, buffer_size: int = 256 * 1024 * 1024) -> None:
        self.platform = platform
        self.buffer = platform.allocate(buffer_size)
        configs = platform.level_configs
        for smaller, larger in zip(configs, configs[1:]):
            if smaller.num_sets > larger.num_sets:
                raise MeasurementError(
                    "harness assumes monotonically non-decreasing set counts "
                    f"({smaller.name} has {smaller.num_sets}, {larger.name} "
                    f"{larger.num_sets})"
                )

    # -- address classification ----------------------------------------------
    def set_index_of(self, level: str, virtual: int) -> int:
        """The set of ``level`` that a virtual address maps to."""
        config = self.platform.level_config(level)
        physical = self.platform.translate(virtual)
        return extract_bits(physical, config.offset_bits, config.index_bits)

    def find_set_addresses(self, level: str, set_index: int, count: int) -> list[int]:
        """Virtual line addresses mapping to ``(level, set_index)``.

        With huge pages the physical backing of the buffer is contiguous,
        so matches recur every ``way_size`` bytes and only the first
        window needs scanning; with small pages the whole buffer is
        scanned, as a real experiment without huge pages would.
        """
        config = self.platform.level_config(level)
        if not 0 <= set_index < config.num_sets:
            raise MeasurementError(f"set {set_index} out of range for {level}")
        found: list[int] = []
        if self.platform.memory.huge_pages:
            first = None
            for virtual in range(
                self.buffer.base, self.buffer.base + config.way_size, config.line_size
            ):
                if self.set_index_of(level, virtual) == set_index:
                    first = virtual
                    break
            if first is None:
                raise MeasurementError("no line of the buffer maps to the target set")
            virtual = first
            while len(found) < count and virtual < self.buffer.base + self.buffer.size:
                found.append(virtual)
                virtual += config.way_size
        else:
            for virtual in self.buffer.line_addresses(config.line_size):
                if self.set_index_of(level, virtual) == set_index:
                    found.append(virtual)
                    if len(found) >= count:
                        break
        if len(found) < count:
            raise MeasurementError(
                f"buffer yields only {len(found)} of {count} addresses for "
                f"{level} set {set_index}; allocate a larger buffer"
            )
        return found

    def conflict_pool(
        self, level: str, target_address: int, per_upper_way: int = 2
    ) -> list[int]:
        """Addresses that evict ``target_address`` from all levels above
        ``level`` without mapping to its set in ``level``.

        The pool shares the set bits of the largest upper level (hence of
        every smaller level too) but maps to other sets of the probed
        level.  Its size is ``per_upper_way`` times the largest upper
        associativity, enough to defeat any of the library's policies.
        """
        level_names = [config.name for config in self.platform.level_configs]
        probe_index = level_names.index(level)
        if probe_index == 0:
            return []
        upper = self.platform.level_config(level_names[probe_index - 1])
        probed = self.platform.level_config(level)
        target_upper_set = self.set_index_of(upper.name, target_address)
        target_probed_set = self.set_index_of(level, target_address)
        wanted = per_upper_way * max(
            self.platform.level_config(name).ways for name in level_names[:probe_index]
        )
        pool: list[int] = []
        virtual = self.buffer.base + (target_address - self.buffer.base) % upper.way_size
        while len(pool) < wanted and virtual < self.buffer.base + self.buffer.size:
            if (
                self.set_index_of(upper.name, virtual) == target_upper_set
                and self.set_index_of(level, virtual) != target_probed_set
            ):
                pool.append(virtual)
            virtual += upper.way_size
        if len(pool) < wanted:
            raise MeasurementError(
                f"buffer yields only {len(pool)} of {wanted} conflict addresses"
            )
        return pool


class HardwareSetOracle(MissCountOracle):
    """Miss-count oracle for one set of one level of a platform.

    Block ids are mapped to target-set addresses on first use.  Every
    measurement flushes the hierarchy (``wbinvd``), warms the conflict
    pool, runs the setup sequence, then counts the probed level's miss
    delta across the probe sequence.
    """

    def __init__(
        self,
        platform: HardwarePlatform,
        level: str,
        set_index: int | None = None,
        max_blocks: int = 512,
        harness: MeasurementHarness | None = None,
    ) -> None:
        self.platform = platform
        self.level = level
        config = platform.level_config(level)
        self.ways = config.ways
        if set_index is None:
            # An arbitrary but fixed set.  Deliberately off the round
            # numbers: set-dueling designs place their leader sets at
            # regular power-of-two strides, and probing exactly one of
            # those by default would misrepresent an adaptive cache as
            # running the leader's component policy.
            set_index = min(config.num_sets - 1, config.num_sets // 2 + 1)
        self.set_index = set_index
        if harness is None:
            needed = (max_blocks + 4) * config.way_size
            harness = MeasurementHarness(platform, buffer_size=needed)
        self.harness = harness
        self._pool = harness.find_set_addresses(level, set_index, max_blocks)
        self._conflicts = harness.conflict_pool(level, self._pool[0])
        self._block_to_address: dict[int, int] = {}
        self.measurements = 0
        self.accesses = 0

    def provenance(self) -> str | None:
        """Identity for the measurement DB — zero-noise platforms only.

        With any noise rate active, repeated identical measurements may
        legitimately disagree (the whole reason :class:`VotingOracle`
        exists), so there is no reproducible value to persist and the
        oracle reports no provenance.  A noise-free platform is a pure
        function of ``(spec, seed, level, set)`` and caches cleanly.
        """
        noise = self.platform.spec.noise
        if noise.counter_noise_rate or noise.background_rate or noise.prefetch_rate:
            return None
        return (
            f"hw|{self.platform.spec.name}|{self.level}"
            f"|set={self.set_index}|seed={self.platform.seed}"
        )

    # -- block id management -------------------------------------------------
    def _address(self, block: int) -> int:
        if block not in self._block_to_address:
            if len(self._block_to_address) >= len(self._pool):
                raise MeasurementError(
                    "address pool exhausted; raise max_blocks on the oracle"
                )
            self._block_to_address[block] = self._pool[len(self._block_to_address)]
        return self._block_to_address[block]

    # -- the measurement primitive ---------------------------------------------
    def _wrapped_load(self, block: int) -> None:
        """One logical access: load, then defeat all upper levels."""
        self.platform.load(self._address(block))
        for conflict in self._conflicts:
            self.platform.load(conflict)

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        self.platform.wbinvd()
        # Warm the conflict pool so its probe-phase accesses hit the
        # probed level and do not pollute the miss counter.
        for _ in range(2):
            for conflict in self._conflicts:
                self.platform.load(conflict)
        for block in setup:
            self._wrapped_load(block)
        before = self.platform.counters.snapshot()
        for block in probe:
            self._wrapped_load(block)
        misses = self.platform.counters.delta(self.level, "miss", before)
        self._note_measurement(len(setup), len(probe), misses)
        return misses
