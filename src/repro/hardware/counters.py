"""Simulated performance counters.

A :class:`CounterBank` exposes the per-level event counts of a cache
hierarchy the way ``perf`` exposes ``MEM_LOAD_RETIRED.*`` events: monotone
counters that can be sampled before and after a code region.  Counter
noise (spurious events) is added by the platform at access time, so a
noisy counter is indistinguishable from the real thing to the inference
algorithms.
"""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.errors import MeasurementError

EVENTS = ("access", "hit", "miss")


class CounterBank:
    """Monotone per-level event counters over a hierarchy."""

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self._hierarchy = hierarchy
        # Spurious event counts injected by the platform's noise model.
        self._spurious: dict[tuple[str, str], int] = {}

    def inject_spurious(self, level: str, event: str, count: int = 1) -> None:
        """Add ``count`` spurious events to a counter (noise injection)."""
        key = (level, event)
        self._spurious[key] = self._spurious.get(key, 0) + count

    def read(self, level: str, event: str) -> int:
        """Current value of the ``event`` counter of cache ``level``."""
        if event not in EVENTS:
            raise MeasurementError(f"unknown event {event!r}; known: {EVENTS}")
        try:
            stats = self._hierarchy.level(level).stats
        except KeyError as exc:
            raise MeasurementError(str(exc)) from exc
        true_value = {
            "access": stats.accesses,
            "hit": stats.hits,
            "miss": stats.misses,
        }[event]
        return true_value + self._spurious.get((level, event), 0)

    def snapshot(self) -> dict[tuple[str, str], int]:
        """Sample every counter at once."""
        return {
            (level, event): self.read(level, event)
            for level in self._hierarchy.level_names
            for event in EVENTS
        }

    def delta(self, level: str, event: str, before: dict[tuple[str, str], int]) -> int:
        """Events since ``before`` (a :meth:`snapshot` result)."""
        current = self.read(level, event)
        try:
            earlier = before[(level, event)]
        except KeyError:
            raise MeasurementError(
                f"snapshot has no ({level!r}, {event!r}) counter; "
                "was it taken on a different hierarchy?"
            ) from None
        return current - earlier
