"""Measurement noise models for the simulated platform.

On real hardware the paper's measurements are polluted by at least two
mechanisms, both reproduced here:

* **counter noise** — performance counters over-count: speculative loads,
  TLB walks and interrupts add spurious miss events that never touched
  the probed set.  Modelled as an independent per-access probability of
  one spurious miss count per level (no cache state impact).
* **prefetcher noise** — the hardware prefetcher issues real extra
  accesses (modelled as next-line prefetches with a per-access
  probability).  These *do* change cache state, though next-line
  prefetches land in the neighbouring set and therefore rarely corrupt a
  set-targeted measurement — which is exactly why the paper's technique
  survives on machines whose prefetchers cannot be disabled.
* **background noise** — interrupts and other processes touch memory of
  their own (modelled as accesses to a private noise region at a
  per-access probability).  Unlike counter noise these pollute *state*:
  they occasionally land in the probed set and genuinely change the
  replacement metadata, the hardest noise class the paper faces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NoiseModel:
    """Noise intensity of a simulated platform.

    Attributes:
        counter_noise_rate: probability, per performed access and per
            cache level, of one spurious miss count.
        prefetch_rate: probability, per performed load, of a next-line
            prefetch access being issued as well.
    """

    counter_noise_rate: float = 0.0
    prefetch_rate: float = 0.0
    background_rate: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (
            ("counter_noise_rate", self.counter_noise_rate),
            ("prefetch_rate", self.prefetch_rate),
            ("background_rate", self.background_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1], got {value}")

    @property
    def silent(self) -> bool:
        """True when the model adds no noise at all."""
        return (
            self.counter_noise_rate == 0.0
            and self.prefetch_rate == 0.0
            and self.background_rate == 0.0
        )


#: Noise-free measurements (ideal hardware).
NO_NOISE = NoiseModel()
