"""Catalog of simulated processors.

The paper measures real Intel machines (Core 2 Duo, Atom, Nehalem, Sandy
Bridge, Ivy Bridge generations).  We have no such hardware, so each
catalog entry is a *simulated stand-in*: the cache geometries follow the
real parts, while the replacement policies are hidden ground truth drawn
from this library's policy zoo — including the policy kinds the paper
reports (tree PLRU in first-level caches, LRU/FIFO, and the bit/age-based
policies of later L2/L3 designs).

The reverse-engineering experiments treat the ground truth as unknown:
only the measurement interface of :class:`~repro.hardware.platform.
HardwarePlatform` is used, and E1 afterwards compares the findings
against :attr:`ProcessorSpec.ground_truth` — which is precisely what the
simulation substitution buys us: on real hardware the paper could only
argue consistency, here correctness is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError
from repro.hardware.memory import HUGE_PAGE_SIZE
from repro.hardware.noise import NO_NOISE, NoiseModel


@dataclass(frozen=True)
class LevelSpec:
    """One cache level of a processor: geometry plus hidden policy."""

    config: CacheConfig
    policy: str
    policy_params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ProcessorSpec:
    """A named, fully specified simulated processor."""

    name: str
    description: str
    levels: tuple[LevelSpec, ...]
    page_size: int = HUGE_PAGE_SIZE
    noise: NoiseModel = NO_NOISE

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("a processor needs at least one cache level")

    @property
    def ground_truth(self) -> dict[str, str]:
        """Map of level name to the hidden policy name (for validation)."""
        return {level.config.name: level.policy for level in self.levels}

    def level(self, name: str) -> LevelSpec:
        """Return the level called ``name``."""
        for level in self.levels:
            if level.config.name == name:
                return level
        raise KeyError(f"no level named {name!r} in {self.name}")


def _l1(size_kib: int = 32, ways: int = 8, policy: str = "plru") -> LevelSpec:
    return LevelSpec(CacheConfig("L1", size_kib * 1024, ways), policy)


PROCESSORS: dict[str, ProcessorSpec] = {
    spec.name: spec
    for spec in (
        ProcessorSpec(
            name="core2-e6300-like",
            description="Core 2 Duo class: PLRU L1, PLRU L2 (2 MiB, 8-way)",
            levels=(
                _l1(),
                LevelSpec(CacheConfig("L2", 2 * 1024 * 1024, 8, inclusion="nine"), "plru"),
            ),
        ),
        ProcessorSpec(
            name="core2-e6750-like",
            description="Core 2 Duo class: PLRU L1, large 16-way L2 running LRU",
            levels=(
                _l1(),
                LevelSpec(CacheConfig("L2", 4 * 1024 * 1024, 16, inclusion="nine"), "lru"),
            ),
        ),
        ProcessorSpec(
            name="atom-d525-like",
            description="In-order Atom class: 6-way L1 LRU, 8-way L2 FIFO",
            levels=(
                LevelSpec(CacheConfig("L1", 24 * 1024, 6), "lru"),
                LevelSpec(CacheConfig("L2", 512 * 1024, 8, inclusion="nine"), "fifo"),
            ),
        ),
        ProcessorSpec(
            name="nehalem-like",
            description="Nehalem class: PLRU L1/L2, inclusive 16-way L3 on NRU",
            levels=(
                _l1(),
                LevelSpec(CacheConfig("L2", 256 * 1024, 8, inclusion="nine"), "plru"),
                LevelSpec(
                    CacheConfig("L3", 8 * 1024 * 1024, 16, inclusion="inclusive"), "nru"
                ),
            ),
        ),
        ProcessorSpec(
            name="sandybridge-like",
            description="Sandy Bridge class: PLRU L1/L2, inclusive L3 on bit-PLRU",
            levels=(
                _l1(),
                LevelSpec(CacheConfig("L2", 256 * 1024, 8, inclusion="nine"), "plru"),
                LevelSpec(
                    CacheConfig("L3", 2 * 1024 * 1024, 16, inclusion="inclusive"), "bitplru"
                ),
            ),
        ),
        ProcessorSpec(
            name="haswell-adaptive-like",
            # The L3 is kept at a realistic 8 MiB: an undersized inclusive
            # LLC lets the measurement pool of an L2 probe alias into a
            # handful of L3 sets, and back-invalidations then corrupt the
            # L2 measurements — the same interference the paper fought.
            description="Haswell class: PLRU L1/L2, adaptive set-dueling L3 (DIP)",
            levels=(
                _l1(),
                LevelSpec(CacheConfig("L2", 256 * 1024, 8, inclusion="nine"), "plru"),
                LevelSpec(
                    CacheConfig("L3", 8 * 1024 * 1024, 16, inclusion="inclusive"), "dip"
                ),
            ),
        ),
        ProcessorSpec(
            name="ivybridge-like",
            description="Ivy Bridge class: PLRU L1, quad-age L2 and L3 (QLRU family)",
            levels=(
                _l1(),
                LevelSpec(
                    CacheConfig("L2", 256 * 1024, 8, inclusion="nine"), "qlru_h00_m2"
                ),
                LevelSpec(
                    CacheConfig("L3", 2 * 1024 * 1024, 16, inclusion="inclusive"),
                    "qlru_h11_m1",
                ),
            ),
        ),
    )
}


def get_processor(name: str) -> ProcessorSpec:
    """Look up a catalog processor by name."""
    try:
        return PROCESSORS[name]
    except KeyError as exc:
        known = ", ".join(sorted(PROCESSORS))
        raise KeyError(f"unknown processor {name!r}; known: {known}") from exc
