"""Compiled policy-automaton simulation kernel.

The interpreter (:mod:`repro.cache`) simulates one access as a chain of
method calls and dataclass constructions.  This package compiles a
deterministic replacement policy into flat integer transition tables
(:mod:`repro.kernels.automaton`) and runs whole access sequences and
address traces as table lookups (:mod:`repro.kernels.engine`), producing
**bit-identical** miss counts, eviction orders and
:class:`~repro.cache.stats.CacheStats`.

Routing rules (:func:`kernel_allowed`, enforced by the callers in
:mod:`repro.core.oracle`, :mod:`repro.core.inference`,
:mod:`repro.core.distinguish`, :mod:`repro.eval.missratio` and
:mod:`repro.runner.cells`):

* the kernel is used automatically when it is enabled (the default; see
  :func:`set_kernel_enabled` and the CLI's ``--no-kernel``) **and** no
  active :mod:`repro.obs.trace` tracer wants per-access ``cache.*``
  events — full event tracing keeps the instrumented interpreter so
  per-access event streams are unchanged, but metrics collection and
  cold-event tracers (``oracle.*``/``runner.*``/... include filters)
  compose with the kernel, whose engines flush aggregate ``kernel.*``
  counters per call;
* randomized/adaptive policies raise
  :class:`~repro.errors.KernelUnsupported` at compile time and fall back
  to the interpreter (whole-cache trace simulation additionally has a
  "direct mode" that drives the real policy objects through an inlined
  loop, still bit-identical);
* a policy whose reachable state space exceeds the compile budget falls
  back the same way, even if that is only discovered mid-run.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import KernelUnsupported
from repro.obs import trace as _obs_trace
from repro.kernels.automaton import (
    DEFAULT_BUDGET,
    CompiledPolicy,
    clear_compile_cache,
    compile_policy,
    compiled_for,
    compiled_for_factory,
    compiled_for_spec,
    mark_factory_unsupported,
    mark_spec_unsupported,
    mark_unsupported,
)
from repro.kernels.engine import (
    count_misses_batch,
    count_misses_kernel,
    count_misses_preloaded,
    sequence_hits,
    sequence_hits_batch,
    sequence_hits_preloaded,
    sequence_hits_preloaded_batch,
    simulate_sequence,
    simulate_trace_direct,
    simulate_trace_kernel,
    try_simulate_trace,
)
from repro.kernels import store, trie, vector
from repro.kernels.trie import (
    set_trie_enabled,
    trie_allowed,
    trie_disabled,
    trie_enabled,
)
from repro.kernels.vector import (
    numpy_available,
    set_vector_enabled,
    vector_allowed,
    vector_disabled,
    vector_enabled,
)

__all__ = [
    "DEFAULT_BUDGET",
    "CompiledPolicy",
    "KernelUnsupported",
    "compile_policy",
    "compiled_for",
    "compiled_for_factory",
    "compiled_for_spec",
    "mark_unsupported",
    "mark_factory_unsupported",
    "mark_spec_unsupported",
    "clear_compile_cache",
    "count_misses_batch",
    "count_misses_kernel",
    "count_misses_preloaded",
    "sequence_hits",
    "sequence_hits_batch",
    "sequence_hits_preloaded",
    "sequence_hits_preloaded_batch",
    "simulate_sequence",
    "store",
    "vector",
    "simulate_trace_direct",
    "simulate_trace_kernel",
    "try_simulate_trace",
    "kernel_allowed",
    "kernel_enabled",
    "set_kernel_enabled",
    "kernel_disabled",
    "numpy_available",
    "vector_allowed",
    "vector_enabled",
    "set_vector_enabled",
    "vector_disabled",
    "trie",
    "trie_allowed",
    "trie_enabled",
    "set_trie_enabled",
    "trie_disabled",
]

#: Process-wide switch.  Worker processes forked by the runner inherit
#: the parent's setting, so ``--no-kernel`` disables the fast path in
#: parallel grids too.
_ENABLED = True


def kernel_enabled() -> bool:
    """True when the compiled fast path may be used."""
    return _ENABLED


def kernel_allowed() -> bool:
    """True when the compiled fast path may run *right now*.

    The kernel must be enabled, and any active tracer must not want
    per-access ``cache.*`` events (the one stream only the interpreter
    can produce).  Metrics-only observers and cold-event tracers keep
    the fast path; the engines report their work through the aggregate
    ``kernel.*`` counters and ``kernel.run`` events instead.
    """
    if not _ENABLED:
        return False
    tracer = _obs_trace.ACTIVE
    return tracer is None or not tracer.wants_cache


def set_kernel_enabled(enabled: bool) -> None:
    """Globally enable or disable the compiled fast path."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def kernel_disabled():
    """Temporarily force the interpreted path (tests, A/B benchmarks)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
