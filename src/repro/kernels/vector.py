"""Vectorized multi-lane execution of compiled policy automata.

The scalar engine (:mod:`repro.kernels.engine`) steps one set, one query
at a time: a Python loop per access.  But the paper's pipelines are
embarrassingly data-parallel — a distinguishing search replays hundreds
of probes against the same automaton, a bulk oracle batch measures
thousands of independent ``(setup, probe)`` queries, and a whole-cache
trace is just ``num_sets`` independent automata that never interact.
This module represents the state of many such *lanes* as flat numpy
vectors and advances all of them with one fancy-indexed gather per
access step::

    states[hit] = hit_next[states[hit] * ways + ways_hit]

Three entry points, each mirroring (and bit-identical to) a scalar one:

* :func:`batch_outcomes` — many ``(setup, probe)`` queries through one
  automaton (behind ``count_misses_batch`` / ``sequence_hits_batch``);
* :func:`preloaded_outcomes` — many probes from one preloaded set
  (behind ``sequence_hits_preloaded_batch``);
* :func:`simulate_trace_lockstep` — a whole address trace, partitioned
  per set and run with all ``num_sets`` automata advancing lock-step
  (behind ``simulate_trace_kernel`` / ``try_simulate_trace``).

The stepper's layout is chosen so per-step Python/numpy dispatch
overhead amortizes over as many lanes as possible:

* *every* query of a batch becomes a lane of **one** stepper call
  (queries sharing a setup start from the same snapshot — the vector
  analogue of the scalar batch's snapshot reuse);
* lanes are sorted by sequence length, longest first, so the active
  lanes always form a prefix and each step operates on a contiguous
  view that shrinks as lanes retire — no per-step boolean masking;
* the block matrix is stored column-major (``(width, lanes)``) so each
  step reads one contiguous row.

Ground rules:

* **numpy is optional.**  When it is absent every entry point returns
  ``None`` and callers keep the scalar engine; nothing in the library
  imports numpy unconditionally.
* **Only complete automata run vectorized.**  The stepper has no lazy
  expansion hook — a ``-1`` table entry would be gathered as a state id
  — so :func:`ensure_tables` forces ``expand_all()`` first and memoizes
  a budget blow as "scalar only" on the automaton.
* **Fallback is always legal.**  Every ``None`` return means "use the
  scalar engine"; the vector path is an optimization, never a
  capability.  Engagement and fallbacks are visible as
  ``kernel.vector.*`` counters.
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence
from contextlib import contextmanager
from itertools import chain

from repro.errors import KernelUnsupported
from repro.obs import metrics as obs_metrics

try:  # numpy is an optional extra (pip install repro[vector])
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

__all__ = [
    "VectorTables",
    "available",
    "batch_miss_counts",
    "batch_outcomes",
    "ensure_tables",
    "numpy_available",
    "preloaded_outcomes",
    "set_vector_enabled",
    "simulate_trace_lockstep",
    "vector_allowed",
    "vector_disabled",
    "vector_enabled",
]

#: Below this many lanes a batch stays scalar: per-step numpy dispatch
#: overhead (~µs) would dominate the handful of lanes.
MIN_LANES = 64

#: Whole-trace lock-step needs enough sets to fill the lanes.
MIN_TRACE_LANES = 64

#: Refuse lane matrices beyond this many cells (a pathologically skewed
#: trace would otherwise allocate set-count x trace-length).
MAX_MATRIX_CELLS = 64_000_000

#: A trace whose per-set access counts are so imbalanced that fewer than
#: this fraction of lane-matrix cells are real accesses stays scalar.
MIN_FILL_RATIO = 0.2

#: Block ids / tags must fit comfortably in int64 lanes.
_MAX_BLOCK = 1 << 62

_ENABLED = True


def available() -> bool:
    """True when numpy is importable in this process."""
    return _np is not None


#: Package-level alias: ``repro.kernels.numpy_available()``.
numpy_available = available


def vector_enabled() -> bool:
    """True when the vector engine may be used (process-wide switch)."""
    return _ENABLED


def set_vector_enabled(enabled: bool) -> None:
    """Globally enable or disable the vector engine (scalar kernel stays)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def vector_disabled():
    """Temporarily force the scalar engine (tests, A/B benchmarks)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def vector_allowed() -> bool:
    """True when the vector engine may run right now."""
    return _ENABLED and _np is not None


class VectorTables:
    """Numpy mirror of one complete automaton's transition tables.

    Flat int32 arrays in the same layout as the scalar lists —
    ``hit_next``/``fill_next`` indexed ``state * ways + way``,
    ``miss_victim``/``miss_next`` indexed ``state``.  Instances are
    attached to their :class:`~repro.kernels.automaton.CompiledPolicy`
    (``vector_tables`` slot) by :func:`ensure_tables`, or zero-copy by
    the artifact store over an mmap of the on-disk tables.
    """

    __slots__ = (
        "ways",
        "num_states",
        "hit_next",
        "fill_next",
        "miss_victim",
        "miss_next",
        "fused_next",
        "fused_way",
    )

    def __init__(self, ways, num_states, hit_next, fill_next, miss_victim, miss_next):
        self.ways = ways
        self.num_states = num_states
        self.hit_next = hit_next
        self.fill_next = fill_next
        self.miss_victim = miss_victim
        self.miss_next = miss_next
        self.fused_next = None
        self.fused_way = None

    def fused(self):
        """The stepper's fused ``(state, event)`` tables, built lazily.

        An access step has ``2 * ways + 1`` possible events per state:
        hit at way ``w`` (event ``w``), cold fill at way ``w`` (event
        ``ways + w``), and evicting miss (event ``2 * ways``).  Fusing
        the three transition tables into one lets the stepper advance
        every lane — hit or miss — with a single gather, and
        ``fused_way`` yields the way each missing lane writes (-1 for
        hits, which write nothing).
        """
        if self.fused_next is None:
            np = _np
            states, ways = self.num_states, self.ways
            span = 2 * ways + 1
            nxt = np.empty((states, span), dtype=np.int32)
            nxt[:, :ways] = self.hit_next.reshape(states, ways)
            nxt[:, ways : 2 * ways] = self.fill_next.reshape(states, ways)
            nxt[:, 2 * ways] = self.miss_next
            way = np.empty((states, span), dtype=np.int32)
            way[:, :ways] = -1
            way[:, ways : 2 * ways] = np.arange(ways, dtype=np.int32)
            way[:, 2 * ways] = self.miss_victim
            self.fused_next = nxt.reshape(-1)
            self.fused_way = way.reshape(-1)
        return self.fused_next, self.fused_way

    @classmethod
    def from_lists(cls, compiled) -> "VectorTables":
        """Copy a complete automaton's list tables into numpy arrays."""
        return cls(
            compiled.ways,
            compiled.num_states,
            _np.asarray(compiled.hit_next, dtype=_np.int32),
            _np.asarray(compiled.fill_next, dtype=_np.int32),
            _np.asarray(compiled.miss_victim, dtype=_np.int32),
            _np.asarray(compiled.miss_next, dtype=_np.int32),
        )

    @classmethod
    def from_buffers(cls, ways, num_states, buffers) -> "VectorTables":
        """Zero-copy views over int32 buffers (the store's mmap payload)."""
        return cls(
            ways,
            num_states,
            _np.frombuffer(buffers["hit_next"], dtype=_np.int32),
            _np.frombuffer(buffers["fill_next"], dtype=_np.int32),
            _np.frombuffer(buffers["miss_victim"], dtype=_np.int32),
            _np.frombuffer(buffers["miss_next"], dtype=_np.int32),
        )


def ensure_tables(compiled) -> VectorTables | None:
    """The automaton's numpy tables, or None when it must stay scalar.

    Forces full expansion first (the stepper cannot expand lazily) and
    memoizes the outcome on the automaton: a successful build is cached
    as the tables themselves, a budget blow or missing numpy as a
    ``False`` tombstone so the probe runs once.
    """
    cached = compiled.vector_tables
    if cached is not None:
        return cached or None
    if _np is None:
        compiled.vector_tables = False
        return None
    try:
        compiled.expand_all()
    except KernelUnsupported:
        compiled.vector_tables = False
        return None
    tables = VectorTables.from_lists(compiled)
    compiled.vector_tables = tables
    return tables


# -- the lock-step stepper ---------------------------------------------------

def _run_lanes(tables, states, tags, filled, blocks, lengths, hits_out=None):
    """Advance every lane over its block column, one access step at a time.

    Lanes MUST be ordered by non-increasing ``lengths`` so the active
    lanes are always a prefix; ``blocks`` is column-major (shape
    ``(width, Q)``, padded with -1) so each step reads one contiguous
    row, and ``hits_out`` (optional) has the same layout.  ``states`` /
    ``filled`` are int32 ``(Q,)`` vectors, ``tags`` an int64 ``(Q,
    ways)`` matrix (-1 = invalid way); all are mutated in place.
    Returns ``(total_hits, total_evictions)``.

    Each step mirrors the scalar engine's per-access rules exactly: a
    matching tag is a hit at that way, a miss in a partly-filled lane
    cold-fills the first invalid way (== the fill count, because these
    runs never invalidate), a miss in a full lane evicts the automaton's
    victim.  The three cases collapse into one event id per lane, so a
    single gather through the fused tables advances every lane at once.
    """
    np = _np
    ways = tables.ways
    span = 2 * ways + 1
    fused_next, fused_way = tables.fused()
    width = blocks.shape[0]
    lanes = states.shape[0]
    if not width or not lanes:
        return 0, 0
    # ended_by[c] = lanes whose sequence is over by step c; the active
    # lanes are always the remaining prefix, by the length ordering.
    ended_by = np.cumsum(np.bincount(lengths, minlength=width + 1))
    arange = np.arange(lanes)
    filled_before = int(filled.sum())
    total = 0
    total_hits = 0
    for column in range(width):
        active = lanes - int(ended_by[column])
        if not active:
            break
        total += active
        s = states[:active]
        t = tags[:active]
        f = filled[:active]
        b = blocks[column, :active]
        eq = t == b[:, None]
        # One scan finds the matching way; a gather of that way tells us
        # whether it actually matched (argmax of an all-False row is 0).
        way_all = eq.argmax(axis=1)
        hit = eq[arange[:active], way_all]
        # Event id: way (hit), ways + fill count (cold miss, capped at
        # ways which IS the evicting-miss event when the lane is full).
        event = np.where(hit, way_all, ways + np.minimum(f, ways))
        index = s * span + event
        s[:] = fused_next[index]
        miss = ~hit
        miss_rows = miss.nonzero()[0]
        if miss_rows.size:
            t[miss_rows, fused_way[index[miss_rows]]] = b[miss_rows]
            f += miss & (f < ways)
        if hits_out is not None:
            hits_out[column, :active] = hit
        total_hits += int(np.count_nonzero(hit))
    # Every miss either cold-filled a way (visible as filled growth) or
    # evicted; no per-step counting needed.
    cold_fills = int(filled.sum()) - filled_before
    evictions = (total - total_hits) - cold_fills
    return total_hits, evictions


def _scalar_run(tables, blocks) -> tuple[int, dict, int]:
    """Walk one sequence over the numpy tables in plain Python.

    Used for chunk setups: each runs once and its snapshot seeds every
    lane of the chunk.  Returns ``(state, way_of, hits)`` — the same
    snapshot the scalar engine's ``_run_blocks`` maintains (``tag_of``
    is recoverable from ``way_of`` since these runs never invalidate).
    """
    ways = tables.ways
    hit_next = tables.hit_next
    fill_next = tables.fill_next
    miss_victim = tables.miss_victim
    miss_next = tables.miss_next
    way_of: dict = {}
    tag_of = [-1] * ways
    state = 0
    hits = 0
    for block in blocks:
        way = way_of.get(block)
        if way is not None:
            state = int(hit_next[state * ways + way])
            hits += 1
            continue
        filled = len(way_of)
        if filled < ways:
            way_of[block] = filled
            tag_of[filled] = block
            state = int(fill_next[state * ways + filled])
        else:
            victim = int(miss_victim[state])
            del way_of[tag_of[victim]]
            tag_of[victim] = block
            way_of[block] = victim
            state = int(miss_next[state])
    return state, way_of, hits


def _note_vector_call(lanes: int, accesses: int) -> None:
    metrics = obs_metrics.DEFAULT
    metrics.incr("kernel.vector.calls")
    metrics.incr("kernel.vector.lanes", lanes)
    metrics.incr("kernel.vector.accesses", accesses)


def _note_fallback() -> None:
    obs_metrics.DEFAULT.incr("kernel.vector.fallbacks")


def _lane_matrix(probes: Sequence[Sequence[int]], order, lengths):
    """Column-major padded lane matrix for probes taken in ``order``.

    Returns ``(blocks, lengths_sorted, step, lane)`` where ``step`` /
    ``lane`` map each flattened access (lanes concatenated in order) to
    its matrix cell — the same index pair extracts per-lane outcomes
    from a ``hits_out`` matrix in one gather.  Returns None when any
    block id falls outside the int64 lane range ``[0, _MAX_BLOCK)``
    (-1 is the padding sentinel, so negatives must stay scalar).
    """
    np = _np
    count = len(probes)
    lengths_sorted = lengths[order]
    width = int(lengths_sorted[0]) if count else 0
    blocks = np.full((width, count), -1, dtype=np.int64)
    total = int(lengths.sum())
    if not total:
        empty = np.empty(0, dtype=np.int64)
        return blocks, lengths_sorted, empty, empty
    ordered = (probes[index] for index in order.tolist())
    try:
        flat = np.fromiter(chain.from_iterable(ordered), dtype=np.int64, count=total)
    except (OverflowError, ValueError):
        return None
    if int(flat.max()) >= _MAX_BLOCK or int(flat.min()) < 0:
        return None
    if int(lengths_sorted[-1]) == width:
        # Uniform probe length (the common distinguish/verify shape):
        # the lane matrix is just the flat array transposed — no
        # scatter — and outcomes un-flatten by row, signalled by the
        # None step map.
        blocks = np.ascontiguousarray(flat.reshape(count, width).T)
        return blocks, lengths_sorted, None, None
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths_sorted, out=offsets[1:])
    step = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], lengths_sorted)
    lane = np.repeat(np.arange(count, dtype=np.int64), lengths_sorted)
    blocks[step, lane] = flat
    return blocks, lengths_sorted, step, lane


def _split_outcomes(hits_out, lengths_sorted, step, lane, order):
    """Un-sort a ``hits_out`` matrix into per-query tuples of bools."""
    outcomes: list = [None] * len(order)
    if step is None:  # uniform lengths: one lane per matrix column
        width = hits_out.shape[0]
        flat = hits_out.T.reshape(-1).tolist()
        for lane_index, query_index in enumerate(order.tolist()):
            position = lane_index * width
            outcomes[query_index] = tuple(flat[position : position + width])
        return outcomes
    flat = hits_out[step, lane].tolist()
    position = 0
    for lane_index, query_index in enumerate(order.tolist()):
        length = int(lengths_sorted[lane_index])
        outcomes[query_index] = tuple(flat[position : position + length])
        position += length
    return outcomes


# -- batched (setup, probe) queries ------------------------------------------

def batch_outcomes(compiled, queries):
    """Vectorized analogue of the scalar engine's ``_run_batch``.

    Returns ``(outcomes, executed, executed_hits, reused)`` — the same
    accounting tuple, with identical values (outcomes as tuples) — or
    ``None`` when the batch must stay scalar (numpy absent/disabled,
    automaton not fully expandable, too few lanes, or block ids outside
    the int64 lane range).  Queries are chunked by *consecutive equal
    setups* exactly like the scalar path; every chunk's setup runs once
    (in Python, over the numpy tables) and its snapshot seeds that
    chunk's lanes, after which ALL lanes advance in one stepper call.
    """
    run = _batch_run(compiled, queries)
    if run is None:
        return None
    hits_out, lengths_sorted, step, lane, order, accounting = run
    outcomes = _split_outcomes(hits_out, lengths_sorted, step, lane, order)
    return (outcomes, *accounting)


def batch_miss_counts(compiled, queries):
    """Per-query probe *miss counts* — the oracle path, list-free.

    Same contract and accounting as :func:`batch_outcomes`, but the
    per-access outcomes never materialize as Python objects: each lane's
    hit column is summed in numpy.  Returns ``(counts, executed,
    executed_hits, reused)`` or ``None`` for scalar fallback.
    """
    run = _batch_run(compiled, queries)
    if run is None:
        return None
    hits_out, lengths_sorted, _, _, order, accounting = run
    lane_misses = (lengths_sorted - hits_out.sum(axis=0, dtype=_np.int64)).tolist()
    counts: list = [None] * len(order)
    for lane_index, query_index in enumerate(order.tolist()):
        counts[query_index] = lane_misses[lane_index]
    return (counts, *accounting)


def _batch_run(compiled, queries):
    if not vector_allowed() or len(queries) < MIN_LANES:
        return None
    tables = ensure_tables(compiled)
    if tables is None:
        if available() and vector_enabled():
            _note_fallback()
        return None
    np = _np
    ways = tables.ways
    count = len(queries)

    # Chunk by consecutive equal setups (the scalar batch's reuse rule);
    # chunks cover contiguous query ranges by construction.  Callers
    # typically pass the *same* setup object for a whole chunk, so an
    # identity check skips most of the tuple building.
    chunk_bounds: list[int] = []  # start index of each chunk
    chunk_setups: list[tuple[int, ...]] = []
    prev_obj = None
    prev_setup: tuple[int, ...] | None = None
    for index, (setup, _) in enumerate(queries):
        if prev_setup is not None and setup is prev_obj:
            continue
        setup_key = tuple(setup)
        if prev_setup is None or setup_key != prev_setup:
            chunk_bounds.append(index)
            chunk_setups.append(setup_key)
            prev_setup = setup_key
        prev_obj = setup
    chunk_bounds.append(count)

    # Replay each chunk's setup once; seed its lane range from the snapshot.
    states = np.zeros(count, dtype=np.int32)
    tags = np.full((count, ways), -1, dtype=np.int64)
    filled = np.zeros(count, dtype=np.int32)
    executed = 0
    executed_hits = 0
    reused = 0
    for chunk, setup_key in enumerate(chunk_setups):
        if any(block < 0 or block >= _MAX_BLOCK for block in setup_key):
            _note_fallback()
            return None  # id outside the lane range: whole batch stays scalar
        start, end = chunk_bounds[chunk], chunk_bounds[chunk + 1]
        state, way_of, setup_hits = _scalar_run(tables, setup_key)
        executed += len(setup_key)
        executed_hits += setup_hits
        reused += len(setup_key) * (end - start - 1)
        if state:
            states[start:end] = state
        if way_of:
            row = np.full(ways, -1, dtype=np.int64)
            for tag, way in way_of.items():
                row[way] = tag
            tags[start:end] = row
            filled[start:end] = len(way_of)

    # Sort lanes longest-probe-first so the stepper's active set is a
    # shrinking prefix, run, then un-sort the outcomes.
    probes = [probe for _, probe in queries]
    lengths = np.fromiter((len(p) for p in probes), dtype=np.int64, count=count)
    order = np.argsort(-lengths, kind="stable")
    layout = _lane_matrix(probes, order, lengths)
    if layout is None:
        _note_fallback()
        return None
    blocks, lengths_sorted, step, lane = layout
    hits_out = np.zeros(blocks.shape, dtype=bool)
    total_hits, _ = _run_lanes(
        tables,
        states[order],
        tags[order],
        filled[order],
        blocks,
        lengths_sorted,
        hits_out,
    )
    executed += int(lengths.sum())
    executed_hits += total_hits
    _note_vector_call(count, executed)
    accounting = (executed, executed_hits, reused)
    return hits_out, lengths_sorted, step, lane, order, accounting


# -- batched preloaded probes ------------------------------------------------

def preloaded_outcomes(compiled, tags_list, probes):
    """Vectorized ``sequence_hits_preloaded`` over many probes.

    Every lane starts from the same preloaded full set in the reset
    state (``tags_list[w]`` resident in way ``w``).  Returns
    ``(outcomes, accesses, hits)`` or ``None`` for scalar fallback.
    """
    if not vector_allowed() or len(probes) < MIN_LANES:
        return None
    tables = ensure_tables(compiled)
    if tables is None:
        if available() and vector_enabled():
            _note_fallback()
        return None
    np = _np
    ways = tables.ways
    if len(tags_list) != ways:
        return None  # let the scalar path raise its KernelUnsupported
    if any(tag < 0 or tag >= _MAX_BLOCK for tag in tags_list):
        return None
    count = len(probes)
    lengths = np.fromiter((len(p) for p in probes), dtype=np.int64, count=count)
    order = np.argsort(-lengths, kind="stable")
    layout = _lane_matrix(probes, order, lengths)
    if layout is None:
        _note_fallback()
        return None
    blocks, lengths_sorted, step, lane = layout
    states = np.zeros(count, dtype=np.int32)
    tags = np.tile(np.asarray(tags_list, dtype=np.int64), (count, 1))
    filled = np.full(count, ways, dtype=np.int32)
    hits_out = np.zeros(blocks.shape, dtype=bool)
    total_hits, _ = _run_lanes(
        tables, states, tags, filled, blocks, lengths_sorted, hits_out
    )
    outcomes = _split_outcomes(hits_out, lengths_sorted, step, lane, order)
    accesses = int(lengths.sum())
    _note_vector_call(count, accesses)
    return outcomes, accesses, total_hits


# -- whole-trace lock-step ---------------------------------------------------

def simulate_trace_lockstep(trace, config, compiled):
    """Run a whole read trace with all ``num_sets`` automata lock-step.

    The trace is decomposed into per-set tag subsequences (sets never
    interact, and a stable partition preserves each set's access order),
    then every set advances one access per stepper column.  Returns a
    :class:`~repro.cache.stats.CacheStats` bit-identical to the scalar
    trace engine / interpreter, or ``None`` for scalar fallback (numpy
    absent/disabled, too few sets, automaton not fully expandable, a
    pathologically skewed trace, or tags beyond the int64 lane range).
    """
    if not vector_allowed() or config.num_sets < MIN_TRACE_LANES:
        return None
    tables = ensure_tables(compiled)
    if tables is None:
        if available() and vector_enabled():
            _note_fallback()
        return None
    from repro.cache.stats import CacheStats

    total = len(trace)
    if not total:
        return CacheStats(accesses=0, hits=0, misses=0, evictions=0, fills=0)
    layout = _trace_layout(trace, config)
    if layout is None:
        _note_fallback()
        return None
    np = _np
    blocks, lengths_sorted = layout
    num_sets = config.num_sets
    ways = tables.ways
    states = np.zeros(num_sets, dtype=np.int32)
    tags = np.full((num_sets, ways), -1, dtype=np.int64)
    filled = np.zeros(num_sets, dtype=np.int32)
    hits, evictions = _run_lanes(tables, states, tags, filled, blocks, lengths_sorted)
    misses = total - hits
    _note_vector_call(num_sets, total)
    return CacheStats(
        accesses=total,
        hits=hits,
        misses=misses,
        evictions=evictions,
        fills=misses,
    )


#: One-slot memo for the last trace's lock-step layout.  The layout
#: (block matrix + per-lane lengths) depends only on the trace and the
#: cache geometry — not the policy — and evaluation loops simulate the
#: same trace under many policies back to back.  Keyed by trace
#: *identity* (a weak reference, traces are immutable) so it can never
#: serve stale data for a different trace.
_TRACE_LAYOUT: tuple | None = None


def _trace_layout(trace, config):
    """Decompose + partition ``trace`` for ``config``, memoized.

    Returns ``(blocks, lengths_sorted)`` — both treated as read-only by
    the stepper — or None when the trace cannot run lock-step (address
    or tag beyond the int64 lane range, or a matrix-size gate tripped).
    The None is memoized too: the gates are deterministic per layout.
    """
    global _TRACE_LAYOUT
    np = _np
    geometry = (
        config.offset_bits,
        config.index_bits,
        config.num_sets,
        config.index_hash,
    )
    if _TRACE_LAYOUT is not None:
        trace_ref, cached_geometry, layout = _TRACE_LAYOUT
        if trace_ref() is trace and cached_geometry == geometry:
            return layout
    layout = _build_trace_layout(trace, config)
    try:
        _TRACE_LAYOUT = (weakref.ref(trace), geometry, layout)
    except TypeError:  # pragma: no cover - Trace supports weakrefs
        _TRACE_LAYOUT = None
    return layout


def _build_trace_layout(trace, config):
    np = _np
    address_vec = trace.address_array()
    if address_vec is None:
        return None
    total = len(address_vec)
    offset_bits = config.offset_bits
    index_bits = config.index_bits
    num_sets = config.num_sets
    set_mask = np.uint64(num_sets - 1)
    if config.index_hash != "bits":
        tag_vec = address_vec >> np.uint64(offset_bits)
        set_vec = np.zeros(total, dtype=np.uint64)
        if index_bits:
            remaining = tag_vec.copy()
            shift = np.uint64(index_bits)
            while remaining.any():
                set_vec ^= remaining & set_mask
                remaining >>= shift
    else:
        set_vec = (address_vec >> np.uint64(offset_bits)) & set_mask
        tag_vec = address_vec >> np.uint64(offset_bits + index_bits)
    if int(tag_vec.max()) >= _MAX_BLOCK:
        return None
    set_vec = set_vec.astype(np.int64)
    counts = np.bincount(set_vec, minlength=num_sets)
    width = int(counts.max())
    if num_sets * width > MAX_MATRIX_CELLS:
        return None
    if total < MIN_FILL_RATIO * num_sets * width:
        return None
    # Partition accesses by set (stable: per-set order preserved), order
    # the lanes busiest-set-first, and scatter every access into its
    # (step, lane) cell of the column-major block matrix in one shot.
    access_order = np.argsort(set_vec, kind="stable")
    sorted_tags = tag_vec[access_order].astype(np.int64)
    sorted_sets = set_vec[access_order]
    offsets = np.zeros(num_sets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    lane_order = np.argsort(-counts, kind="stable")
    inverse = np.empty(num_sets, dtype=np.int64)
    inverse[lane_order] = np.arange(num_sets)
    step_of = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    blocks = np.full((width, num_sets), -1, dtype=np.int64)
    blocks[step_of, inverse[sorted_sets]] = sorted_tags
    return blocks, counts[lane_order]
