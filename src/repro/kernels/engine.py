"""Fast simulation loops over compiled policy automata.

Two granularities, matching the two shapes of simulation in the library:

* **single set, block ids** — the oracle/inference substrate.
  :func:`count_misses_kernel`, :func:`count_misses_preloaded`,
  :func:`sequence_hits` and :func:`simulate_sequence` replay block-id
  sequences against one compiled set, reproducing exactly what
  :class:`~repro.cache.set.CacheSet` driven through ``access()`` would
  do (cold fills go to ascending ways, full-set misses evict the
  policy's victim).

* **whole cache, address traces** — the evaluation substrate.
  :func:`simulate_trace_kernel` runs a trace against ``num_sets``
  independent automaton instances sharing one transition table;
  :func:`simulate_trace_direct` covers non-compilable (randomized /
  set-dueling) policies with the real policy objects driven by an
  inlined loop that skips the interpreter's per-access dataclass and
  tracer overhead.  :func:`try_simulate_trace` picks the right one and
  returns ``None`` when the kernel must stay off (disabled globally, or
  an active tracer wants per-access ``cache.*`` events).  Every engine
  call flushes its aggregate hit/miss/evict work into the metrics store
  (``kernel.*`` counters), and the whole-trace engines additionally
  report per-state visit counts and a ``kernel.run`` event when a
  (cold-event) tracer is watching.

Bit-identity argument, in one place: per set the interpreter's state is
(tag→way map, policy state).  The kernel mirrors the tag→way map
directly and replaces the policy object with an automaton state id whose
transitions were *computed by the policy's own methods* in the same
order the interpreter calls them (hit → ``touch(way)``; cold miss →
``fill(first invalid way)``; full miss → ``evict()`` then
``fill(victim)``).  The fill-ascending invariant holds because these
loops only ever access (never invalidate), so the number of valid lines
*is* the first invalid way.  Statistics are counted by the same rules as
:meth:`repro.cache.cache.Cache.access`; traces carry only reads, so
dirty bits and writebacks cannot occur on the fast path.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cache.config import CacheConfig
from repro.cache.set import SetAccessResult
from repro.cache.stats import CacheStats
from repro.errors import KernelUnsupported
from repro.kernels import automaton, trie, vector
from repro.kernels.automaton import CompiledPolicy, compiled_for_factory
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.policies import PolicyFactory
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace

__all__ = [
    "count_misses_batch",
    "count_misses_kernel",
    "count_misses_preloaded",
    "sequence_hits",
    "sequence_hits_batch",
    "sequence_hits_preloaded",
    "sequence_hits_preloaded_batch",
    "simulate_sequence",
    "simulate_trace_direct",
    "simulate_trace_kernel",
    "try_simulate_trace",
]


# -- counters ----------------------------------------------------------------

def _note_kernel_call(
    mode: str, accesses: int, hits: int, misses: int, evictions: int = 0
) -> None:
    """Flush one engine call's aggregate work into the metrics store.

    The compiled engines have no per-access instrumentation sites, so
    this per-call flush is what keeps a metrics-only observer informed
    without giving up the fast path.  ``mode`` is ``"set"`` (single-set
    block runs), ``"batch"`` (many single-set queries in one call),
    ``"trace"`` (compiled whole-cache) or ``"direct"`` (real-policy
    whole-cache).

    Invariant (every mode, every call site): ``accesses = hits +
    misses``, counting *all* executed accesses — setup replays included.
    Setup accesses a batch *skips* through snapshot reuse are reported
    separately as ``kernel.setup_reused``, so the per-query and batch
    paths reconcile exactly: ``accesses(batch) + setup_reused ==
    accesses(per-query)``.
    """
    metrics = obs_metrics.DEFAULT
    metrics.incr("kernel.calls")
    metrics.incr(f"kernel.calls.{mode}")
    metrics.incr("kernel.accesses", accesses)
    metrics.incr("kernel.hits", hits)
    metrics.incr("kernel.misses", misses)
    if evictions:
        metrics.incr("kernel.evictions", evictions)


# -- single-set runs ---------------------------------------------------------

def _run_blocks(
    compiled: CompiledPolicy,
    blocks: Sequence[int],
    way_of: dict[int, int],
    tag_of: list[int],
    state: int,
    hits: list[bool] | None = None,
) -> tuple[int, int]:
    """Advance one set over ``blocks``; return ``(final state, hit count)``.

    ``way_of``/``tag_of`` are mutated in place; ``hits`` (when given)
    collects the per-access hit/miss outcome.  The hit count is returned
    even without a ``hits`` list so setup replays can be accounted under
    the accesses = hits + misses counter invariant.
    """
    ways = compiled.ways
    hit_next = compiled.hit_next
    fill_next = compiled.fill_next
    miss_victim = compiled.miss_victim
    miss_next = compiled.miss_next
    record = hits.append if hits is not None else None
    hit_count = 0
    for block in blocks:
        way = way_of.get(block)
        if way is not None:
            nxt = hit_next[state * ways + way]
            state = nxt if nxt >= 0 else compiled.expand_hit(state, way)
            hit_count += 1
            if record is not None:
                record(True)
            continue
        filled = len(way_of)
        if filled < ways:
            way_of[block] = filled
            tag_of[filled] = block
            nxt = fill_next[state * ways + filled]
            state = nxt if nxt >= 0 else compiled.expand_fill(state, filled)
        else:
            victim = miss_victim[state]
            if victim >= 0:
                nxt = miss_next[state]
            else:
                victim, nxt = compiled.expand_miss(state)
            del way_of[tag_of[victim]]
            tag_of[victim] = block
            way_of[block] = victim
            state = nxt
        if record is not None:
            record(False)
    return state, hit_count


def count_misses_kernel(
    compiled: CompiledPolicy, setup: Sequence[int], probe: Sequence[int]
) -> int:
    """Misses of ``probe`` after ``setup``, from a fresh empty set."""
    way_of: dict[int, int] = {}
    tag_of = [0] * compiled.ways
    state, setup_hits = _run_blocks(compiled, setup, way_of, tag_of, 0)
    hits: list[bool] = []
    _run_blocks(compiled, probe, way_of, tag_of, state, hits)
    probe_hits = sum(hits)
    total = len(setup) + len(hits)
    total_hits = setup_hits + probe_hits
    _note_kernel_call("set", total, total_hits, total - total_hits)
    return len(hits) - probe_hits


def count_misses_preloaded(
    compiled: CompiledPolicy, tags: Sequence[int], probe: Sequence[int]
) -> int:
    """Misses of ``probe`` from a preloaded full set in the reset state.

    ``tags[w]`` is the block resident in way ``w`` — the kernel analogue
    of :meth:`repro.cache.set.CacheSet.preload` on a fresh set.
    """
    if len(tags) != compiled.ways:
        raise KernelUnsupported(
            f"preload needs {compiled.ways} tags, got {len(tags)}"
        )
    way_of = {tag: way for way, tag in enumerate(tags)}
    tag_of = list(tags)
    hits: list[bool] = []
    _run_blocks(compiled, probe, way_of, tag_of, 0, hits)
    probe_hits = sum(hits)
    _note_kernel_call("set", len(hits), probe_hits, len(hits) - probe_hits)
    return len(hits) - probe_hits


def sequence_hits_preloaded(
    compiled: CompiledPolicy, tags: Sequence[int], probe: Sequence[int]
) -> tuple[bool, ...]:
    """Per-access hit/miss outcome of ``probe`` from a preloaded set.

    The preloaded-set analogue of :func:`sequence_hits`, and the
    substrate of inference's cumulative verification predictions: one
    pass yields the outcome of every prefix of ``probe`` at once.
    """
    if len(tags) != compiled.ways:
        raise KernelUnsupported(
            f"preload needs {compiled.ways} tags, got {len(tags)}"
        )
    way_of = {tag: way for way, tag in enumerate(tags)}
    tag_of = list(tags)
    hits: list[bool] = []
    _run_blocks(compiled, probe, way_of, tag_of, 0, hits)
    probe_hits = sum(hits)
    _note_kernel_call("set", len(hits), probe_hits, len(hits) - probe_hits)
    return tuple(hits)


def sequence_hits_preloaded_batch(
    compiled: CompiledPolicy,
    tags: Sequence[int],
    probes: Sequence[Sequence[int]],
) -> list[tuple[bool, ...]]:
    """Per-access outcomes of many probes from one preloaded set.

    Every probe starts from the same preloaded full set (``tags[w]``
    resident in way ``w``) in the reset state — the shape of inference's
    verification round, which predicts the outcome of many candidate
    sequences against one conflict set.  Bit-identical to per-probe
    :func:`sequence_hits_preloaded` calls; one metrics flush covers the
    batch, and the vector engine takes it when numpy is available.
    """
    if len(tags) != compiled.ways:
        raise KernelUnsupported(
            f"preload needs {compiled.ways} tags, got {len(tags)}"
        )
    result = vector.preloaded_outcomes(compiled, tags, probes)
    if result is not None:
        outcomes, accesses, total_hits = result
        _note_kernel_call("batch", accesses, total_hits, accesses - total_hits)
        return [tuple(hits) for hits in outcomes]
    out: list[tuple[bool, ...]] = []
    accesses = 0
    total_hits = 0
    for probe in probes:
        way_of = {tag: way for way, tag in enumerate(tags)}
        tag_of = list(tags)
        hits: list[bool] = []
        _run_blocks(compiled, probe, way_of, tag_of, 0, hits)
        accesses += len(hits)
        total_hits += sum(hits)
        out.append(tuple(hits))
    _note_kernel_call("batch", accesses, total_hits, accesses - total_hits)
    return out


# -- batched single-set runs -------------------------------------------------

def _run_batch(
    compiled: CompiledPolicy,
    queries: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> tuple[list[list[bool]], int, int, int]:
    """Run many ``(setup, probe)`` queries through one automaton.

    Returns ``(outcomes, executed, executed_hits, reused)``: the
    per-query hit lists, the number of accesses actually executed, how
    many of those hit, and the number of setup accesses *skipped* via
    snapshot reuse.  Each query is an independent fresh-set run
    (bit-identical to calling
    :func:`count_misses_kernel`/:func:`sequence_hits` per query), but
    consecutive queries sharing a setup — the dominant shape in
    inference and distinguishing searches — replay the post-setup
    snapshot instead of re-running the setup, which is where the batch
    win on top of amortized call overhead comes from.
    """
    ways = compiled.ways
    outcomes: list[list[bool]] = []
    executed = 0
    executed_hits = 0
    reused = 0
    prev_setup: tuple[int, ...] | None = None
    base_way_of: dict[int, int] = {}
    base_tag_of: list[int] = [0] * ways
    base_state = 0
    for setup, probe in queries:
        setup_key = tuple(setup)
        if setup_key != prev_setup:
            base_way_of = {}
            base_tag_of = [0] * ways
            base_state, setup_hits = _run_blocks(
                compiled, setup, base_way_of, base_tag_of, 0
            )
            prev_setup = setup_key
            executed += len(setup_key)
            executed_hits += setup_hits
        else:
            reused += len(setup_key)
        way_of = dict(base_way_of)
        tag_of = list(base_tag_of)
        hits: list[bool] = []
        _run_blocks(compiled, probe, way_of, tag_of, base_state, hits)
        executed += len(hits)
        executed_hits += sum(hits)
        outcomes.append(hits)
    return outcomes, executed, executed_hits, reused


def _batch_outcomes(
    compiled: CompiledPolicy,
    queries: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> list[list[bool]]:
    """Run a batch — vectorized when possible — and flush its counters.

    The vector engine's accounting tuple is definitionally identical to
    the scalar batch's (same chunking-by-consecutive-setup rule), so the
    ``kernel.*`` counters do not depend on which engine ran; only the
    ``kernel.vector.*`` namespace reveals the difference.  The trie
    planner takes the batch first when its gates pass — its *results*
    are still bit-identical, but it executes strictly fewer accesses
    (the skipped ones are reported as ``kernel.trie.reused_accesses``;
    see OBSERVABILITY.md for the relaxed parity contract).
    """
    planned = trie.plan_outcomes(compiled, queries)
    if planned is not None:
        outcomes, executed, executed_hits = planned
        _note_kernel_call("batch", executed, executed_hits, executed - executed_hits)
        return outcomes
    result = vector.batch_outcomes(compiled, queries)
    if result is None:
        result = _run_batch(compiled, queries)
    outcomes, executed, executed_hits, reused = result
    _flush_batch(executed, executed_hits, reused)
    return outcomes


def _flush_batch(executed: int, executed_hits: int, reused: int) -> None:
    _note_kernel_call("batch", executed, executed_hits, executed - executed_hits)
    if reused:
        obs_metrics.DEFAULT.incr("kernel.setup_reused", reused)


def count_misses_batch(
    compiled: CompiledPolicy,
    queries: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> list[int]:
    """Probe miss counts of many ``(setup, probe)`` queries, in order.

    One metrics flush covers the whole batch; the counts themselves are
    bit-identical to per-query :func:`count_misses_kernel` calls.  On
    the vector path the per-access outcomes are summed per lane in
    numpy and never materialize as Python lists.  A prefix-redundant
    batch is taken by the trie planner first (:mod:`repro.kernels.trie`),
    which executes each shared ``setup ‖ probe`` prefix exactly once.
    """
    planned = trie.plan_miss_counts(compiled, queries)
    if planned is not None:
        counts, executed, executed_hits = planned
        _note_kernel_call("batch", executed, executed_hits, executed - executed_hits)
        return counts
    result = vector.batch_miss_counts(compiled, queries)
    if result is None:
        outcomes, executed, executed_hits, reused = _run_batch(compiled, queries)
        counts = [len(hits) - sum(hits) for hits in outcomes]
    else:
        counts, executed, executed_hits, reused = result
    _flush_batch(executed, executed_hits, reused)
    return counts


def sequence_hits_batch(
    compiled: CompiledPolicy,
    queries: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> list[tuple[bool, ...]]:
    """Per-access outcomes of many ``(setup, probe)`` queries, in order.

    Bit-identical to per-query :func:`sequence_hits` calls; one metrics
    flush covers the batch.
    """
    outcomes = _batch_outcomes(compiled, queries)
    return [tuple(hits) for hits in outcomes]


def sequence_hits(
    compiled: CompiledPolicy, setup: Sequence[int], probe: Sequence[int]
) -> tuple[bool, ...]:
    """Per-access hit/miss outcome of ``probe`` after ``setup``."""
    way_of: dict[int, int] = {}
    tag_of = [0] * compiled.ways
    state, setup_hits = _run_blocks(compiled, setup, way_of, tag_of, 0)
    hits: list[bool] = []
    _run_blocks(compiled, probe, way_of, tag_of, state, hits)
    probe_hits = sum(hits)
    total = len(setup) + len(hits)
    total_hits = setup_hits + probe_hits
    _note_kernel_call("set", total, total_hits, total - total_hits)
    return tuple(hits)


def simulate_sequence(
    compiled: CompiledPolicy, blocks: Sequence[int]
) -> list[SetAccessResult]:
    """Replay a block-id sequence from a fresh set; full per-access detail.

    Returns the same :class:`~repro.cache.set.SetAccessResult` values an
    interpreted :class:`~repro.cache.set.CacheSet` produces, eviction
    order included — the equivalence the property suite asserts.
    """
    ways = compiled.ways
    way_of: dict[int, int] = {}
    tag_of = [0] * ways
    state = 0
    results: list[SetAccessResult] = []
    for block in blocks:
        way = way_of.get(block)
        if way is not None:
            nxt = compiled.hit_next[state * ways + way]
            state = nxt if nxt >= 0 else compiled.expand_hit(state, way)
            results.append(SetAccessResult(hit=True, way=way, evicted_tag=None))
            continue
        filled = len(way_of)
        if filled < ways:
            way_of[block] = filled
            tag_of[filled] = block
            nxt = compiled.fill_next[state * ways + filled]
            state = nxt if nxt >= 0 else compiled.expand_fill(state, filled)
            results.append(SetAccessResult(hit=False, way=filled, evicted_tag=None))
        else:
            victim = compiled.miss_victim[state]
            if victim >= 0:
                nxt = compiled.miss_next[state]
            else:
                victim, nxt = compiled.expand_miss(state)
            evicted = tag_of[victim]
            del way_of[evicted]
            tag_of[victim] = block
            way_of[block] = victim
            state = nxt
            results.append(SetAccessResult(hit=False, way=victim, evicted_tag=evicted))
    total_hits = sum(1 for outcome in results if outcome.hit)
    _note_kernel_call(
        "set",
        len(results),
        total_hits,
        len(results) - total_hits,
        sum(1 for outcome in results if outcome.evicted_tag is not None),
    )
    return results


# -- whole-cache trace runs --------------------------------------------------

def _decompose_params(config: CacheConfig) -> tuple[int, int, bool, int]:
    return (
        config.offset_bits,
        config.index_bits,
        config.index_hash != "bits",
        config.num_sets - 1,
    )


def simulate_trace_kernel(
    trace: Trace,
    config: CacheConfig,
    policy: "str | PolicyFactory",
    seed: int = 0,
) -> CacheStats:
    """Compiled whole-cache run of a read trace; bit-identical statistics.

    ``seed`` is accepted for signature parity but unused: a compilable
    policy is deterministic and never draws from the cache rng.  Raises
    :class:`~repro.errors.KernelUnsupported` for non-compilable policies
    (use :func:`simulate_trace_direct`) or on a mid-run budget blow.
    """
    factory = policy if isinstance(policy, PolicyFactory) else PolicyFactory(policy)
    params = tuple(sorted(factory.params.items()))
    compiled = compiled_for_factory(factory.name, params, config.ways)
    if compiled is None:
        raise KernelUnsupported(
            f"policy {factory.name!r} has no compiled automaton at "
            f"{config.ways} ways"
        )
    try:
        return _simulate_trace_compiled(trace, config, compiled, factory.name)
    except KernelUnsupported:
        automaton.mark_factory_unsupported(factory.name, params, config.ways)
        raise


def _simulate_trace_compiled(
    trace: Trace, config: CacheConfig, compiled: CompiledPolicy, policy: str = "?"
) -> CacheStats:
    if obs_trace.ACTIVE is None:
        # No tracer wants kernel.run / per-state detail: the lock-step
        # vector engine may take the whole trace.  Counters stay
        # mode-invariant — the same "trace" flush either way.
        stats = vector.simulate_trace_lockstep(trace, config, compiled)
        if stats is not None:
            _note_kernel_call(
                "trace", stats.accesses, stats.hits, stats.misses, stats.evictions
            )
            return stats
    offset_bits, index_bits, hashed, set_mask = _decompose_params(config)
    num_sets = config.num_sets
    ways = config.ways
    tag_shift = offset_bits + index_bits
    states = [0] * num_sets
    way_ofs: list[dict[int, int]] = [{} for _ in range(num_sets)]
    tag_ofs: list[list[int]] = [[0] * ways for _ in range(num_sets)]
    hit_next = compiled.hit_next
    fill_next = compiled.fill_next
    miss_victim = compiled.miss_victim
    miss_next = compiled.miss_next
    expand_hit = compiled.expand_hit
    expand_fill = compiled.expand_fill
    expand_miss = compiled.expand_miss
    hits = misses = evictions = 0
    # Per-state visit counts (flat array indexed by state id), collected
    # only when a (cold-event) tracer is watching: the extra list write
    # per access is measurable, and without a tracer the aggregates above
    # are all a metrics snapshot reports anyway.
    tracer = obs_trace.ACTIVE
    visits: list[int] | None = [] if tracer is not None else None
    addresses = trace.addresses
    for address in addresses:
        if hashed:
            tag = address >> offset_bits
            set_index = 0
            if index_bits:
                remaining = tag
                while remaining:
                    set_index ^= remaining & set_mask
                    remaining >>= index_bits
        else:
            set_index = (address >> offset_bits) & set_mask
            tag = address >> tag_shift
        way_of = way_ofs[set_index]
        state = states[set_index]
        if visits is not None:
            if state >= len(visits):
                visits.extend([0] * (state + 1 - len(visits)))
            visits[state] += 1
        way = way_of.get(tag)
        if way is not None:
            hits += 1
            nxt = hit_next[state * ways + way]
            states[set_index] = nxt if nxt >= 0 else expand_hit(state, way)
            continue
        misses += 1
        tag_of = tag_ofs[set_index]
        filled = len(way_of)
        if filled < ways:
            way_of[tag] = filled
            tag_of[filled] = tag
            nxt = fill_next[state * ways + filled]
            states[set_index] = nxt if nxt >= 0 else expand_fill(state, filled)
        else:
            evictions += 1
            victim = miss_victim[state]
            if victim >= 0:
                nxt = miss_next[state]
            else:
                victim, nxt = expand_miss(state)
            del way_of[tag_of[victim]]
            tag_of[victim] = tag
            way_of[tag] = victim
            states[set_index] = nxt
    _note_kernel_call("trace", len(addresses), hits, misses, evictions)
    if tracer is not None and visits is not None:
        states_visited = sum(1 for count in visits if count)
        metrics = obs_metrics.DEFAULT
        metrics.incr("kernel.states_visited", states_visited)
        for count in visits:
            if count:
                metrics.observe("kernel.state_visits", count)
        tracer.emit(
            "kernel.run",
            mode="trace",
            policy=policy,
            accesses=len(addresses),
            hits=hits,
            misses=misses,
            evictions=evictions,
            states=states_visited,
        )
    return CacheStats(
        accesses=len(addresses),
        hits=hits,
        misses=misses,
        evictions=evictions,
        fills=misses,
    )


def simulate_trace_direct(
    trace: Trace,
    config: CacheConfig,
    policy: "str | PolicyFactory",
    seed: int = 0,
) -> CacheStats:
    """Inlined whole-cache run with real policy objects (direct mode).

    Covers policies the automaton cannot (randomized, set-dueling): the
    policies, their shared context and the rng are constructed exactly
    as :class:`~repro.cache.cache.Cache` constructs them, and driven in
    the same call order, so every rng draw and shared-state update lands
    identically — only the interpreter's per-access object overhead is
    gone.
    """
    factory = policy if isinstance(policy, PolicyFactory) else PolicyFactory(policy)
    offset_bits, index_bits, hashed, set_mask = _decompose_params(config)
    num_sets = config.num_sets
    ways = config.ways
    tag_shift = offset_bits + index_bits
    rng = SeededRng(seed)
    shared = factory.create_shared(num_sets, rng.fork("shared"))
    policies = [
        factory.build(ways, set_index, shared, rng) for set_index in range(num_sets)
    ]
    way_ofs: list[dict[int, int]] = [{} for _ in range(num_sets)]
    tag_ofs: list[list[int]] = [[0] * ways for _ in range(num_sets)]
    hits = misses = evictions = 0
    addresses = trace.addresses
    for address in addresses:
        if hashed:
            tag = address >> offset_bits
            set_index = 0
            if index_bits:
                remaining = tag
                while remaining:
                    set_index ^= remaining & set_mask
                    remaining >>= index_bits
        else:
            set_index = (address >> offset_bits) & set_mask
            tag = address >> tag_shift
        way_of = way_ofs[set_index]
        way = way_of.get(tag)
        set_policy = policies[set_index]
        if way is not None:
            hits += 1
            set_policy.touch(way)
            continue
        misses += 1
        tag_of = tag_ofs[set_index]
        filled = len(way_of)
        if filled < ways:
            way_of[tag] = filled
            tag_of[filled] = tag
            set_policy.fill(filled)
        else:
            evictions += 1
            victim = set_policy.evict()
            del way_of[tag_of[victim]]
            tag_of[victim] = tag
            way_of[tag] = victim
            set_policy.fill(victim)
    _note_kernel_call("direct", len(addresses), hits, misses, evictions)
    tracer = obs_trace.ACTIVE
    if tracer is not None:
        tracer.emit(
            "kernel.run",
            mode="direct",
            policy=factory.name,
            accesses=len(addresses),
            hits=hits,
            misses=misses,
            evictions=evictions,
        )
    return CacheStats(
        accesses=len(addresses),
        hits=hits,
        misses=misses,
        evictions=evictions,
        fills=misses,
    )


def try_simulate_trace(
    trace: Trace,
    config: CacheConfig,
    policy: "str | PolicyFactory",
    seed: int = 0,
) -> CacheStats | None:
    """Fast-path a whole-trace simulation if the kernel may run.

    Returns ``None`` when the caller must use the interpreter: the
    kernel is globally disabled, or an active tracer wants per-access
    ``cache.*`` events (the interpreter is the instrumented path; see
    OBSERVABILITY.md).  Metrics-only observers and cold-event tracers
    keep the fast path — the engines flush aggregate ``kernel.*``
    counters per call and emit ``kernel.run`` summaries under a tracer.
    Otherwise returns statistics bit-identical to the interpreter's,
    choosing the compiled automaton when the policy supports it and
    direct mode when it does not.
    """
    from repro.kernels import kernel_allowed

    if not kernel_allowed():
        return None
    factory = policy if isinstance(policy, PolicyFactory) else PolicyFactory(policy)
    params = tuple(sorted(factory.params.items()))
    compiled = compiled_for_factory(factory.name, params, config.ways)
    if compiled is not None:
        try:
            return _simulate_trace_compiled(trace, config, compiled, factory.name)
        except KernelUnsupported:
            # Budget blown mid-run: remember, and re-run in direct mode.
            automaton.mark_factory_unsupported(factory.name, params, config.ways)
    return simulate_trace_direct(trace, config, factory, seed)
