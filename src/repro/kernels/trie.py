"""Prefix-trie query planner: execute each shared access prefix once.

The batched engines (:func:`repro.kernels.count_misses_batch` /
:func:`repro.kernels.sequence_hits_batch`) execute every ``(setup,
probe)`` query of a batch end-to-end, reusing work only for
*consecutive, bit-identical* setups.  But inference-shaped batches are
far more redundant than that: the establishment prefix is shared by
every position measurement, verification windows replay nested prefixes
of one another, and fresh-block suffixes extend each other one access at
a time.  Concatenated as ``setup ‖ probe`` block sequences, such a batch
forms a *radix trie* in which each node is one access — and since the
automaton run over any sequence prefix is deterministic, every trie node
needs to be executed exactly **once**, not once per query that contains
it.  This planner turns O(Σ|query|) executed accesses into O(|trie|).

The trie is never materialized as linked nodes.  Sorting the sequences
lexicographically makes prefix sharing *adjacent*: consecutive sorted
sequences share exactly their longest common prefix (LCP), and the trie
nodes are precisely the suffix accesses beyond each LCP.  The planner
therefore

1. sorts the concatenated sequences (stable, so duplicate queries
   collapse entirely),
2. computes per-neighbour LCPs (vectorized over a padded block matrix
   when numpy is present),
3. gates on the measured **sharing ratio** ``Σ|query| / |trie|`` —
   a batch with no prefix redundancy is not worth planning and falls
   back to the batched engines (counted as ``kernel.trie.fallbacks``),
4. executes only the deduplicated suffixes, and
5. replays per-query answers from the shared traversal: the per-depth
   outcome and cumulative-miss arrays along the current trie path are
   valid for *every* query that path passes through, so a miss count is
   one subtraction and an outcome list is one slice.

Two execution engines, bit-identical to each other and to the batched
engines:

* **Scalar replay** (pure Python, numpy-free, lazy-expansion capable):
  a depth-first walk of the sorted sequences.  Instead of snapshotting
  ``(state, way_of, tag_of)`` at every branch point, it keeps one
  mutable set image plus a constant-size *undo record* per depth — a
  hit restores nothing, a fill or eviction restores one way — so
  backtracking from one sorted sequence to the next costs O(depth
  difference), and the per-node work matches the scalar engine's.
* **Level-frontier lanes** (numpy): all trie nodes at one depth advance
  as lanes of a single fused-gather step through the *same*
  ``(state, event)`` tables the vector engine builds
  (:meth:`repro.kernels.vector.VectorTables.fused`).  A node's parent
  at depth ``d-1`` is the nearest preceding sorted row that created a
  node there, found with one ``searchsorted`` per level; gathering the
  parents' lane states *is* the branch-point snapshot.  Chosen when the
  trie is wide enough for per-level numpy dispatch to amortize.

Ground rules (matching :mod:`repro.kernels.vector`):

* numpy is optional — the scalar replay is a full planner, not a stub;
* fallback is always legal — every ``None`` return means "use the
  batched engines", and the planner is an optimization, never a
  capability;
* engagement is observable — ``kernel.trie.plans`` / ``.nodes`` /
  ``.reused_accesses`` / ``.fallbacks`` (and ``.vector_plans`` for the
  frontier engine), while the logical ``kernel.accesses = hits +
  misses`` invariant continues to hold over the accesses actually
  executed (see OBSERVABILITY.md for the relaxed parity contract).
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import contextmanager
from itertools import chain

from repro.kernels import vector
from repro.obs import metrics as obs_metrics

try:  # numpy is an optional extra (pip install repro[vector])
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

__all__ = [
    "MIN_QUERIES",
    "MIN_SHARE_RATIO",
    "plan_miss_counts",
    "plan_outcomes",
    "set_trie_enabled",
    "trie_allowed",
    "trie_disabled",
    "trie_enabled",
]

#: Below this many queries a batch stays on the batched engines: the
#: sort/LCP bookkeeping cannot pay for itself, and tiny batches are the
#: adaptive (unbatchable) measurement shape anyway.
MIN_QUERIES = 8

#: Minimum measured sharing ratio ``total accesses / trie nodes``.  At
#: 1.0 the trie is the batch (no sharing); below this bar planning would
#: add sort overhead on top of full execution, so the planner declines
#: (counted as a ``kernel.trie.fallbacks``).
MIN_SHARE_RATIO = 1.2

#: Refuse padded sort matrices beyond this many cells; the Python
#: LCP/replay path takes over (same gate value as the vector engine's).
MAX_MATRIX_CELLS = 64_000_000

#: The frontier engine needs enough nodes, and enough nodes *per level*
#: (= nodes / max depth), for per-level numpy dispatch to amortize; a
#: chain-shaped trie runs faster under the scalar replay.
MIN_VECTOR_NODES = 256
MIN_AVG_FRONTIER = 8

_ENABLED = True


def trie_enabled() -> bool:
    """True when the planner may be used (process-wide switch)."""
    return _ENABLED


def set_trie_enabled(enabled: bool) -> None:
    """Globally enable or disable the planner (batched engines stay)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def trie_disabled():
    """Temporarily force the batched engines (tests, A/B benchmarks)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def trie_allowed() -> bool:
    """True when the planner may run right now.

    Unlike the vector engine there is no numpy requirement: the scalar
    replay is a complete planner implementation.
    """
    return _ENABLED


def _note_fallback() -> None:
    obs_metrics.DEFAULT.incr("kernel.trie.fallbacks")


def _note_plan(nodes: int, reused: int, vectorized: bool) -> None:
    metrics = obs_metrics.DEFAULT
    metrics.incr("kernel.trie.plans")
    metrics.incr("kernel.trie.nodes", nodes)
    if reused:
        metrics.incr("kernel.trie.reused_accesses", reused)
    if vectorized:
        metrics.incr("kernel.trie.vector_plans")


# -- planning ----------------------------------------------------------------

def plan_miss_counts(compiled, queries):
    """Plan + execute a batch for per-query probe miss counts.

    Returns ``(counts, executed, executed_hits)`` — counts in request
    order, plus the accounting the caller flushes as one ``"batch"``
    kernel call — or ``None`` when the batch should stay on the batched
    engines (planner disabled, too few queries, or sharing below
    :data:`MIN_SHARE_RATIO`).
    """
    return _plan(compiled, queries, want_outcomes=False)


def plan_outcomes(compiled, queries):
    """Plan + execute a batch for per-query hit/miss outcome lists.

    Same contract and accounting as :func:`plan_miss_counts`, with
    ``outcomes[q]`` a list of bools covering query ``q``'s probe.
    """
    return _plan(compiled, queries, want_outcomes=True)


def _plan(compiled, queries, want_outcomes):
    if not trie_allowed() or len(queries) < MIN_QUERIES:
        return None
    count = len(queries)
    splits = [len(setup) for setup, _ in queries]
    total = sum(split + len(probe) for split, (_, probe) in zip(splits, queries))
    if not total:
        return None  # all-empty batch: nothing to share
    layout = _matrix_layout(queries, count, total) if _np is not None else None
    seqs = None
    if layout is not None:
        order, lcps, mat, lengths, block_lo, block_hi = layout
    else:
        # No numpy (or ids outside int64, or an oversized matrix): sort
        # tuple keys and scan neighbouring pairs for their LCP.
        seqs = [tuple(setup) + tuple(probe) for setup, probe in queries]
        order = sorted(range(count), key=seqs.__getitem__)
        lcps = [0] * count
        prev = seqs[order[0]]
        for position in range(1, count):
            cur = seqs[order[position]]
            bound = min(len(prev), len(cur))
            shared = 0
            while shared < bound and prev[shared] == cur[shared]:
                shared += 1
            lcps[position] = shared
            prev = cur
        mat = lengths = None
        block_lo = block_hi = 0
    nodes = total - sum(lcps)
    if total < MIN_SHARE_RATIO * nodes:
        _note_fallback()
        return None
    tables = None
    if (
        mat is not None
        and vector.vector_allowed()
        and nodes >= MIN_VECTOR_NODES
        and nodes >= MIN_AVG_FRONTIER * mat.shape[1]
        and block_lo >= 0
        and block_hi < vector._MAX_BLOCK
    ):
        tables = vector.ensure_tables(compiled)
    if tables is not None:
        answers, executed_hits = _run_frontier(
            tables, mat, lengths, lcps, order, splits, want_outcomes
        )
    else:
        if seqs is None:
            # The matrix layout ran but the frontier gates said no:
            # rehydrate per-row sequences for the replay from the sorted
            # matrix (tolist is one C pass; pad cells are sliced away).
            rows, trims = mat.tolist(), lengths.tolist()
            seqs = [None] * count
            for position, index in enumerate(order):
                seqs[index] = rows[position][: trims[position]]
        answers, executed_hits = _replay_scalar(
            compiled, seqs, order, lcps, splits, want_outcomes
        )
    _note_plan(nodes, total - nodes, vectorized=tables is not None)
    return answers, nodes, executed_hits


def _matrix_layout(queries, count, total):
    """Sorted padded block matrix + per-neighbour LCPs, all in numpy.

    Returns ``(order, lcps, mat, lengths, block_lo, block_hi)`` —
    ``order[position]`` the original index of sorted row ``position``,
    ``lcps`` aligned with sorted positions (``lcps[0] == 0``), ``mat``
    the ``(count, width)`` int64 matrix in sorted row order — or
    ``None`` when a block id overflows int64 or the matrix would be too
    large, in which case the caller sorts tuple keys instead.

    The sort never touches Python tuples: rows are mapped through the
    order-preserving int64 -> uint64 bias, serialized big-endian, and
    argsorted as fixed-width byte strings — lexicographic block order
    with the pad value (one below the smallest block) ranking a shorter
    sequence before its extensions, exactly like tuple comparison.
    """
    np = _np
    width = max(len(setup) + len(probe) for setup, probe in queries)
    if count * width > MAX_MATRIX_CELLS:
        return None
    try:
        flat = np.fromiter(
            chain.from_iterable(
                chain(setup, probe) for setup, probe in queries
            ),
            dtype=np.int64,
            count=total,
        )
    except (OverflowError, ValueError):
        return None
    block_lo = int(flat.min())
    block_hi = int(flat.max())
    if block_lo == -(1 << 63):
        return None  # no room to pad below the smallest block
    lengths = np.fromiter(
        (len(setup) + len(probe) for setup, probe in queries),
        dtype=np.int64,
        count=count,
    )
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    col = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], lengths)
    row = np.repeat(np.arange(count, dtype=np.int64), lengths)
    mat = np.full((count, width), block_lo - 1, dtype=np.int64)
    mat[row, col] = flat
    keys = np.ascontiguousarray(
        (mat.view(np.uint64) ^ np.uint64(1 << 63)).astype(">u8")
    ).view(f"V{8 * width}")
    order_arr = np.argsort(keys.ravel(), kind="stable")
    mat = mat[order_arr]
    lengths = lengths[order_arr]
    # First mismatch between neighbouring sorted rows; the sentinel
    # column catches fully identical (padded) rows.  Padding cannot
    # fake agreement past a row's end: the LCP is clipped to both
    # lengths.
    neq = mat[1:] != mat[:-1]
    sentinel = np.ones((count - 1, 1), dtype=bool)
    first = np.concatenate([neq, sentinel], axis=1).argmax(axis=1)
    lcp = np.minimum(first, np.minimum(lengths[1:], lengths[:-1]))
    lcps = [0]
    lcps.extend(lcp.tolist())
    return order_arr.tolist(), lcps, mat, lengths, block_lo, block_hi


# -- scalar replay -----------------------------------------------------------

def _replay_scalar(compiled, seqs, order, lcps, splits, want_outcomes):
    """Depth-first replay of the sorted sequences with per-depth undo.

    Executes exactly the trie's node accesses: each sorted sequence
    backtracks to its LCP with the previous one (undoing one access per
    popped depth) and runs only its new suffix.  The per-depth outcome
    (``hits_path``) and cumulative-miss (``cum``) arrays along the
    current path answer every query whose sequence is the current path,
    shared prefix included.  Per-access rules and lazy expansion match
    the scalar engine's ``_run_blocks`` exactly.
    """
    ways = compiled.ways
    hit_next = compiled.hit_next
    fill_next = compiled.fill_next
    miss_victim = compiled.miss_victim
    miss_next = compiled.miss_next
    way_of: dict[int, int] = {}
    tag_of = [-1] * ways
    width = max(len(seq) for seq in seqs)
    path_states = [0] * width
    # Undo record per depth: way written by the access (-1 for hits,
    # which change only the state) and the tag it displaced (-1 for cold
    # fills).  Restoring a record exactly inverts the access given every
    # deeper one is already undone.
    undo_ways = [0] * width
    undo_tags = [0] * width
    hits_path = [False] * width
    cum = [0] * (width + 1)
    answers: list = [None] * len(seqs)
    depth = 0
    executed_hits = 0
    for position, index in enumerate(order):
        seq = seqs[index]
        keep = lcps[position]
        for d in range(depth - 1, keep - 1, -1):
            way = undo_ways[d]
            if way >= 0:
                old = undo_tags[d]
                del way_of[tag_of[way]]
                tag_of[way] = old
                if old >= 0:
                    way_of[old] = way
        state = path_states[keep - 1] if keep else 0
        for d in range(keep, len(seq)):
            block = seq[d]
            way = way_of.get(block)
            if way is not None:
                nxt = hit_next[state * ways + way]
                state = nxt if nxt >= 0 else compiled.expand_hit(state, way)
                undo_ways[d] = -1
                hits_path[d] = True
                cum[d + 1] = cum[d]
                executed_hits += 1
            else:
                filled = len(way_of)
                if filled < ways:
                    way_of[block] = filled
                    tag_of[filled] = block
                    nxt = fill_next[state * ways + filled]
                    state = nxt if nxt >= 0 else compiled.expand_fill(state, filled)
                    undo_ways[d] = filled
                    undo_tags[d] = -1
                else:
                    victim = miss_victim[state]
                    if victim >= 0:
                        nxt = miss_next[state]
                    else:
                        victim, nxt = compiled.expand_miss(state)
                    old = tag_of[victim]
                    del way_of[old]
                    tag_of[victim] = block
                    way_of[block] = victim
                    state = nxt
                    undo_ways[d] = victim
                    undo_tags[d] = old
                hits_path[d] = False
                cum[d + 1] = cum[d] + 1
            path_states[d] = state
        depth = len(seq)
        split = splits[index]
        if want_outcomes:
            answers[index] = hits_path[split:depth]
        else:
            answers[index] = cum[depth] - cum[split]
    return answers, executed_hits


# -- vectorized level frontiers ----------------------------------------------

def _run_frontier(tables, mat, lengths, lcps, order, splits, want_outcomes):
    """Advance each trie level's node frontier as lanes of one gather.

    The frontier at depth ``d`` is the sorted rows with ``lcp <= d <
    len`` — exactly the rows that *create* a trie node there.  A node's
    parent at depth ``d - 1`` is the nearest preceding row in the
    ``d - 1`` frontier (the row that created the shared parent node);
    gathering the parents' ``(state, tags, filled)`` lanes is the
    planner's branch-point snapshot.  Each level then takes one step
    through the vector engine's fused ``(state, event)`` tables — the
    same event encoding as :func:`repro.kernels.vector._run_lanes`.
    """
    np = _np
    ways = tables.ways
    span = 2 * ways + 1
    fused_next, fused_way = tables.fused()
    count, width = mat.shape
    lcps_vec = np.asarray(lcps, dtype=np.int64)
    depth_grid = np.arange(width, dtype=np.int64)
    valid = depth_grid < lengths[:, None]
    created = valid & (depth_grid >= lcps_vec[:, None])
    hits_grid = np.zeros((count, width), dtype=bool)
    rows_prev = states_prev = tags_prev = filled_prev = None
    executed_hits = 0
    for d in range(width):
        rows = created[:, d].nonzero()[0]
        if not rows.size:
            break  # no nodes here => no sequence reaches this depth
        if d == 0:
            states = np.zeros(rows.size, dtype=np.int32)
            tags = np.full((rows.size, ways), -1, dtype=np.int64)
            filled = np.zeros(rows.size, dtype=np.int32)
        else:
            parents = np.searchsorted(rows_prev, rows, side="right") - 1
            states = states_prev[parents]
            tags = tags_prev[parents]  # fancy index: already a copy
            filled = filled_prev[parents]
        blocks = mat[rows, d]
        eq = tags == blocks[:, None]
        way_all = eq.argmax(axis=1)
        hit = eq[np.arange(rows.size), way_all]
        event = np.where(hit, way_all, ways + np.minimum(filled, ways))
        index = states * span + event
        states = fused_next[index]
        miss_rows = (~hit).nonzero()[0]
        if miss_rows.size:
            tags[miss_rows, fused_way[index[miss_rows]]] = blocks[miss_rows]
            filled = filled + (~hit & (filled < ways))
        hits_grid[rows, d] = hit
        executed_hits += int(np.count_nonzero(hit))
        rows_prev, states_prev, tags_prev, filled_prev = rows, states, tags, filled
    # A row's shared-prefix outcomes are its trie ancestors': cell
    # (row, d) takes the value computed at the last row <= it that
    # *created* the node at depth d (rows own the cells they created;
    # row 0 created its whole sequence, so every valid cell has a
    # creator).  A running maximum over creator row ids turns the whole
    # propagation into one accumulate plus one gather.
    row_ids = np.arange(count)
    creator = np.where(created, row_ids[:, None], 0)
    np.maximum.accumulate(creator, axis=0, out=creator)
    hits_grid = hits_grid[creator, depth_grid[None, :]]
    cum = np.cumsum(~hits_grid & valid, axis=1)
    answers: list = [None] * count
    if want_outcomes:
        for position in range(count):
            index = order[position]
            split = splits[index]
            answers[index] = hits_grid[position, split : int(lengths[position])].tolist()
        return answers, executed_hits
    splits_sorted = np.fromiter(
        (splits[order[position]] for position in range(count)),
        dtype=np.int64,
        count=count,
    )
    total_m = np.where(lengths > 0, cum[row_ids, np.maximum(lengths - 1, 0)], 0)
    setup_m = np.where(
        splits_sorted > 0, cum[row_ids, np.maximum(splits_sorted - 1, 0)], 0
    )
    counts_sorted = (total_m - setup_m).tolist()
    for position in range(count):
        answers[order[position]] = int(counts_sorted[position])
    return answers, executed_hits
