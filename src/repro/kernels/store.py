"""On-disk artifact store for compiled policy automata.

BFS-compiling an automaton is the kernel's dominant fixed cost — full
8-way LRU interns 40 320 states of pure-Python cloning — and the
in-memory caches in :mod:`repro.kernels.automaton` are per-process, so
every CLI invocation, bench, and ``--jobs N`` worker used to pay it
again.  This module persists *complete* automata (every transition
expanded) to a repo-local ``.repro-cache/`` directory so the cost is
paid once per machine instead of once per process:

* **Keys** — :class:`StoreKey` canonicalizes ``(kind, identity, ways,
  budget, schema_version)`` into a stable string; the file name is a
  digest of it, so params tuples and permutation vectors of any size
  key cleanly.  Bumping :data:`SCHEMA_VERSION` orphans old artifacts
  (they are ignored and cleaned by :func:`clear`), never misreads them.
* **Format** — a magic tag, a length-prefixed JSON header (schema, key,
  ways, budget, num_states, per-table lengths, payload checksum), then
  the four flat tables as raw ``array('i')`` buffers in a fixed order.
  Writes go to a temp file in the same directory and ``os.replace`` in,
  so readers never observe a partial artifact.
* **Validation** — :func:`load` verifies magic, schema, key, lengths, a
  blake2s payload checksum, and that every transition is in range for a
  complete automaton.  Anything wrong means *recompile*: the corrupt
  file is unlinked and ``None`` returned; the store never raises into
  the kernel's compile path.

The store is consulted by ``compiled_for_factory`` / ``compiled_for_spec``
(memory -> disk -> BFS) and populated at explicit warm points — the
parallel runner's pre-resolve step, the ``repro cache warm`` CLI, and
the compile-cache bench — never on the lazy compile path, so one-shot
CLI latency is unchanged.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import mmap
import os
import struct
import tempfile
from array import array
from dataclasses import dataclass
from pathlib import Path

from repro.errors import KernelUnsupported
from repro.kernels import vector as _vector
from repro.obs import metrics as obs_metrics

__all__ = [
    "SCHEMA_VERSION",
    "StoreKey",
    "factory_key",
    "spec_key",
    "cache_dir",
    "set_cache_dir",
    "store_enabled",
    "set_store_enabled",
    "store_disabled",
    "mmap_enabled",
    "set_mmap_enabled",
    "mmap_disabled",
    "artifact_path",
    "save",
    "load",
    "ensure_persisted",
    "forget_persisted",
    "warm",
    "stats",
    "clear",
]

#: Bump on any change to the key canonicalization or file layout.  Old
#: artifacts become invisible (different subdirectory), never misread.
SCHEMA_VERSION = 1

#: First bytes of every artifact file.
MAGIC = b"RPRAUTO1"

#: Tables serialized, in on-disk order.  ``hit_next``/``fill_next`` are
#: ``num_states * ways`` long, ``miss_victim``/``miss_next`` ``num_states``.
TABLE_NAMES = ("hit_next", "fill_next", "miss_victim", "miss_next")

_ITEM = struct.calcsize("i")

#: Environment override for the cache directory (CI, shared machines).
ENV_VAR = "REPRO_CACHE_DIR"

#: Default directory name, created under the current working directory.
DEFAULT_DIRNAME = ".repro-cache"

_CACHE_DIR: Path | None = None
_ENABLED = True

#: Keys already persisted (or found on disk) this session, so warm
#: points skip the fsync + checksum work on re-runs.  Cleared by
#: :func:`forget_persisted` (and through it ``clear_compile_cache``).
_PERSISTED: set[str] = set()


@dataclass(frozen=True)
class StoreKey:
    """Canonical identity of one artifact: what was compiled, and how."""

    kind: str  #: "factory" or "spec"
    label: str  #: human-readable policy name for stats/events
    canonical: str  #: full canonical key string (embedded in the header)

    @property
    def digest(self) -> str:
        return hashlib.blake2s(self.canonical.encode()).hexdigest()[:24]

    @property
    def filename(self) -> str:
        safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in self.label)
        return f"{safe[:48]}-{self.digest}.autom"


def factory_key(name: str, params: tuple, ways: int, budget: int | None = None) -> StoreKey:
    """Key for a registry-named policy (the SimCell identity)."""
    if budget is None:
        from repro.kernels.automaton import DEFAULT_BUDGET

        budget = DEFAULT_BUDGET
    canonical = (
        f"v{SCHEMA_VERSION}|factory|{name}|{params!r}|ways={ways}|budget={budget}"
    )
    return StoreKey(kind="factory", label=name, canonical=canonical)


def spec_key(spec, budget: int | None = None) -> StoreKey:
    """Key for a permutation spec: a content digest of its vectors."""
    if budget is None:
        from repro.kernels.automaton import DEFAULT_BUDGET

        budget = DEFAULT_BUDGET
    canonical = (
        f"v{SCHEMA_VERSION}|spec|ways={spec.ways}|hit={spec.hit_perms!r}"
        f"|miss={spec.miss_perm!r}|budget={budget}"
    )
    return StoreKey(kind="spec", label="permutation-spec", canonical=canonical)


# -- directory / enablement --------------------------------------------------
def cache_dir() -> Path:
    """The artifact directory: explicit > $REPRO_CACHE_DIR > ./.repro-cache."""
    if _CACHE_DIR is not None:
        return _CACHE_DIR
    env = os.environ.get(ENV_VAR)
    if env:
        return Path(env)
    return Path.cwd() / DEFAULT_DIRNAME


def set_cache_dir(path: str | os.PathLike | None) -> None:
    """Override the artifact directory (None restores the default rule)."""
    global _CACHE_DIR
    _CACHE_DIR = Path(path) if path is not None else None
    _PERSISTED.clear()


def store_enabled() -> bool:
    """True when the on-disk store may be read or written."""
    return _ENABLED


def set_store_enabled(enabled: bool) -> None:
    """Globally enable or disable the on-disk store (memory caches stay)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextlib.contextmanager
def store_disabled():
    """Temporarily bypass the disk store (cold-path benchmarks, tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


#: mmap mode: ``None`` = auto (map artifacts zero-copy), ``True``/``False``
#: force.  Mapped loads share the OS page cache across ``--jobs N``
#: workers instead of each holding a private deserialized copy; scalar
#: tables still materialize to plain lists, but lazily, on first touch.
_MMAP: bool | None = None


def mmap_enabled() -> bool:
    """True when :func:`load` should map artifacts instead of reading them."""
    if _MMAP is not None:
        return _MMAP
    return True


def set_mmap_enabled(enabled: bool | None) -> None:
    """Force mmap loading on/off; ``None`` restores the auto rule."""
    global _MMAP
    _MMAP = enabled if enabled is None else bool(enabled)


@contextlib.contextmanager
def mmap_disabled():
    """Temporarily force buffered (copying) artifact reads."""
    global _MMAP
    previous = _MMAP
    _MMAP = False
    try:
        yield
    finally:
        _MMAP = previous


def _schema_dir() -> Path:
    return cache_dir() / f"v{SCHEMA_VERSION}"


def artifact_path(key: StoreKey) -> Path:
    """Where ``key``'s artifact lives (whether or not it exists yet)."""
    return _schema_dir() / key.filename


# -- serialization -----------------------------------------------------------
def save(key: StoreKey, compiled) -> bool:
    """Persist a *complete* automaton atomically; True on success.

    The automaton is closed with ``expand_all()`` first — only complete
    tables round-trip (a ``-1`` placeholder could never be expanded by
    the frozen automaton :func:`load` rebuilds).  A policy that blows
    its budget, a read-only cache directory, or a disabled store all
    return False; persistence is an optimization, never a requirement.
    """
    if not _ENABLED:
        return False
    try:
        compiled.expand_all()
    except KernelUnsupported:
        return False
    tables = compiled.to_tables()
    payload = b"".join(tables[name].tobytes() for name in TABLE_NAMES)
    header = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "key": key.canonical,
            "kind": key.kind,
            "label": key.label,
            "ways": compiled.ways,
            "budget": compiled.budget,
            "num_states": compiled.num_states,
            "lengths": {name: len(tables[name]) for name in TABLE_NAMES},
            "checksum": hashlib.blake2s(payload).hexdigest(),
        },
        sort_keys=True,
    ).encode()
    path = artifact_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(MAGIC)
                handle.write(struct.pack(">I", len(header)))
                handle.write(header)
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
    except OSError:
        return False
    _PERSISTED.add(key.canonical)
    return True


def load(key: StoreKey):
    """Deserialize ``key``'s automaton, or None (missing/stale/corrupt).

    Every failure mode — wrong magic, truncation, schema or key
    mismatch, bad checksum, out-of-range transitions — degrades to
    "recompile": corrupt files are unlinked, stale ones left for their
    own schema, and None is returned.  Never raises into the caller.

    Two read modes.  With mmap enabled (the default) the file is mapped
    read-only and the automaton's tables become zero-copy views over the
    mapping — concurrent ``--jobs N`` workers then share one page-cache
    copy of the bytes instead of each deserializing a private one, and
    the vector engine's numpy tables alias the mapping directly.
    Otherwise the bytes are read and copied into ``array('i')`` tables
    as before.

    Concurrency: the unlink of a corrupt artifact only happens when the
    file on disk is still *the exact file we read* (same inode, size and
    mtime).  Another worker may have replaced or removed it since we
    opened it — recompiling covers us either way, and deleting their
    fresh replacement would re-introduce the race this guard closes.
    """
    if not _ENABLED:
        return None
    from repro.kernels.automaton import CompiledPolicy

    path = artifact_path(key)
    mapped = None
    try:
        with open(path, "rb") as handle:
            read_stat = os.fstat(handle.fileno())
            if mmap_enabled() and read_stat.st_size > 0:
                try:
                    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except (OSError, ValueError):
                    obs_metrics.DEFAULT.incr("kernel.mmap.fallbacks")
                    mapped = None
            blob = memoryview(mapped) if mapped is not None else handle.read()
    except OSError:
        return None

    def corrupt():
        try:
            current = os.stat(path)
        except OSError:
            return None  # already gone: another worker beat us to it
        identity = ("st_ino", "st_dev", "st_size", "st_mtime_ns")
        if any(getattr(current, f) != getattr(read_stat, f) for f in identity):
            return None  # replaced since we read it: not ours to delete
        with contextlib.suppress(OSError):
            path.unlink()
        return None

    if bytes(blob[: len(MAGIC)]) != MAGIC:
        return corrupt()
    offset = len(MAGIC)
    if len(blob) < offset + 4:
        return corrupt()
    (header_len,) = struct.unpack_from(">I", blob, offset)
    offset += 4
    try:
        header = json.loads(bytes(blob[offset : offset + header_len]))
    except ValueError:
        return corrupt()
    offset += header_len
    if not isinstance(header, dict):
        return corrupt()
    if header.get("schema") != SCHEMA_VERSION or header.get("key") != key.canonical:
        # A hash collision or a mis-filed artifact; not ours to delete.
        return None
    ways = header.get("ways")
    num_states = header.get("num_states")
    lengths = header.get("lengths")
    if (
        not isinstance(ways, int)
        or not isinstance(num_states, int)
        or ways <= 0
        or num_states <= 0
        or not isinstance(lengths, dict)
    ):
        return corrupt()
    expected = {
        "hit_next": num_states * ways,
        "fill_next": num_states * ways,
        "miss_victim": num_states,
        "miss_next": num_states,
    }
    if {name: lengths.get(name) for name in TABLE_NAMES} != expected:
        return corrupt()
    payload = blob[offset:]
    if len(payload) != sum(expected.values()) * _ITEM:
        return corrupt()
    if hashlib.blake2s(payload).hexdigest() != header.get("checksum"):
        return corrupt()
    buffers = {}
    cursor = 0
    for name in TABLE_NAMES:
        size = expected[name] * _ITEM
        chunk = payload[cursor : cursor + size]
        cursor += size
        if mapped is not None:
            buffers[name] = chunk.cast("i")
        else:
            table = array("i")
            table.frombytes(chunk)
            buffers[name] = table
    if not _tables_in_range(buffers, num_states, ways):
        return corrupt()
    budget = header.get("budget", num_states)
    if mapped is not None:
        compiled = CompiledPolicy.from_mapped(
            ways, budget, num_states, buffers, keep_alive=mapped
        )
        if _vector.available():
            compiled.vector_tables = _vector.VectorTables.from_buffers(
                ways, num_states, buffers
            )
        metrics = obs_metrics.DEFAULT
        metrics.incr("kernel.mmap.loads")
        metrics.incr("kernel.mmap.bytes", len(blob))
    else:
        compiled = CompiledPolicy.from_tables(ways, budget, num_states, buffers)
    _PERSISTED.add(key.canonical)
    return compiled


def _tables_in_range(buffers: dict, num_states: int, ways: int) -> bool:
    """Complete-automaton invariants: every transition targets a real
    state, every victim a real way.  Vectorized when numpy is present —
    this is the hot half of artifact validation."""
    if _vector.available():
        np = _vector._np
        for name in ("hit_next", "fill_next", "miss_next"):
            table = np.frombuffer(buffers[name], dtype=np.int32)
            if table.size and (
                int(table.min()) < 0 or int(table.max()) >= num_states
            ):
                return False
        victims = np.frombuffer(buffers["miss_victim"], dtype=np.int32)
        return not victims.size or (
            int(victims.min()) >= 0 and int(victims.max()) < ways
        )
    for name in ("hit_next", "fill_next", "miss_next"):
        if any(entry < 0 or entry >= num_states for entry in buffers[name]):
            return False
    return all(0 <= way < ways for way in buffers["miss_victim"])


def ensure_persisted(key: StoreKey, compiled) -> bool:
    """Persist ``compiled`` under ``key`` unless already done this session."""
    if not _ENABLED:
        return False
    if key.canonical in _PERSISTED and artifact_path(key).exists():
        return True
    return save(key, compiled)


def forget_persisted() -> None:
    """Drop the session's persisted-keys memo (files stay on disk)."""
    _PERSISTED.clear()


def warm(entries) -> list[dict]:
    """Resolve and persist a batch of named automata; per-entry report.

    ``entries`` is an iterable of ``(name, params, ways)`` triples (the
    SimCell identity).  Duplicates are warmed once.  This is the shared
    warm point behind the parallel runner's pre-resolve step and the
    ``repro cache warm`` CLI: after it returns, a forked worker (or any
    later process pointed at the same cache dir) resolves these automata
    with zero ``kernel.compile.miss``.
    """
    import time as _time

    from repro.kernels.automaton import compiled_for_factory

    report = []
    seen = set()
    for name, params, ways in entries:
        identity = (name, tuple(params), ways)
        if identity in seen:
            continue
        seen.add(identity)
        start = _time.perf_counter()
        compiled = compiled_for_factory(name, tuple(params), ways)
        if compiled is None:
            status, states = "unsupported", 0
        else:
            persisted = ensure_persisted(factory_key(name, tuple(params), ways), compiled)
            status = "persisted" if persisted else "memory-only"
            states = compiled.num_states
        report.append(
            {
                "policy": name,
                "params": dict(params),
                "ways": ways,
                "status": status,
                "states": states,
                "seconds": round(_time.perf_counter() - start, 6),
            }
        )
    return report


# -- maintenance -------------------------------------------------------------
def _sweep_paths(root: Path) -> list[Path]:
    """Artifact paths under ``root``, robust to concurrent removal.

    A ``--jobs N`` worker (or a concurrent ``repro cache clear``) may
    delete directories while we iterate; scandir then raises mid-walk.
    Snapshotting through one guarded listing keeps :func:`stats` and
    :func:`clear` race-tolerant — files that vanish afterwards are
    handled per-file.
    """
    try:
        return sorted(root.glob("v*/*.autom"))
    except OSError:
        return []


def stats() -> dict:
    """Inventory of the store: per-artifact and aggregate sizes."""
    root = cache_dir()
    entries = []
    stale = 0
    if root.is_dir():
        for path in _sweep_paths(root):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            current = path.parent.name == f"v{SCHEMA_VERSION}"
            if not current:
                stale += 1
            entries.append(
                {
                    "file": str(path.relative_to(root)),
                    "bytes": size,
                    "schema": path.parent.name,
                    "current": current,
                }
            )
    return {
        "dir": str(root),
        "schema_version": SCHEMA_VERSION,
        "enabled": _ENABLED,
        "entries": len(entries),
        "stale_entries": stale,
        "total_bytes": sum(entry["bytes"] for entry in entries),
        "artifacts": entries,
    }


def clear(stale_only: bool = False) -> int:
    """Delete artifacts (all, or only non-current schemas); returns count.

    Safe against concurrent workers: files another process already
    removed (``FileNotFoundError``) or protected (``PermissionError``)
    are skipped, and a directory listing racing a removal yields an
    empty sweep rather than an exception.
    """
    root = cache_dir()
    removed = 0
    if not root.is_dir():
        return removed
    for path in _sweep_paths(root):
        if stale_only and path.parent.name == f"v{SCHEMA_VERSION}":
            continue
        with contextlib.suppress(OSError):
            path.unlink()
            removed += 1
    try:
        subdirs = list(root.glob("v*"))
    except OSError:
        subdirs = []
    for subdir in subdirs:
        with contextlib.suppress(OSError):
            subdir.rmdir()  # only succeeds when empty
    _PERSISTED.clear()
    return removed
