"""Policy-automaton compiler: replacement policies as transition tables.

The paper's central formalism is also its best optimization: a
deterministic replacement policy managing one set is a *finite automaton*
over per-set replacement states.  The observable events are

* ``hit@w`` — an access hit the block in way ``w`` (``policy.touch``);
* ``fill@w`` — a cold fill into the invalid way ``w`` (``policy.fill``);
* ``miss`` — a miss in a full set (``policy.evict`` followed by
  ``policy.fill(victim)``).

:func:`compile_policy` enumerates reachable states by breadth-first
search from the reset state and interns them as dense integer ids, so
whole access sequences become flat list lookups instead of object method
dispatch.  Enumeration is *lazy*: a ``(state, event)`` transition is
computed (clone, apply event, intern the successor) the first time the
simulation engine needs it and memoized in the flat tables forever after,
so compiling never costs more than the states a workload actually visits.
:meth:`CompiledPolicy.expand_all` forces the classic eager BFS when the
full automaton is wanted (tests, state-space reports).

Policies outside the automaton class — randomized (``state_key() is
None``) or adaptive ones whose behaviour depends on cache-global shared
state — raise :class:`~repro.errors.KernelUnsupported`, as does blowing
the ``budget`` on reachable states; callers fall back to the interpreted
simulator, which the kernel is bit-identical to by construction.
"""

from __future__ import annotations

import weakref
from collections import deque

from repro.errors import KernelUnsupported
from repro.policies import (
    PermutationPolicy,
    PermutationSpec,
    PolicyFactory,
    ReplacementPolicy,
)

__all__ = [
    "DEFAULT_BUDGET",
    "CompiledPolicy",
    "compile_policy",
    "compiled_for",
    "compiled_for_factory",
    "compiled_for_spec",
    "mark_unsupported",
    "mark_factory_unsupported",
    "mark_spec_unsupported",
    "clear_compile_cache",
]

#: Default bound on interned states.  Large enough for every registered
#: policy at 8 ways that a workload can realistically drive (full LRU is
#: 8! = 40_320 states); small enough that a pathological policy cannot
#: consume unbounded memory before the interpreter fallback kicks in.
DEFAULT_BUDGET = 150_000


class CompiledPolicy:
    """Flat transition tables of one deterministic policy at one ways count.

    States are dense ids; id 0 is the reset state.  The tables are flat
    lists indexed ``state * ways + way`` (hits and cold fills) or
    ``state`` (full-set misses); ``-1`` marks a transition that has not
    been expanded yet.  The engine reads the tables directly — attribute
    access is hoisted out of its inner loops — and calls the ``expand_*``
    methods only on a ``-1``.
    """

    __slots__ = (
        "ways",
        "budget",
        "hit_next",
        "fill_next",
        "miss_victim",
        "miss_next",
        "_ids",
        "_policies",
    )

    def __init__(self, prototype: ReplacementPolicy, budget: int = DEFAULT_BUDGET) -> None:
        if not prototype.DETERMINISTIC:
            raise KernelUnsupported(
                f"policy {type(prototype).__name__} is randomized; "
                "the compiled kernel only covers deterministic automata"
            )
        root = prototype.clone()
        root.reset()
        key = root.state_key()
        if key is None:
            raise KernelUnsupported(
                f"policy {type(prototype).__name__} exposes no state_key; "
                "cannot enumerate its automaton"
            )
        self.ways = prototype.ways
        self.budget = budget
        self._ids: dict = {key: 0}
        self._policies: list[ReplacementPolicy] = [root]
        ways = self.ways
        self.hit_next: list[int] = [-1] * ways
        self.fill_next: list[int] = [-1] * ways
        self.miss_victim: list[int] = [-1]
        self.miss_next: list[int] = [-1]

    @property
    def num_states(self) -> int:
        """Number of states interned so far (grows with lazy expansion)."""
        return len(self._policies)

    def _intern(self, policy: ReplacementPolicy) -> int:
        key = policy.state_key()
        sid = self._ids.get(key)
        if sid is not None:
            return sid
        if len(self._policies) >= self.budget:
            raise KernelUnsupported(
                f"policy {type(policy).__name__} exceeds the kernel state "
                f"budget of {self.budget} reachable states"
            )
        sid = len(self._policies)
        self._ids[key] = sid
        self._policies.append(policy)
        ways = self.ways
        self.hit_next.extend([-1] * ways)
        self.fill_next.extend([-1] * ways)
        self.miss_victim.append(-1)
        self.miss_next.append(-1)
        return sid

    # -- lazy expansion (called by the engine on a -1 table entry) --------
    def expand_hit(self, state: int, way: int) -> int:
        """Expand and memoize the ``hit@way`` transition of ``state``."""
        successor = self._policies[state].clone()
        successor.touch(way)
        next_state = self._intern(successor)
        self.hit_next[state * self.ways + way] = next_state
        return next_state

    def expand_fill(self, state: int, way: int) -> int:
        """Expand and memoize the cold ``fill@way`` transition of ``state``."""
        successor = self._policies[state].clone()
        successor.fill(way)
        next_state = self._intern(successor)
        self.fill_next[state * self.ways + way] = next_state
        return next_state

    def expand_miss(self, state: int) -> tuple[int, int]:
        """Expand the full-set miss of ``state``: (victim way, next state).

        Mirrors :meth:`repro.cache.set.CacheSet.fill` exactly: the victim
        is chosen by ``evict`` (which may mutate state, e.g. RRIP aging)
        and the incoming block is then filled into the victim way.
        """
        successor = self._policies[state].clone()
        victim = successor.evict()
        successor.fill(victim)
        next_state = self._intern(successor)
        self.miss_victim[state] = victim
        self.miss_next[state] = next_state
        return victim, next_state

    # -- eager enumeration -------------------------------------------------
    def expand_all(self) -> int:
        """Classic eager BFS: close the automaton under every event.

        Returns the total state count.  Raises
        :class:`~repro.errors.KernelUnsupported` if the reachable space
        exceeds the budget.
        """
        ways = self.ways
        queue = deque(range(len(self._policies)))
        visited = 0
        while queue:
            state = queue.popleft()
            visited = max(visited, state)
            frontier_before = len(self._policies)
            for way in range(ways):
                if self.hit_next[state * ways + way] < 0:
                    self.expand_hit(state, way)
                if self.fill_next[state * ways + way] < 0:
                    self.expand_fill(state, way)
            if self.miss_victim[state] < 0:
                self.expand_miss(state)
            queue.extend(range(frontier_before, len(self._policies)))
        return len(self._policies)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledPolicy {type(self._policies[0]).__name__} "
            f"ways={self.ways} states={self.num_states}>"
        )


def compile_policy(
    policy_or_spec: ReplacementPolicy | PermutationSpec | str,
    ways: int | None = None,
    budget: int = DEFAULT_BUDGET,
) -> CompiledPolicy:
    """Compile a policy into its transition-table automaton.

    Accepts a policy instance, a :class:`PermutationSpec` (``ways`` taken
    from the spec), or a registry name (``ways`` required).  Raises
    :class:`~repro.errors.KernelUnsupported` for randomized policies.
    """
    if isinstance(policy_or_spec, PermutationSpec):
        prototype: ReplacementPolicy = PermutationPolicy(
            policy_or_spec.ways, policy_or_spec
        )
    elif isinstance(policy_or_spec, str):
        if ways is None:
            raise KernelUnsupported(
                f"compiling {policy_or_spec!r} by name requires ways="
            )
        from repro.policies import get

        prototype = get(policy_or_spec, ways)
    else:
        prototype = policy_or_spec
    if ways is not None and prototype.ways != ways:
        raise KernelUnsupported(
            f"policy is {prototype.ways}-way but ways={ways} was requested"
        )
    return CompiledPolicy(prototype, budget=budget)


# -- compilation caches ------------------------------------------------------
#: Per-instance cache: policy object -> its automaton.  Weak keys so
#: caching a candidate pool does not pin the policies alive; identity
#: semantics are what the identify/distinguish loops want (they reuse the
#: same candidate instances across thousands of probes).
_INSTANCE_CACHE: "weakref.WeakKeyDictionary[ReplacementPolicy, CompiledPolicy]" = (
    weakref.WeakKeyDictionary()
)

#: Unsupported-policy instances, so the KernelUnsupported probe runs once.
_INSTANCE_UNSUPPORTED: "weakref.WeakSet[ReplacementPolicy]" = weakref.WeakSet()

#: Per-name cache: (name, params, ways) -> automaton (or None when the
#: named policy is not compilable), shared by every simulation cell of a
#: grid so each process compiles a policy at most once.
_FACTORY_CACHE: dict[tuple, CompiledPolicy | None] = {}


def compiled_for(policy: ReplacementPolicy) -> CompiledPolicy | None:
    """The (cached) automaton of a policy instance, or None if unsupported."""
    cached = _INSTANCE_CACHE.get(policy)
    if cached is not None:
        return cached
    if policy in _INSTANCE_UNSUPPORTED:
        return None
    try:
        compiled = compile_policy(policy)
    except KernelUnsupported:
        _INSTANCE_UNSUPPORTED.add(policy)
        return None
    _INSTANCE_CACHE[policy] = compiled
    return compiled


def compiled_for_factory(
    name: str, params: tuple, ways: int
) -> CompiledPolicy | None:
    """The (cached) automaton of a named policy, or None if unsupported.

    ``params`` is the sorted item tuple a :class:`SimCell` carries; a
    spec-parameterised permutation policy hashes through its frozen spec.
    """
    key = (name, params, ways)
    if key in _FACTORY_CACHE:
        return _FACTORY_CACHE[key]
    factory = PolicyFactory(name, **dict(params))
    compiled: CompiledPolicy | None
    if not factory.deterministic:
        compiled = None
    else:
        try:
            compiled = compile_policy(
                factory.build(ways, set_index=0, shared=factory.create_shared(1))
            )
        except KernelUnsupported:
            compiled = None
    _FACTORY_CACHE[key] = compiled
    return compiled


#: Per-spec cache for inference verification, which simulates the same
#: freshly inferred spec against hundreds of probe prefixes.  None marks
#: a spec whose reachable space blew the budget mid-run.
_SPEC_CACHE: dict[PermutationSpec, CompiledPolicy | None] = {}


def compiled_for_spec(spec: PermutationSpec) -> CompiledPolicy | None:
    """The (cached) automaton of a permutation spec, or None if unsupported."""
    if spec in _SPEC_CACHE:
        return _SPEC_CACHE[spec]
    compiled = compile_policy(spec)
    _SPEC_CACHE[spec] = compiled
    return compiled


def mark_unsupported(policy: ReplacementPolicy) -> None:
    """Record that a policy blew the budget mid-run; stop retrying it."""
    _INSTANCE_CACHE.pop(policy, None)
    _INSTANCE_UNSUPPORTED.add(policy)


def mark_factory_unsupported(name: str, params: tuple, ways: int) -> None:
    """Record that a named policy blew the budget mid-run."""
    _FACTORY_CACHE[(name, params, ways)] = None


def mark_spec_unsupported(spec: PermutationSpec) -> None:
    """Record that a spec blew the budget mid-run."""
    _SPEC_CACHE[spec] = None


def clear_compile_cache() -> None:
    """Drop every cached automaton (test hygiene)."""
    _INSTANCE_CACHE.clear()
    _INSTANCE_UNSUPPORTED.clear()
    _FACTORY_CACHE.clear()
    _SPEC_CACHE.clear()
