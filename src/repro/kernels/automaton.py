"""Policy-automaton compiler: replacement policies as transition tables.

The paper's central formalism is also its best optimization: a
deterministic replacement policy managing one set is a *finite automaton*
over per-set replacement states.  The observable events are

* ``hit@w`` — an access hit the block in way ``w`` (``policy.touch``);
* ``fill@w`` — a cold fill into the invalid way ``w`` (``policy.fill``);
* ``miss`` — a miss in a full set (``policy.evict`` followed by
  ``policy.fill(victim)``).

:func:`compile_policy` enumerates reachable states by breadth-first
search from the reset state and interns them as dense integer ids, so
whole access sequences become flat list lookups instead of object method
dispatch.  Enumeration is *lazy*: a ``(state, event)`` transition is
computed (clone, apply event, intern the successor) the first time the
simulation engine needs it and memoized in the flat tables forever after,
so compiling never costs more than the states a workload actually visits.
:meth:`CompiledPolicy.expand_all` forces the classic eager BFS when the
full automaton is wanted (tests, state-space reports).

Policies outside the automaton class — randomized (``state_key() is
None``) or adaptive ones whose behaviour depends on cache-global shared
state — raise :class:`~repro.errors.KernelUnsupported`, as does blowing
the ``budget`` on reachable states; callers fall back to the interpreted
simulator, which the kernel is bit-identical to by construction.
"""

from __future__ import annotations

import time
import weakref
from collections import deque

from repro.errors import KernelUnsupported
from repro.policies import (
    PermutationPolicy,
    PermutationSpec,
    PolicyFactory,
    ReplacementPolicy,
)

__all__ = [
    "DEFAULT_BUDGET",
    "CompiledPolicy",
    "compile_policy",
    "compiled_for",
    "compiled_for_factory",
    "compiled_for_spec",
    "mark_unsupported",
    "mark_factory_unsupported",
    "mark_spec_unsupported",
    "clear_compile_cache",
]

#: Default bound on interned states.  Large enough for every registered
#: policy at 8 ways that a workload can realistically drive (full LRU is
#: 8! = 40_320 states); small enough that a pathological policy cannot
#: consume unbounded memory before the interpreter fallback kicks in.
DEFAULT_BUDGET = 150_000


class CompiledPolicy:
    """Flat transition tables of one deterministic policy at one ways count.

    States are dense ids; id 0 is the reset state.  The tables are flat
    lists indexed ``state * ways + way`` (hits and cold fills) or
    ``state`` (full-set misses); ``-1`` marks a transition that has not
    been expanded yet.  The engine reads the tables directly — attribute
    access is hoisted out of its inner loops — and calls the ``expand_*``
    methods only on a ``-1``.
    """

    __slots__ = (
        "ways",
        "budget",
        "hit_next",
        "fill_next",
        "miss_victim",
        "miss_next",
        "_ids",
        "_policies",
        "_num_states",
        "vector_tables",
    )

    def __init__(self, prototype: ReplacementPolicy, budget: int = DEFAULT_BUDGET) -> None:
        if not prototype.DETERMINISTIC:
            raise KernelUnsupported(
                f"policy {type(prototype).__name__} is randomized; "
                "the compiled kernel only covers deterministic automata"
            )
        root = prototype.clone()
        root.reset()
        key = root.state_key()
        if key is None:
            raise KernelUnsupported(
                f"policy {type(prototype).__name__} exposes no state_key; "
                "cannot enumerate its automaton"
            )
        self.ways = prototype.ways
        self.budget = budget
        self._ids: dict = {key: 0}
        self._policies: list[ReplacementPolicy] = [root]
        self._num_states = 1
        ways = self.ways
        self.hit_next: list[int] = [-1] * ways
        self.fill_next: list[int] = [-1] * ways
        self.miss_victim: list[int] = [-1]
        self.miss_next: list[int] = [-1]
        #: Numpy mirror of the tables for :mod:`repro.kernels.vector`.
        #: ``None`` = not built yet, ``False`` = tried and unsupported
        #: (budget blown / numpy absent); managed by ``vector.ensure_tables``.
        self.vector_tables = None

    @property
    def num_states(self) -> int:
        """Number of states interned so far (grows with lazy expansion)."""
        return self._num_states

    @property
    def frozen(self) -> bool:
        """True for automata rebuilt from serialized tables.

        A frozen automaton carries no policy objects, so it cannot expand
        further — which is fine, because only *complete* automata (every
        transition filled in) are ever serialized.
        """
        return not self._policies

    def is_complete(self) -> bool:
        """True when every interned state's transitions are expanded."""
        return (
            min(self.hit_next, default=-1) >= 0
            and min(self.fill_next, default=-1) >= 0
            and min(self.miss_victim, default=-1) >= 0
            and min(self.miss_next, default=-1) >= 0
        )

    def to_tables(self) -> dict:
        """Flat ``array('i')`` buffers of the transition tables.

        Only meaningful for complete automata (see
        :meth:`repro.kernels.store.save`); ``-1`` placeholders would
        deserialize into an automaton that cannot expand them.
        """
        from array import array

        return {
            "hit_next": array("i", self.hit_next),
            "fill_next": array("i", self.fill_next),
            "miss_victim": array("i", self.miss_victim),
            "miss_next": array("i", self.miss_next),
        }

    @classmethod
    def from_tables(
        cls, ways: int, budget: int, num_states: int, tables: dict
    ) -> "CompiledPolicy":
        """Rebuild a complete automaton from its serialized flat tables.

        The result is *frozen*: it has no policy objects to expand new
        states from, and never needs any — completeness means the engine
        never sees a ``-1`` entry.
        """
        compiled = cls.__new__(cls)
        compiled.ways = ways
        compiled.budget = budget
        compiled._ids = {}
        compiled._policies = []
        compiled._num_states = num_states
        compiled.vector_tables = None
        # Plain lists: exactly what the BFS path builds, so the engine's
        # inner loops are byte-for-byte the same on both origins.
        compiled.hit_next = list(tables["hit_next"])
        compiled.fill_next = list(tables["fill_next"])
        compiled.miss_victim = list(tables["miss_victim"])
        compiled.miss_next = list(tables["miss_next"])
        return compiled

    @classmethod
    def from_mapped(
        cls, ways: int, budget: int, num_states: int, buffers: dict, keep_alive=None
    ) -> "CompiledPolicy":
        """Rebuild a complete automaton over zero-copy mapped buffers.

        ``buffers`` holds int-typed buffer views (``memoryview.cast('i')``)
        of the four tables, typically backed by an ``mmap`` of the on-disk
        artifact so every worker process shares one page-cache copy.  The
        scalar engines want plain lists for their inner loops, so the list
        tables are materialized *lazily*, on first attribute access — a
        worker that only ever runs the vector engine (whose numpy views
        the store attaches separately) never deserializes them at all.
        ``keep_alive`` pins the underlying map for the automaton's lifetime.
        """
        compiled = _MappedCompiledPolicy.__new__(_MappedCompiledPolicy)
        compiled.ways = ways
        compiled.budget = budget
        compiled._ids = {}
        compiled._policies = []
        compiled._num_states = num_states
        compiled.vector_tables = None
        compiled._buffers = dict(buffers)
        compiled._keep_alive = keep_alive
        return compiled

    def _intern(self, policy: ReplacementPolicy) -> int:
        key = policy.state_key()
        sid = self._ids.get(key)
        if sid is not None:
            return sid
        if self._num_states >= self.budget:
            raise KernelUnsupported(
                f"policy {type(policy).__name__} exceeds the kernel state "
                f"budget of {self.budget} reachable states"
            )
        sid = self._num_states
        self._ids[key] = sid
        self._policies.append(policy)
        self._num_states += 1
        ways = self.ways
        self.hit_next.extend([-1] * ways)
        self.fill_next.extend([-1] * ways)
        self.miss_victim.append(-1)
        self.miss_next.append(-1)
        return sid

    # -- lazy expansion (called by the engine on a -1 table entry) --------
    def expand_hit(self, state: int, way: int) -> int:
        """Expand and memoize the ``hit@way`` transition of ``state``."""
        if not self._policies:
            raise KernelUnsupported(
                "frozen automaton hit an unexpanded transition; the "
                "serialized artifact was not complete"
            )
        successor = self._policies[state].clone()
        successor.touch(way)
        next_state = self._intern(successor)
        self.hit_next[state * self.ways + way] = next_state
        return next_state

    def expand_fill(self, state: int, way: int) -> int:
        """Expand and memoize the cold ``fill@way`` transition of ``state``."""
        if not self._policies:
            raise KernelUnsupported(
                "frozen automaton hit an unexpanded transition; the "
                "serialized artifact was not complete"
            )
        successor = self._policies[state].clone()
        successor.fill(way)
        next_state = self._intern(successor)
        self.fill_next[state * self.ways + way] = next_state
        return next_state

    def expand_miss(self, state: int) -> tuple[int, int]:
        """Expand the full-set miss of ``state``: (victim way, next state).

        Mirrors :meth:`repro.cache.set.CacheSet.fill` exactly: the victim
        is chosen by ``evict`` (which may mutate state, e.g. RRIP aging)
        and the incoming block is then filled into the victim way.
        """
        if not self._policies:
            raise KernelUnsupported(
                "frozen automaton hit an unexpanded transition; the "
                "serialized artifact was not complete"
            )
        successor = self._policies[state].clone()
        victim = successor.evict()
        successor.fill(victim)
        next_state = self._intern(successor)
        self.miss_victim[state] = victim
        self.miss_next[state] = next_state
        return victim, next_state

    # -- eager enumeration -------------------------------------------------
    def expand_all(self) -> int:
        """Classic eager BFS: close the automaton under every event.

        Returns the total state count.  Raises
        :class:`~repro.errors.KernelUnsupported` if the reachable space
        exceeds the budget.
        """
        if not self._policies:  # frozen: complete by construction
            return self._num_states
        ways = self.ways
        queue = deque(range(len(self._policies)))
        while queue:
            state = queue.popleft()
            frontier_before = len(self._policies)
            for way in range(ways):
                if self.hit_next[state * ways + way] < 0:
                    self.expand_hit(state, way)
                if self.fill_next[state * ways + way] < 0:
                    self.expand_fill(state, way)
            if self.miss_victim[state] < 0:
                self.expand_miss(state)
            queue.extend(range(frontier_before, len(self._policies)))
        return self._num_states

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        origin = (
            type(self._policies[0]).__name__ if self._policies else "frozen"
        )
        return (
            f"<CompiledPolicy {origin} "
            f"ways={self.ways} states={self.num_states}>"
        )


class _MappedCompiledPolicy(CompiledPolicy):
    """Frozen automaton whose list tables materialize on first use.

    Built only by :meth:`CompiledPolicy.from_mapped`.  The table names
    are shadowed by properties that copy the mapped buffer into a plain
    list the first time a scalar engine touches it, then write the list
    through the parent's slot descriptor so every later access is a
    plain slot read again.
    """

    __slots__ = ("_buffers", "_keep_alive")


def _lazy_table(name: str):
    slot = getattr(CompiledPolicy, name)  # the parent's member descriptor

    def fget(self):
        try:
            return slot.__get__(self, type(self))
        except AttributeError:
            value = list(self._buffers[name])
            slot.__set__(self, value)
            return value

    return property(fget, slot.__set__)


for _name in ("hit_next", "fill_next", "miss_victim", "miss_next"):
    setattr(_MappedCompiledPolicy, _name, _lazy_table(_name))
del _name


def compile_policy(
    policy_or_spec: ReplacementPolicy | PermutationSpec | str,
    ways: int | None = None,
    budget: int = DEFAULT_BUDGET,
) -> CompiledPolicy:
    """Compile a policy into its transition-table automaton.

    Accepts a policy instance, a :class:`PermutationSpec` (``ways`` taken
    from the spec), or a registry name (``ways`` required).  Raises
    :class:`~repro.errors.KernelUnsupported` for randomized policies.
    """
    if isinstance(policy_or_spec, PermutationSpec):
        prototype: ReplacementPolicy = PermutationPolicy(
            policy_or_spec.ways, policy_or_spec
        )
    elif isinstance(policy_or_spec, str):
        if ways is None:
            raise KernelUnsupported(
                f"compiling {policy_or_spec!r} by name requires ways="
            )
        from repro.policies import get

        prototype = get(policy_or_spec, ways)
    else:
        prototype = policy_or_spec
    if ways is not None and prototype.ways != ways:
        raise KernelUnsupported(
            f"policy is {prototype.ways}-way but ways={ways} was requested"
        )
    return CompiledPolicy(prototype, budget=budget)


# -- compilation caches ------------------------------------------------------
#: Per-instance cache: policy object -> its automaton.  Weak keys so
#: caching a candidate pool does not pin the policies alive; identity
#: semantics are what the identify/distinguish loops want (they reuse the
#: same candidate instances across thousands of probes).
_INSTANCE_CACHE: "weakref.WeakKeyDictionary[ReplacementPolicy, CompiledPolicy]" = (
    weakref.WeakKeyDictionary()
)

#: Unsupported-policy instances, so the KernelUnsupported probe runs once.
_INSTANCE_UNSUPPORTED: "weakref.WeakSet[ReplacementPolicy]" = weakref.WeakSet()

#: Per-name cache: (name, params, ways) -> automaton (or None when the
#: named policy is not compilable), shared by every simulation cell of a
#: grid so each process compiles a policy at most once.
_FACTORY_CACHE: dict[tuple, CompiledPolicy | None] = {}


def _note_compile(source: str, kind: str, label: str, ways: int,
                  compiled: "CompiledPolicy | None", seconds: float) -> None:
    """Account one cache resolution: counters always, an event when cold.

    ``source`` is ``"hit"`` (answered from the in-process cache),
    ``"load"`` (deserialized from the on-disk artifact store), ``"miss"``
    (BFS-compiled) or ``"unsupported"`` (the policy has no automaton).
    Memory hits are counter-only — they run on the per-measurement hot
    path; disk loads and fresh compiles additionally emit a
    ``kernel.compile`` trace event when a (cold-event) tracer is active.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    obs_metrics.DEFAULT.incr(f"kernel.compile.{source}")
    if source == "hit":
        return
    tracer = obs_trace.ACTIVE
    if tracer is not None:
        tracer.emit(
            "kernel.compile",
            source=source,
            target=kind,
            policy=label,
            ways=ways,
            states=compiled.num_states if compiled is not None else 0,
            seconds=round(seconds, 6),
        )


def compiled_for(policy: ReplacementPolicy) -> CompiledPolicy | None:
    """The (cached) automaton of a policy instance, or None if unsupported.

    Resolution order is memory -> disk -> BFS: a registry-built instance
    (stamped with its ``(name, params)`` provenance by
    :class:`~repro.policies.registry.PolicyFactory`) and a
    :class:`PermutationPolicy` (keyed by its spec) both reach the on-disk
    artifact store through their canonical caches; anything else compiles
    in-process as before.
    """
    cached = _INSTANCE_CACHE.get(policy)
    if cached is not None:
        _note_compile("hit", "instance", type(policy).__name__, policy.ways, cached, 0.0)
        return cached
    if policy in _INSTANCE_UNSUPPORTED:
        _note_compile("hit", "instance", type(policy).__name__, policy.ways, None, 0.0)
        return None
    # Canonical identities route through the shared (and disk-backed)
    # caches so equivalent instances share one automaton per process.
    compiled: CompiledPolicy | None
    if isinstance(policy, PermutationPolicy):
        compiled = compiled_for_spec(policy.spec)
    else:
        provenance = getattr(policy, "_registry_key", None)
        if provenance is not None:
            name, params = provenance
            compiled = compiled_for_factory(name, params, policy.ways)
        else:
            start = time.perf_counter()
            try:
                compiled = compile_policy(policy)
            except KernelUnsupported:
                _INSTANCE_UNSUPPORTED.add(policy)
                _note_compile(
                    "unsupported", "instance", type(policy).__name__,
                    policy.ways, None, time.perf_counter() - start,
                )
                return None
            _note_compile(
                "miss", "instance", type(policy).__name__, policy.ways,
                compiled, time.perf_counter() - start,
            )
    if compiled is None:
        _INSTANCE_UNSUPPORTED.add(policy)
        return None
    _INSTANCE_CACHE[policy] = compiled
    return compiled


def compiled_for_factory(
    name: str, params: tuple, ways: int
) -> CompiledPolicy | None:
    """The (cached) automaton of a named policy, or None if unsupported.

    ``params`` is the sorted item tuple a :class:`SimCell` carries; a
    spec-parameterised permutation policy hashes through its frozen spec.
    Consults the in-process cache, then the on-disk artifact store
    (:mod:`repro.kernels.store`), then BFS-compiles.
    """
    from repro.kernels import store

    key = (name, params, ways)
    if key in _FACTORY_CACHE:
        _note_compile("hit", "factory", name, ways, _FACTORY_CACHE[key], 0.0)
        return _FACTORY_CACHE[key]
    factory = PolicyFactory(name, **dict(params))
    compiled: CompiledPolicy | None
    if not factory.deterministic:
        # Randomized/adaptive policies have no automaton at all; count
        # them apart from misses so "no compile missed the warm cache"
        # assertions hold on grids that include them.
        compiled = None
        _note_compile("unsupported", "factory", name, ways, None, 0.0)
    else:
        start = time.perf_counter()
        compiled = store.load(store.factory_key(name, params, ways))
        if compiled is not None:
            _note_compile(
                "load", "factory", name, ways, compiled,
                time.perf_counter() - start,
            )
        else:
            try:
                compiled = compile_policy(
                    factory.build(ways, set_index=0, shared=factory.create_shared(1))
                )
            except KernelUnsupported:
                compiled = None
                _note_compile(
                    "unsupported", "factory", name, ways, None,
                    time.perf_counter() - start,
                )
            else:
                _note_compile(
                    "miss", "factory", name, ways, compiled,
                    time.perf_counter() - start,
                )
    _FACTORY_CACHE[key] = compiled
    return compiled


#: Per-spec cache for inference verification, which simulates the same
#: freshly inferred spec against hundreds of probe prefixes.  None marks
#: a spec whose reachable space blew the budget mid-run.
_SPEC_CACHE: dict[PermutationSpec, CompiledPolicy | None] = {}


def compiled_for_spec(spec: PermutationSpec) -> CompiledPolicy | None:
    """The (cached) automaton of a permutation spec, or None if unsupported.

    Memory -> disk -> BFS, like :func:`compiled_for_factory`; the disk
    key is a content digest of the spec's permutation vectors.
    """
    from repro.kernels import store

    if spec in _SPEC_CACHE:
        _note_compile("hit", "spec", "permutation-spec", spec.ways, _SPEC_CACHE[spec], 0.0)
        return _SPEC_CACHE[spec]
    start = time.perf_counter()
    compiled = store.load(store.spec_key(spec))
    if compiled is not None:
        _note_compile(
            "load", "spec", "permutation-spec", spec.ways, compiled,
            time.perf_counter() - start,
        )
    else:
        compiled = compile_policy(spec)
        _note_compile(
            "miss", "spec", "permutation-spec", spec.ways, compiled,
            time.perf_counter() - start,
        )
    _SPEC_CACHE[spec] = compiled
    return compiled


def mark_unsupported(policy: ReplacementPolicy) -> None:
    """Record that a policy blew the budget mid-run; stop retrying it."""
    _INSTANCE_CACHE.pop(policy, None)
    _INSTANCE_UNSUPPORTED.add(policy)


def mark_factory_unsupported(name: str, params: tuple, ways: int) -> None:
    """Record that a named policy blew the budget mid-run."""
    _FACTORY_CACHE[(name, params, ways)] = None


def mark_spec_unsupported(spec: PermutationSpec) -> None:
    """Record that a spec blew the budget mid-run."""
    _SPEC_CACHE[spec] = None


def clear_compile_cache() -> None:
    """Fully reset in-process kernel compilation state (test hygiene).

    Drops every cached automaton *and* every unsupported marker —
    including the "blew the budget mid-run" ``mark_*_unsupported``
    tombstones, so a policy that was marked off can compile again — and
    forgets which artifacts this session already persisted to the
    on-disk store (the store's files themselves are untouched; use
    :func:`repro.kernels.store.clear` for those).
    """
    from repro.kernels import store

    _INSTANCE_CACHE.clear()
    _INSTANCE_UNSUPPORTED.clear()
    _FACTORY_CACHE.clear()
    _SPEC_CACHE.clear()
    store.forget_persisted()
