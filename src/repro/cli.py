"""Command line interface: ``repro-cache``.

Subcommands mirror the library's two halves:

* ``list-processors`` / ``list-policies`` — inventory;
* ``infer`` — reverse engineer one cache of a simulated processor;
* ``evaluate`` — miss-ratio table of policies over the workload suite;
* ``bench`` — the same grid as a timed throughput benchmark (``--jobs``);
* ``predictability`` — evict/fill metrics table;
* ``query`` — run one CacheQuery-notation access sequence;
* ``trace`` — replay/filter a JSONL trace file written by ``--trace``;
* ``cache`` — inspect/warm/clear the on-disk automaton store;
* ``db`` — inspect/clear/export the persistent measurement database;
* ``report`` — summarize or diff ``*.ledger.json`` run manifests;
* ``history`` — ingest/check/inspect the run-history database
  (``history ingest benchmarks/results/`` backfills, ``history check``
  is the perf-regression exit-code gate);
* ``dash`` — render the static HTML observability dashboard.

The measurement-driving subcommands accept ``--trace FILE`` (stream
structured events to a JSONL file) and ``--metrics FILE`` (write an
ExperimentResult metrics sidecar plus a ``*.ledger.json`` run manifest
next to it); see OBSERVABILITY.md.  ``--metrics`` composes with the
compiled kernel — only ``--trace`` (which wants per-access events)
routes simulation through the interpreter.  ``--cache-dir DIR`` points
*both* persistent stores (compiled automata and the measurement DB) at
one directory; ``infer --db`` persists measurements so a warm rerun
reports ``db.miss == 0`` in its ledger.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.cache import CacheConfig
from repro.core import SimulatedSetOracle, VotingOracle, reverse_engineer, run_query
from repro.core.query import QueryResult
from repro.errors import ReproError, TraceFormatError
from repro.eval.missratio import miss_ratio_matrix
from repro.eval.predictability import predictability_of_policy
from repro.hardware import (
    PROCESSORS,
    HardwarePlatform,
    HardwareSetOracle,
    NoiseModel,
    get_processor,
)
from repro.kernels import (
    kernel_enabled,
    set_kernel_enabled,
    set_trie_enabled,
    set_vector_enabled,
    trie_enabled,
    vector_enabled,
)
from repro.obs import (
    DEFAULT,
    ExperimentResult,
    JsonlWriter,
    Tracer,
    filter_events,
    format_event,
    install,
    read_jsonl,
    uninstall,
)
from repro.obs import ledger as obs_ledger
from repro.obs import spans as obs_spans
from repro.policies import available, default_policies, get
from repro.runner import ExperimentRunner, clear_memo
from repro.util.tables import format_table
from repro.workloads import workload_suite


def _cmd_list_processors(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(PROCESSORS):
        spec = PROCESSORS[name]
        levels = "; ".join(level.config.describe() for level in spec.levels)
        rows.append([name, spec.description, levels])
    print(format_table(["processor", "description", "levels"], rows))
    return 0


def _cmd_list_policies(args: argparse.Namespace) -> int:
    for name in available():
        print(name)
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    spec = get_processor(args.processor)
    if args.noise > 0:
        spec = type(spec)(
            name=spec.name,
            description=spec.description,
            levels=spec.levels,
            page_size=spec.page_size,
            noise=NoiseModel(counter_noise_rate=args.noise),
        )
    platform = HardwarePlatform(spec, seed=args.seed)
    oracle = HardwareSetOracle(platform, args.level)
    if args.repetitions > 1:
        oracle = VotingOracle(oracle, repetitions=args.repetitions)
    if args.db:
        from repro import measuredb

        wrapped = measuredb.wrap_if_enabled(oracle)
        if wrapped is oracle:
            print(
                "note: oracle reports no provenance (noisy platform?); "
                "measurement DB not used",
                file=sys.stderr,
            )
        oracle = wrapped
    finding = reverse_engineer(oracle)
    print(f"processor : {spec.name}")
    print(f"level     : {args.level} ({platform.level_config(args.level).describe()})")
    print(f"finding   : {finding.summary()}")
    print(f"cost      : {finding.measurements} measurements, {finding.accesses} accesses")
    if finding.spec is not None:
        print(finding.spec.describe())
    if args.check:
        truth = spec.ground_truth[args.level]
        ok = finding.policy_name == truth
        print(f"ground truth: {truth} -> {'MATCH' if ok else 'MISMATCH'}")
        return 0 if ok else 1
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    config = CacheConfig("eval", args.size, args.ways, args.line_size)
    cache_lines = config.num_sets * config.ways
    traces = workload_suite(cache_lines, seed=args.seed)
    policies = args.policies.split(",")
    matrix = miss_ratio_matrix(traces, config, policies, seed=args.seed,
                               jobs=args.jobs)
    print(format_table(["workload"] + matrix.policies(), matrix.rows(),
                       title=f"miss ratios @ {config.describe()}"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Timed run of the evaluation grid through the experiment runner."""
    config = CacheConfig("bench", args.size, args.ways, args.line_size)
    cache_lines = config.num_sets * config.ways
    traces = workload_suite(cache_lines, seed=args.seed)
    policies = args.policies.split(",")
    rows = []
    matrix = None
    for repetition in range(args.repeat):
        clear_memo()  # time real simulation work, not cache hits
        runner = ExperimentRunner(
            jobs=args.jobs,
            reuse_pool=not args.fresh_pool,
            start_method=args.start_method,
        )
        start = time.perf_counter()
        matrix = miss_ratio_matrix(
            traces, config, policies, seed=args.seed, runner=runner
        )
        elapsed = time.perf_counter() - start
        cells = len(matrix.cells)
        mode = f"jobs={args.jobs}" if args.jobs and args.jobs > 1 else "serial"
        rows.append(
            [
                repetition + 1,
                mode,
                cells,
                f"{elapsed:.3f}",
                f"{cells / elapsed:.1f}" if elapsed else "-",
            ]
        )
    print(format_table(
        ["run", "mode", "cells", "seconds", "cells/s"],
        rows,
        title=f"runner throughput @ {config.describe()}",
    ))
    if args.show_matrix and matrix is not None:
        print(format_table(["workload"] + matrix.policies(), matrix.rows(),
                           title="miss ratios"))
    return 0


def _cmd_predictability(args: argparse.Namespace) -> int:
    rows = []
    for name in args.policies.split(","):
        policy = get(name, args.ways)
        try:
            result = predictability_of_policy(name, policy)
        except ReproError as error:
            rows.append([name, args.ways, "-", "-", str(error)])
            continue
        rows.append(
            [
                name,
                args.ways,
                result.evict if result.evict is not None else "unbounded",
                result.fill if result.fill is not None else "unbounded",
                "",
            ]
        )
    print(format_table(["policy", "ways", "evict", "fill", "note"], rows))
    return 0


def format_query_result(result: QueryResult) -> str:
    """Render a structured query result as the classic one-line report."""
    return " ".join(
        f"{outcome.name}={'hit' if outcome.hit else 'miss'}"
        for outcome in result.outcomes
    )


def _cmd_query(args: argparse.Namespace) -> int:
    if args.processor:
        platform = HardwarePlatform(get_processor(args.processor), seed=args.seed)
        oracle = HardwareSetOracle(platform, args.level)
    else:
        oracle = SimulatedSetOracle(get(args.policy, args.ways))
    print(format_query_result(run_query(oracle, args.sequence)))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Replay a JSONL trace file: filter, print, summarise."""
    try:
        events = read_jsonl(args.file)
    except OSError as error:
        raise TraceFormatError(f"cannot read trace file: {error}") from error
    where = {}
    for clause in args.where:
        if "=" not in clause:
            raise TraceFormatError(
                f"bad --where clause {clause!r}; expected field=value"
            )
        key, value = clause.split("=", 1)
        where[key] = value
    selected = filter_events(
        events, kinds=args.kind or None, where=where or None, limit=args.limit
    )
    if args.summary:
        counts: dict[str, int] = {}
        for event in selected:
            kind = str(event.get("kind", "?"))
            counts[kind] = counts.get(kind, 0) + 1
        rows = [[kind, counts[kind]] for kind in sorted(counts)]
        rows.append(["total", len(selected)])
        print(format_table(["kind", "events"], rows, title=f"trace {args.file}"))
    else:
        for event in selected:
            print(format_event(event))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Summarize or diff run ledgers written next to metrics sidecars."""
    ledgers = []
    for path in args.files:
        # Every malformed input degrades to a one-line error + exit 2
        # (via ReproError in main) — never a traceback: missing file,
        # truncated JSON, JSON that is not a ledger document.
        try:
            ledgers.append(obs_ledger.read_ledger(path))
        except OSError as error:
            raise ReproError(f"cannot read ledger {path}: {error}") from error
        except ValueError as error:
            raise ReproError(
                f"{path} is not a ledger: invalid JSON ({error})"
            ) from error
        except ReproError as error:
            raise ReproError(f"{path} is not a ledger: {error}") from error
    if args.diff:
        if len(ledgers) != 2:
            raise ReproError("--diff needs exactly two ledger files")
        print(obs_ledger.diff_ledgers(ledgers[0], ledgers[1]))
        return 0
    status = 0
    for index, ledger in enumerate(ledgers):
        if index:
            print()
        print(obs_ledger.format_ledger(ledger))
        if args.against_history:
            from repro.obs import regress as obs_regress

            verdicts = obs_regress.check_run(
                ledger, baseline_ref=args.baseline
            )
            print()
            print(obs_regress.format_verdicts(
                verdicts, title=f"{ledger.name} vs history"
            ))
            if any(verdict.status == "fail" for verdict in verdicts):
                status = 1
    return status


def _add_obs_options(command: argparse.ArgumentParser) -> None:
    """Attach the shared observability options to one subcommand."""
    command.add_argument(
        "--trace", metavar="FILE", default=None, dest="trace_file",
        help="stream structured events to a JSONL trace file",
    )
    command.add_argument(
        "--metrics", metavar="FILE", default=None, dest="metrics_file",
        help="write an ExperimentResult metrics sidecar (JSON)",
    )


def _add_kernel_options(command: argparse.ArgumentParser) -> None:
    """Attach the compiled-kernel switch to one simulation subcommand."""
    group = command.add_mutually_exclusive_group()
    group.add_argument(
        "--kernel", dest="kernel", action="store_true", default=True,
        help="use the compiled simulation kernel where possible (default)",
    )
    group.add_argument(
        "--no-kernel", dest="kernel", action="store_false",
        help="force the interpreted simulator (reference path)",
    )
    command.add_argument(
        "--no-vector", dest="vector", action="store_false", default=True,
        help="keep the scalar kernel engines even when numpy is available",
    )
    command.add_argument(
        "--no-trie", dest="trie", action="store_false", default=True,
        help="disable the prefix-trie batch query planner "
        "(keep the plain batched engines)",
    )


def _add_cache_options(command: argparse.ArgumentParser) -> None:
    """Attach the shared persistent-store directory option."""
    command.add_argument(
        "--cache-dir", metavar="DIR", default=None, dest="cache_dir",
        help="directory for both persistent stores — compiled automata "
        "and the measurement DB (default: $REPRO_CACHE_DIR or "
        "./.repro-cache)",
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.kernels import store

    previous_dir = None if args.dir is None else store.cache_dir()
    if args.dir is not None:
        store.set_cache_dir(args.dir)
    try:
        if args.action == "stats":
            info = store.stats()
            rows = [
                [
                    entry["file"],
                    entry["schema"],
                    "yes" if entry["current"] else "stale",
                    entry["bytes"],
                ]
                for entry in info["artifacts"]
            ]
            print(
                format_table(
                    ["artifact", "schema", "current", "bytes"],
                    rows,
                    title=f"automaton store @ {info['dir']}",
                )
            )
            print(
                f"entries: {info['entries']} ({info['stale_entries']} stale), "
                f"total {info['total_bytes']} bytes, "
                f"schema v{info['schema_version']}, "
                f"{'enabled' if info['enabled'] else 'disabled'}"
            )
            from repro.kernels import numpy_available

            print(
                "loading: "
                f"mmap {'on' if store.mmap_enabled() else 'off'}, "
                f"numpy {'available (vector engine)' if numpy_available() else 'absent (scalar only)'}"
            )
            return 0
        if args.action == "clear":
            removed = store.clear(stale_only=args.stale_only)
            which = "stale " if args.stale_only else ""
            print(f"removed {removed} {which}artifact(s) from {store.cache_dir()}")
            return 0
        # warm: resolve + persist each policy's automaton.
        names = args.policies.split(",") if args.policies else available()
        report = store.warm((name, (), args.ways) for name in names)
        rows = [
            [
                entry["policy"],
                entry["ways"],
                entry["status"],
                entry["states"],
                f"{entry['seconds']:.3f}",
            ]
            for entry in report
        ]
        print(
            format_table(
                ["policy", "ways", "status", "states", "seconds"],
                rows,
                title=f"cache warm @ {store.cache_dir()}",
            )
        )
        persisted = sum(1 for entry in report if entry["status"] == "persisted")
        print(f"persisted {persisted}/{len(report)} automata")
        return 0
    finally:
        if args.dir is not None:
            store.set_cache_dir(previous_dir)


def _cmd_db(args: argparse.Namespace) -> int:
    import json

    from repro import measuredb

    previous_dir = None if args.dir is None else measuredb.db_dir()
    if args.dir is not None:
        measuredb.set_db_dir(args.dir)
        measuredb.reset()
    try:
        if args.action == "stats":
            info = measuredb.stats()
            rows = [[entry["scope"], entry["rows"]] for entry in info["scopes"]]
            print(
                format_table(
                    ["scope", "rows"],
                    rows,
                    title=f"measurement DB @ {info['path']}",
                )
            )
            print(
                f"rows: {info['total_rows']} in {len(info['scopes'])} scope(s), "
                f"total {info['total_bytes']} bytes, "
                f"schema v{info['schema_version']}, "
                f"{'enabled' if info['enabled'] else 'disabled'}"
            )
            return 0
        if args.action == "clear":
            removed = measuredb.clear(args.scope)
            which = f"scope {args.scope!r}" if args.scope else "all scopes"
            print(f"removed {removed} row(s) ({which}) from {measuredb.db_path()}")
            return 0
        # export: JSON-lines rows, to stdout or --output.
        rows_iter = measuredb.export_rows(args.scope)
        if args.output:
            count = 0
            with open(args.output, "w", encoding="utf-8") as sink:
                for row in rows_iter:
                    sink.write(json.dumps(row) + "\n")
                    count += 1
            print(f"exported {count} row(s) to {args.output}")
        else:
            for row in rows_iter:
                print(json.dumps(row))
        return 0
    finally:
        if args.dir is not None:
            measuredb.set_db_dir(previous_dir)
            measuredb.reset()


def _cmd_history(args: argparse.Namespace) -> int:
    """Manage the run-history database (ingest/check/stats/clear)."""
    from repro.obs import history as obs_history
    from repro.obs import regress as obs_regress

    previous_dir = None
    if args.dir is not None:
        previous_dir = obs_history.history_dir()
        obs_history.set_history_dir(args.dir)
    try:
        if args.action == "ingest":
            report = obs_history.ingest_paths(args.paths)
            for path, status in report["files"]:
                print(f"{status:9s} {path}")
            for path, reason in report["errors"]:
                print(f"error: {path}: {reason}", file=sys.stderr)
            print(
                f"ingested {report['recorded']} new, "
                f"{report['duplicates']} duplicate(s), "
                f"{len(report['errors'])} error(s) "
                f"into {obs_history.history_path()}"
            )
            return 0 if not report["errors"] else 1
        if args.action == "check":
            defaults = {
                "window": obs_regress.DEFAULT_WINDOW,
                "min_samples": obs_regress.DEFAULT_MIN_SAMPLES,
                "wall_threshold": obs_regress.DEFAULT_WALL_THRESHOLD,
                "counter_threshold": obs_regress.DEFAULT_COUNTER_THRESHOLD,
            }
            knobs = {
                name: getattr(args, name) if getattr(args, name) is not None
                else value
                for name, value in defaults.items()
            }
            verdicts = obs_regress.check_history(
                experiments=args.experiment or None,
                baseline_ref=args.baseline,
                **knobs,
            )
            print(obs_regress.format_verdicts(verdicts))
            failed = sum(1 for verdict in verdicts if verdict.status == "fail")
            skipped = sum(1 for verdict in verdicts if verdict.status == "skip")
            print(
                f"checked {len(verdicts)} metric(s): "
                f"{failed} regression(s), {skipped} skipped"
            )
            if failed and args.warn_only:
                print("warn-only: regressions reported, exit suppressed",
                      file=sys.stderr)
                return 0
            return 1 if failed else 0
        if args.action == "stats":
            info = obs_history.stats()
            rows = [
                [entry["name"], entry["runs"], entry["first"], entry["latest"]]
                for entry in info["experiments"]
            ]
            print(format_table(
                ["experiment", "runs", "first", "latest"],
                rows,
                title=f"run history @ {info['path']}",
            ))
            print(
                f"runs: {info['total_runs']} across "
                f"{len(info['experiments'])} experiment(s), "
                f"{info['total_bench_points']} bench point(s), "
                f"total {info['total_bytes']} bytes, "
                f"schema v{info['schema_version']}, "
                f"{'enabled' if info['enabled'] else 'disabled'}"
            )
            return 0
        # clear
        removed = obs_history.clear()
        print(f"removed {removed} row(s) from {obs_history.history_path()}")
        return 0
    finally:
        if args.dir is not None:
            obs_history.set_history_dir(previous_dir)
            obs_history.reset()


def _cmd_dash(args: argparse.Namespace) -> int:
    """Render the static HTML observability dashboard."""
    from repro.obs import dash as obs_dash
    from repro.obs import history as obs_history

    previous_dir = None
    if args.dir is not None:
        previous_dir = obs_history.history_dir()
        obs_history.set_history_dir(args.dir)
    try:
        results_dir = args.results
        if results_dir is None:
            default = Path("benchmarks") / "results"
            results_dir = default if default.is_dir() else None
        report = obs_dash.render_dashboard(
            args.output, results_dir=results_dir
        )
    finally:
        if args.dir is not None:
            obs_history.set_history_dir(previous_dir)
            obs_history.reset()
    print(
        f"dashboard: {len(report['pages'])} page(s) -> {args.output} "
        f"({report['runs']} run(s), {report['experiments']} experiment(s), "
        f"{report['bench_points']} bench point(s), "
        f"{report['flagged']} flagged group(s))"
    )
    print(f"open {Path(args.output) / 'index.html'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Reverse engineer and evaluate cache replacement policies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-processors", help="show the simulated processor catalog")
    sub.add_parser("list-policies", help="show the policy registry")

    infer = sub.add_parser("infer", help="reverse engineer one cache level")
    infer.add_argument("--processor", required=True, choices=sorted(PROCESSORS))
    infer.add_argument("--level", default="L1")
    infer.add_argument("--noise", type=float, default=0.0,
                       help="counter noise rate per access")
    infer.add_argument("--repetitions", type=int, default=1,
                       help="majority-vote repetitions per measurement")
    infer.add_argument("--seed", type=int, default=0)
    infer.add_argument("--check", action="store_true",
                       help="compare against the catalog ground truth")
    infer.add_argument("--db", action="store_true",
                       help="persist measurements in the measurement DB; a "
                       "warm rerun reports db.miss == 0 in its ledger")
    _add_obs_options(infer)
    _add_kernel_options(infer)
    _add_cache_options(infer)

    evaluate = sub.add_parser("evaluate", help="miss-ratio table over the workload suite")
    evaluate.add_argument("--policies", default=",".join(default_policies("eval")))
    evaluate.add_argument("--size", type=int, default=32 * 1024)
    evaluate.add_argument("--ways", type=int, default=8)
    evaluate.add_argument("--line-size", type=int, default=64)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--jobs", type=int, default=0,
                          help="worker processes for the grid (0 = serial)")
    _add_obs_options(evaluate)
    _add_kernel_options(evaluate)
    _add_cache_options(evaluate)

    bench = sub.add_parser(
        "bench",
        help="timed miss-ratio grid through the parallel experiment runner",
        description="Run the evaluate grid as a benchmark and report "
        "wall-clock throughput; compare --jobs N against the serial default.",
    )
    bench.add_argument("--policies", default=",".join(default_policies("eval")))
    bench.add_argument("--size", type=int, default=64 * 1024)
    bench.add_argument("--ways", type=int, default=8)
    bench.add_argument("--line-size", type=int, default=64)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--jobs", type=int, default=0,
                       help="worker processes for the grid (0 = serial)")
    bench.add_argument("--repeat", type=int, default=1,
                       help="repeat the timed grid this many times")
    bench.add_argument("--fresh-pool", action="store_true",
                       help="tear the worker pool down after every "
                       "repetition instead of reusing the persistent "
                       "pool (baseline for runner.pool.* comparisons)")
    bench.add_argument("--start-method", default=None,
                       choices=("fork", "spawn", "forkserver"),
                       help="multiprocessing start method for pool "
                       "workers (default: platform default)")
    bench.add_argument("--show-matrix", action="store_true",
                       help="also print the resulting miss-ratio table")
    _add_obs_options(bench)
    _add_kernel_options(bench)
    _add_cache_options(bench)

    predict = sub.add_parser("predictability", help="evict/fill metrics table")
    predict.add_argument(
        "--policies", default=",".join(default_policies("predictability"))
    )
    predict.add_argument("--ways", type=int, default=4)

    query = sub.add_parser(
        "query",
        help="run an access-sequence query (CacheQuery notation)",
        description='Example: repro-cache query --policy plru --ways 4 "a b c d 2*@ a?"',
    )
    query.add_argument("sequence", help="query string, e.g. 'a b a? c?'")
    query.add_argument("--policy", default="lru",
                       help="simulated policy to query (ignored with --processor)")
    query.add_argument("--ways", type=int, default=4)
    query.add_argument("--processor", choices=sorted(PROCESSORS), default=None,
                       help="query a catalog processor instead of a bare policy")
    query.add_argument("--level", default="L1")
    query.add_argument("--seed", type=int, default=0)
    _add_obs_options(query)
    _add_kernel_options(query)
    _add_cache_options(query)

    trace = sub.add_parser(
        "trace",
        help="replay/filter a JSONL trace written by --trace",
        description="Example: repro-cache trace run.jsonl --kind oracle. --limit 20",
    )
    trace.add_argument("file", help="JSONL trace file")
    trace.add_argument("--kind", action="append", default=[],
                       help="kind prefix filter (repeatable), e.g. 'oracle.'")
    trace.add_argument("--where", action="append", default=[], metavar="FIELD=VALUE",
                       help="field equality filter (repeatable)")
    trace.add_argument("--limit", type=int, default=None,
                       help="print at most this many events")
    trace.add_argument("--summary", action="store_true",
                       help="print per-kind event counts instead of events")

    cache = sub.add_parser(
        "cache",
        help="manage the on-disk compiled-automaton store (.repro-cache/)",
        description="Example: repro-cache cache warm --policies lru,plru "
        "--ways 8, then repro-cache cache stats",
    )
    cache.add_argument("action", choices=("stats", "warm", "clear"),
                       help="inspect, populate, or empty the artifact store")
    cache.add_argument("--dir", default=None,
                       help="store directory (default: $REPRO_CACHE_DIR or "
                       "./.repro-cache)")
    cache.add_argument("--policies", default=None,
                       help="warm: comma-separated names (default: every "
                       "registry policy; unsupported ones are reported)")
    cache.add_argument("--ways", type=int, default=8,
                       help="warm: associativity to compile at")
    cache.add_argument("--stale-only", action="store_true",
                       help="clear: only artifacts from other schema versions")

    db = sub.add_parser(
        "db",
        help="manage the persistent measurement database",
        description="Example: repro-cache db stats, then repro-cache db "
        "export --scope 'sim|policy:lru|()|ways=4' --output rows.jsonl",
    )
    db.add_argument("action", choices=("stats", "clear", "export"),
                    help="inspect, empty, or dump the measurement store")
    db.add_argument("--dir", default=None,
                    help="database directory (default: shared with the "
                    "automaton store: $REPRO_CACHE_DIR or ./.repro-cache)")
    db.add_argument("--scope", default=None,
                    help="restrict clear/export to one provenance scope")
    db.add_argument("--output", default=None, metavar="FILE",
                    help="export: write JSON lines here instead of stdout")

    report = sub.add_parser(
        "report",
        help="summarize or diff *.ledger.json run manifests",
        description="Example: repro-cache report --diff serial.ledger.json "
        "parallel.ledger.json",
    )
    report.add_argument("files", nargs="+", help="ledger file(s) to read")
    report.add_argument("--diff", action="store_true",
                        help="compare exactly two ledgers side by side")
    report.add_argument("--against-history", action="store_true",
                        help="also judge each ledger against its baseline "
                        "group in the run-history database (exit 1 on "
                        "regression)")
    report.add_argument("--baseline", default=None, metavar="REF",
                        help="with --against-history: pin the baseline to "
                        "runs recorded at this git revision (sha prefix)")

    history = sub.add_parser(
        "history",
        help="manage the run-history database (ingest/check/stats/clear)",
        description="Example: repro-cache history ingest benchmarks/results/ "
        "&& repro-cache history check",
    )
    history.add_argument("--dir", default=None,
                         help="history directory (default: shared with the "
                         "automaton store: $REPRO_CACHE_DIR or ./.repro-cache)")
    history_sub = history.add_subparsers(dest="action", required=True)
    ingest = history_sub.add_parser(
        "ingest",
        help="backfill history from ledgers and BENCH_*.json files",
        description="Directories are scanned for *.ledger.json and "
        "BENCH_*.json; re-ingesting is idempotent (content fingerprints).",
    )
    ingest.add_argument("paths", nargs="+",
                        help="ledger/BENCH files or directories of them")
    check = history_sub.add_parser(
        "check",
        help="regression-check the latest run of every baseline group",
        description="Exit 1 when any group's newest run regressed against "
        "its baseline window (median + MAD rule); groups with too little "
        "history are skipped, so a cold database passes.",
    )
    check.add_argument("--experiment", action="append", default=[],
                       metavar="NAME",
                       help="restrict to this experiment (repeatable)")
    check.add_argument("--window", type=int, default=None,
                       help="baseline window length (prior runs per group)")
    check.add_argument("--min-samples", type=int, default=None,
                       help="baseline runs required before judging")
    check.add_argument("--wall-threshold", type=float, default=None,
                       help="wall-time ratio that fails (default 1.5)")
    check.add_argument("--counter-threshold", type=float, default=None,
                       help="counter ratio that fails (default 2.0)")
    check.add_argument("--baseline", default=None, metavar="REF",
                       help="pin the baseline to runs recorded at this git "
                       "revision (sha prefix) instead of the sliding window")
    check.add_argument("--warn-only", action="store_true",
                       help="report regressions but always exit 0 (cold-"
                       "cache CI gates)")
    history_sub.add_parser("stats", help="inventory of the history database")
    history_sub.add_parser("clear", help="delete all recorded history")

    dash = sub.add_parser(
        "dash",
        help="render the static HTML observability dashboard",
        description="Example: repro-cache dash -o dash/ — renders a fleet "
        "summary, per-experiment trend pages, bench-trajectory sparklines "
        "and span flame views from the run-history database.",
    )
    dash.add_argument("-o", "--output", default="dash",
                      help="output directory (default: dash/)")
    dash.add_argument("--results", default=None, metavar="DIR",
                      help="results directory for *.trace.jsonl flame views "
                      "(default: benchmarks/results/ when present)")
    dash.add_argument("--dir", default=None,
                      help="history directory (default: shared with the "
                      "automaton store)")

    return parser


_COMMANDS = {
    "list-processors": _cmd_list_processors,
    "list-policies": _cmd_list_policies,
    "infer": _cmd_infer,
    "evaluate": _cmd_evaluate,
    "bench": _cmd_bench,
    "predictability": _cmd_predictability,
    "query": _cmd_query,
    "trace": _cmd_trace,
    "cache": _cmd_cache,
    "db": _cmd_db,
    "report": _cmd_report,
    "history": _cmd_history,
    "dash": _cmd_dash,
}

#: Namespace attributes that belong in a metrics sidecar's params block.
_SIDECAR_PARAM_TYPES = (str, int, float, bool, type(None))


def _sidecar_params(args: argparse.Namespace) -> dict:
    """The scalar subcommand arguments, for sidecar/ledger params blocks."""
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in ("command", "trace_file", "metrics_file")
        and isinstance(value, _SIDECAR_PARAM_TYPES)
    }


def _run_with_observability(args: argparse.Namespace) -> int:
    """Dispatch one subcommand under the requested tracing/metrics setup.

    Every invocation starts from a clean slate — the module-wide metrics
    store and span state are reset up front, so back-to-back commands in
    one process (tests, notebooks) never bleed counters into each other.

    Only ``--trace`` installs a tracer; with ``--metrics`` alone the
    compiled kernel stays eligible (its counters flush into the metrics
    store directly), so ``--metrics`` composes with ``--kernel``.  When a
    metrics sidecar is written, a ``*.ledger.json`` run manifest lands
    next to it for ``repro-cache report``, and the ledger is auto-
    recorded into the run-history database (with the runner's per-map
    breakdowns attached).  Without ``--metrics`` no history code runs at
    all — no sqlite file is created.
    """
    trace_file = getattr(args, "trace_file", None)
    metrics_file = getattr(args, "metrics_file", None)
    command = _COMMANDS[args.command]
    kernel_before = kernel_enabled()
    set_kernel_enabled(getattr(args, "kernel", kernel_before))
    vector_before = vector_enabled()
    set_vector_enabled(getattr(args, "vector", vector_before))
    trie_before = trie_enabled()
    set_trie_enabled(getattr(args, "trie", trie_before))
    cache_dir = getattr(args, "cache_dir", None)
    cache_dir_before = None
    if cache_dir is not None:
        # One switch moves all three persistent stores: the measurement
        # DB's and history DB's directories follow the automaton store's
        # unless overridden.
        from repro import measuredb
        from repro.kernels import store

        cache_dir_before = store.cache_dir()
        store.set_cache_dir(cache_dir)
        measuredb.reset()
    DEFAULT.reset()
    obs_spans.reset()
    maps: list[dict] = []
    if metrics_file is not None:
        from repro.runner import core as runner_core

        runner_core.add_map_hook(maps.append)
    start = time.perf_counter()
    try:
        if trace_file is not None:
            with JsonlWriter(trace_file) as sink:
                install(Tracer(keep_events=False, sink=sink))
                try:
                    status = command(args)
                finally:
                    uninstall()
        else:
            status = command(args)
        wall_seconds = time.perf_counter() - start
        if metrics_file is not None:
            # Sidecar + ledger are written (and history recorded) while
            # the --cache-dir override is still in force, so the history
            # row lands in the same directory tree as the other stores.
            result = ExperimentResult(
                name=f"cli-{args.command}",
                params=_sidecar_params(args),
                data={"exit_status": status},
                metrics=DEFAULT.snapshot(),
            )
            Path(metrics_file).write_text(result.to_json(indent=2) + "\n")
            ledger = obs_ledger.build_ledger(
                name=f"cli-{args.command}",
                params=_sidecar_params(args),
                wall_seconds=wall_seconds,
                seed=getattr(args, "seed", None),
                jobs=getattr(args, "jobs", None),
                kernel=getattr(args, "kernel", None),
                counters=DEFAULT.snapshot().get("counters", {}),
                artifacts=[
                    path for path in (metrics_file, trace_file)
                    if path is not None
                ],
            )
            obs_ledger.write_ledger(
                ledger, obs_ledger.ledger_path_for(metrics_file)
            )
            from repro.obs import history as obs_history

            obs_history.record_ledger(
                ledger, source="cli", maps=maps or None
            )
    finally:
        if metrics_file is not None:
            from repro.runner import core as runner_core

            runner_core.remove_map_hook(maps.append)
        set_kernel_enabled(kernel_before)
        set_vector_enabled(vector_before)
        set_trie_enabled(trie_before)
        if cache_dir is not None:
            from repro import measuredb
            from repro.kernels import store

            store.set_cache_dir(cache_dir_before)
            measuredb.reset()
    return status


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-cache`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_with_observability(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
