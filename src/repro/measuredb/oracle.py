"""The DB-backed oracle: persistence behind the ``OracleProtocol``.

:class:`MeasurementDBOracle` wraps any oracle that can state its
*provenance* (a string identifying what is being measured — see
:meth:`repro.core.oracle.OracleProtocol.provenance`) and routes every
query through the shared :class:`~repro.measuredb.service.OracleService`
for that scope: memo/DB hits are answered without touching the inner
oracle, misses are delegated in one batched call and written back.

Cost accounting is *logical*, deliberately unlike
:class:`~repro.core.oracle.CachingOracle`: the wrapper's
``measurements``/``accesses`` counters advance for **every** request,
DB-served or not.  They model the query budget of the paper's
algorithms — how many measurements the algorithm *asked for* — so an
:class:`~repro.core.inference.InferenceResult` produced against a warm
database is bit-identical to one produced cold (same spec, same
``measurements``, same ``accesses``).  What changed physically shows up
in the metrics instead: warm runs report ``db.miss == 0`` and
``oracle.measurements == 0`` (no real measurement ran), while
``db.hit`` counts the served requests.  The wrapper itself emits no
``oracle.*`` metrics or events — the inner oracle already emits them
for the measurements that actually execute, and double-counting would
corrupt the ledgers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.oracle import MissCountOracle, OracleProtocol
from repro.errors import MeasurementError
from repro.measuredb import db as _db
from repro.measuredb.service import OracleService, shared_service

__all__ = ["MeasurementDBOracle", "wrap_if_enabled"]


class MeasurementDBOracle(MissCountOracle):
    """Persistent, service-coalesced memoization of an inner oracle.

    Only meaningful over a *deterministic* inner oracle: provenance is
    the promise that equal requests always yield equal answers, so an
    oracle that cannot state one (randomized policy, noisy hardware) is
    refused — persisting its samples would freeze noise into every
    future run.  Denoise first (:class:`~repro.core.oracle.VotingOracle`
    around the noisy oracle reports no provenance either, unless its
    inner is deterministic), or don't persist.
    """

    def __init__(
        self,
        inner: OracleProtocol,
        scope: str | None = None,
        service: OracleService | None = None,
    ) -> None:
        if scope is None:
            scope = inner.provenance()
        if scope is None:
            raise MeasurementError(
                "measurement DB needs a deterministic oracle with provenance; "
                f"{type(inner).__name__} reports none"
            )
        self._inner = inner
        self.scope = scope
        self._service = service if service is not None else shared_service(scope)
        self.ways = inner.ways
        self.measurements = 0
        self.accesses = 0

    def provenance(self) -> str | None:
        return self.scope

    def query(
        self, requests: Sequence[tuple[Sequence[int], Sequence[int]]]
    ) -> list[int]:
        requests = list(requests)
        results = self._service.query(requests, self._inner)
        # Logical cost: the algorithm asked for these measurements,
        # whether or not the database saved the physical work.
        for setup, probe in requests:
            self.measurements += 1
            self.accesses += len(setup) + len(probe)
        return results

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        return self.query([(setup, probe)])[0]


def wrap_if_enabled(oracle: OracleProtocol) -> OracleProtocol:
    """Wrap ``oracle`` in a :class:`MeasurementDBOracle` when possible.

    Returns ``oracle`` unchanged when the measurement DB is disabled or
    the oracle has no provenance (non-deterministic), so call sites can
    opt in unconditionally:  ``oracle = wrap_if_enabled(oracle)``.
    """
    if not _db.db_enabled():
        return oracle
    if oracle.provenance() is None:
        return oracle
    return MeasurementDBOracle(oracle)
