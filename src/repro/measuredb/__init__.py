"""Persistent measurement database + shared oracle service.

The package has three layers (see DESIGN.md for the flow diagram):

* :mod:`repro.measuredb.db` — the sqlite (WAL) store itself: atomic
  batched writes, corrupt-file fallback to recompute, fork-safe
  connections, ``db.*`` counters;
* :mod:`repro.measuredb.service` — per-scope brokers that preload,
  batch, coalesce and write back, shared by all clients in a process;
* :mod:`repro.measuredb.oracle` — :class:`MeasurementDBOracle`, the
  ``OracleProtocol`` face of the stack, plus :func:`wrap_if_enabled`
  for opt-in call sites.

The hit-vector side (``distinguish.responses``) is opt-in via
:func:`set_hits_cache_enabled`; miss-count persistence is opt-in per
oracle via :class:`MeasurementDBOracle` / :func:`wrap_if_enabled`.
"""

from __future__ import annotations

from repro.measuredb.db import (
    DB_FILENAME,
    SCHEMA_VERSION,
    MeasurementDB,
    close_db,
    db_dir,
    db_disabled,
    db_enabled,
    db_path,
    get_db,
    request_digest,
    set_db_dir,
    set_db_enabled,
)
from repro.measuredb.service import (
    OracleService,
    ResponseCache,
    adopt_scope_rows,
    preload_scopes,
    reset_services,
    shared_response_cache,
    shared_service,
)
from repro.measuredb.oracle import MeasurementDBOracle, wrap_if_enabled

__all__ = [
    "SCHEMA_VERSION",
    "DB_FILENAME",
    "MeasurementDB",
    "MeasurementDBOracle",
    "OracleService",
    "ResponseCache",
    "adopt_scope_rows",
    "close_db",
    "db_dir",
    "db_disabled",
    "db_enabled",
    "db_path",
    "get_db",
    "hits_cache_enabled",
    "preload_scopes",
    "request_digest",
    "reset",
    "response_cache_for",
    "set_db_dir",
    "set_db_enabled",
    "set_hits_cache_enabled",
    "shared_response_cache",
    "shared_service",
    "stats",
    "clear",
    "export_rows",
    "wrap_if_enabled",
]

#: Opt-in switch for persisting distinguish/identify hit vectors.
_HITS_CACHE = False


def hits_cache_enabled() -> bool:
    """True when ``distinguish.responses`` may consult the DB."""
    return _HITS_CACHE and db_enabled()


def set_hits_cache_enabled(enabled: bool) -> None:
    """Enable/disable the persistent hit-vector response cache."""
    global _HITS_CACHE
    _HITS_CACHE = bool(enabled)


def response_cache_for(policy, thrash_factor: int = 2) -> ResponseCache | None:
    """The shared hit-vector cache for ``policy``, or None.

    None when the policy has no provenance (randomized / unregistered
    instances must keep re-simulating).  The scope pins the established
    state's thrash factor alongside the policy identity, because the
    cached vectors start from that state.
    """
    from repro.core.oracle import policy_provenance

    provenance = policy_provenance(policy)
    if provenance is None:
        return None
    return shared_response_cache(f"resp|thrash={thrash_factor}|{provenance}")


def stats() -> dict:
    """Inventory of the current measurement database."""
    return get_db().stats()


def clear(scope: str | None = None) -> int:
    """Delete measurement rows (one scope, or all); returns the count."""
    removed = get_db().clear(scope)
    reset_services()
    return removed


def export_rows(scope: str | None = None):
    """Iterate the database's rows as JSON-friendly dicts."""
    return get_db().export_rows(scope)


def reset() -> None:
    """Close the DB handle and drop all in-process service memos.

    The reset point for tests and directory changes: the next query
    reopens the database at the current :func:`db_dir` and re-preloads.
    """
    close_db()
    reset_services()
