"""Persistent sqlite measurement store (WAL mode).

The measurement database is the on-disk sibling of the in-memory
:class:`~repro.core.oracle.CachingOracle`: it maps

    ``(scope, request digest) -> miss count / per-access hit vector``

where *scope* is an oracle provenance string (policy identity +
associativity, hardware spec + level + seed, ...) and the digest keys
one ``(setup, probe)`` measurement.  Rows survive across processes and
across ``--jobs N`` workers, so repeated inference grids hit the DB
instead of re-simulating.

Discipline mirrors :mod:`repro.kernels.store`:

* **Location** — :func:`db_dir` defaults to the automaton store's
  directory (explicit override > ``$REPRO_CACHE_DIR`` >
  ``./.repro-cache``), so one ``--cache-dir`` governs both stores.  The
  file name embeds :data:`SCHEMA_VERSION`; bumping it orphans old
  databases (they are simply never opened again), never misreads them.
* **Durability** — WAL journal mode with ``synchronous=NORMAL``: writers
  append to the log and readers never block them, which is what lets N
  worker processes share one database.  Row batches are written in one
  transaction, so a killed writer loses at most its in-flight batch —
  committed rows are never torn.
* **Corruption** — any :class:`sqlite3.DatabaseError` that is not a
  transient operational error means *recompute*: the database (and its
  ``-wal``/``-shm`` companions) is unlinked and reopened once; if that
  fails too the store degrades to a pass-through (lookups miss, writes
  are dropped).  It never raises into an oracle.
* **Observability** — ``db.write`` / ``db.evict`` / ``db.corrupt``
  counters land in :data:`repro.obs.metrics.DEFAULT` (the service layer
  adds ``db.hit`` / ``db.miss`` / ``db.preload``), and through it the
  run ledgers.

Connections are per-process: a :class:`MeasurementDB` carried into a
forked worker notices the pid change and reopens its handle, because
sqlite connections must never cross a fork.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import sqlite3
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.obs import metrics as obs_metrics

__all__ = [
    "SCHEMA_VERSION",
    "DB_FILENAME",
    "MeasurementDB",
    "request_digest",
    "db_dir",
    "set_db_dir",
    "db_path",
    "db_enabled",
    "set_db_enabled",
    "db_disabled",
    "get_db",
    "close_db",
]

#: Bump on any change to the schema or digest rule.  The version is part
#: of the file name, so old databases become invisible, never misread.
SCHEMA_VERSION = 1

DB_FILENAME = f"measurements-v{SCHEMA_VERSION}.sqlite"

#: How long a writer waits on a locked database before giving up and
#: dropping its batch (writes are an optimization, never a requirement).
BUSY_TIMEOUT_SECONDS = 10.0

#: sqlite's default variable limit is 999; chunk IN() lookups below it.
_IN_CHUNK = 400

_DB_DIR: Path | None = None
_ENABLED = True
_DB: "MeasurementDB | None" = None


def request_digest(setup: Sequence[int], probe: Sequence[int]) -> bytes:
    """Digest of one measurement request.

    The digest covers the *nested* ``(setup, probe)`` pair — the same
    invariant :meth:`repro.core.oracle.CachingOracle.memo_key` documents:
    ``([1], [2, 3])`` and ``([1, 2], [3])`` replay the same accesses but
    count different misses, so the split must stay in the key.
    """
    payload = repr((tuple(setup), tuple(probe))).encode()
    return hashlib.blake2s(payload, digest_size=16).digest()


# -- directory / enablement --------------------------------------------------
def db_dir() -> Path:
    """The database directory.

    Defaults to the automaton store's directory (explicit override >
    ``$REPRO_CACHE_DIR`` > ``./.repro-cache``), so both persistent
    artifact stores live together and one ``--cache-dir`` governs both.
    """
    if _DB_DIR is not None:
        return _DB_DIR
    from repro.kernels import store

    return store.cache_dir()


def set_db_dir(path: str | os.PathLike | None) -> None:
    """Override the database directory (None restores the shared rule)."""
    global _DB_DIR
    _DB_DIR = Path(path) if path is not None else None


def db_path() -> Path:
    """Where the current schema's database lives (existing or not)."""
    return db_dir() / DB_FILENAME


def db_enabled() -> bool:
    """True when the measurement DB may be read or written."""
    return _ENABLED


def set_db_enabled(enabled: bool) -> None:
    """Globally enable or disable the measurement DB."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextlib.contextmanager
def db_disabled():
    """Temporarily bypass the measurement DB (cold benchmarks, tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def get_db() -> "MeasurementDB":
    """The shared per-process database handle for the current directory.

    Re-resolved on every call: if :func:`db_dir` changed (a test moved
    the cache dir, the CLI passed ``--cache-dir``), the stale handle is
    closed and a fresh one opened at the new path.
    """
    global _DB
    path = db_path()
    if _DB is None or _DB.path != path:
        if _DB is not None:
            _DB.close()
        _DB = MeasurementDB(path)
    return _DB


def close_db() -> None:
    """Close the shared handle (tests, directory changes, shutdown)."""
    global _DB
    if _DB is not None:
        _DB.close()
        _DB = None


class MeasurementDB:
    """One measurement database file; lazy, fork-safe, never raises.

    All failure handling lives here so the service layer and oracles
    above stay straight-line:

    * transient errors (locked database, unwritable directory) degrade
      the one operation — a lookup misses, a write is dropped;
    * corruption unlinks the file and reopens once (``db.corrupt``);
    * a second corruption marks the handle dead: every later operation
      is a cheap no-op pass-through.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        self._recovered = False
        self._dead = False

    # -- connection lifecycle ------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=BUSY_TIMEOUT_SECONDS)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(BUSY_TIMEOUT_SECONDS * 1000)}")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS measurements ("
            " scope TEXT NOT NULL,"
            " digest BLOB NOT NULL,"
            " setup_len INTEGER NOT NULL,"
            " probe_len INTEGER NOT NULL,"
            " misses INTEGER,"
            " hits BLOB,"
            " PRIMARY KEY (scope, digest)"
            ") WITHOUT ROWID"
        )
        conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema', ?)",
            (str(SCHEMA_VERSION),),
        )
        row = conn.execute("SELECT value FROM meta WHERE key = 'schema'").fetchone()
        if row is None or row[0] != str(SCHEMA_VERSION):
            # The file name embeds the version, so a mismatch means the
            # file was tampered with; rebuild it like any corruption.
            conn.close()
            raise sqlite3.DatabaseError("measurement DB schema mismatch")
        conn.commit()
        return conn

    def _connection(self) -> sqlite3.Connection | None:
        """The live connection, or None (disabled / dead / unopenable)."""
        if self._dead or not db_enabled():
            return None
        if self._conn is not None and self._pid != os.getpid():
            # Forked child: the parent's connection must not be used (or
            # even closed) here; drop the reference and reopen.
            self._conn = None
        if self._conn is None:
            try:
                self._conn = self._open()
            except sqlite3.OperationalError:
                return None  # unwritable/locked: degrade this operation
            except sqlite3.DatabaseError:
                return self._handle_corrupt()
            self._pid = os.getpid()
        return self._conn

    def _handle_corrupt(self) -> sqlite3.Connection | None:
        """Unlink the damaged database and reopen once; then give up."""
        obs_metrics.DEFAULT.incr("db.corrupt")
        if self._conn is not None:
            with contextlib.suppress(sqlite3.Error):
                self._conn.close()
            self._conn = None
        for suffix in ("", "-wal", "-shm"):
            with contextlib.suppress(OSError):
                os.unlink(f"{self.path}{suffix}")
        if self._recovered:
            self._dead = True
            return None
        self._recovered = True
        try:
            self._conn = self._open()
        except (sqlite3.Error, OSError):
            self._conn = None
            self._dead = True
            return None
        self._pid = os.getpid()
        return self._conn

    def close(self) -> None:
        """Close the underlying connection (reopened lazily if reused)."""
        if self._conn is not None and self._pid == os.getpid():
            with contextlib.suppress(sqlite3.Error):
                self._conn.close()
        self._conn = None

    # -- data plane ----------------------------------------------------------
    def get_many(
        self, scope: str, digests: Sequence[bytes]
    ) -> dict[bytes, tuple[int | None, bytes | None]]:
        """Rows for ``digests`` under ``scope``; absent keys are misses."""
        conn = self._connection()
        if conn is None or not digests:
            return {}
        found: dict[bytes, tuple[int | None, bytes | None]] = {}
        try:
            for start in range(0, len(digests), _IN_CHUNK):
                chunk = list(digests[start : start + _IN_CHUNK])
                marks = ",".join("?" * len(chunk))
                rows = conn.execute(
                    "SELECT digest, misses, hits FROM measurements"
                    f" WHERE scope = ? AND digest IN ({marks})",
                    (scope, *chunk),
                )
                for digest, misses, hits in rows:
                    found[bytes(digest)] = (misses, hits)
        except sqlite3.OperationalError:
            return found
        except sqlite3.DatabaseError:
            self._handle_corrupt()
            return {}
        return found

    def load_scope(self, scope: str) -> dict[bytes, tuple[int | None, bytes | None]]:
        """Every row of one scope, for the service's warm-start memo."""
        conn = self._connection()
        if conn is None:
            return {}
        try:
            rows = conn.execute(
                "SELECT digest, misses, hits FROM measurements WHERE scope = ?",
                (scope,),
            ).fetchall()
        except sqlite3.OperationalError:
            return {}
        except sqlite3.DatabaseError:
            self._handle_corrupt()
            return {}
        return {bytes(digest): (misses, hits) for digest, misses, hits in rows}

    def put_many(
        self,
        scope: str,
        rows: Iterable[tuple[bytes, int, int, int | None, bytes | None]],
    ) -> int:
        """Write ``(digest, setup_len, probe_len, misses, hits)`` rows.

        One transaction for the whole batch (all-or-nothing under a
        mid-write kill).  A re-written row keeps whichever of
        ``misses``/``hits`` the new row leaves as NULL, so the miss-count
        and hit-vector paths fill in the same row instead of clobbering
        each other.  Returns the number of rows written (0 when the
        write was dropped).
        """
        conn = self._connection()
        if conn is None:
            return 0
        rows = list(rows)
        if not rows:
            return 0
        try:
            with conn:
                conn.executemany(
                    "INSERT INTO measurements"
                    " (scope, digest, setup_len, probe_len, misses, hits)"
                    " VALUES (?, ?, ?, ?, ?, ?)"
                    " ON CONFLICT (scope, digest) DO UPDATE SET"
                    " misses = COALESCE(excluded.misses, misses),"
                    " hits = COALESCE(excluded.hits, hits)",
                    [(scope, *row) for row in rows],
                )
        except sqlite3.OperationalError:
            return 0  # locked beyond the busy timeout: drop the batch
        except sqlite3.DatabaseError:
            self._handle_corrupt()
            return 0
        obs_metrics.DEFAULT.incr("db.write", len(rows))
        return len(rows)

    # -- maintenance ---------------------------------------------------------
    def stats(self) -> dict:
        """Inventory: file size, per-scope row counts, totals."""
        conn = self._connection()
        scopes: list[dict] = []
        total = 0
        if conn is not None:
            try:
                for scope, count in conn.execute(
                    "SELECT scope, COUNT(*) FROM measurements"
                    " GROUP BY scope ORDER BY scope"
                ):
                    scopes.append({"scope": scope, "rows": count})
                    total += count
            except sqlite3.DatabaseError:
                self._handle_corrupt()
                scopes, total = [], 0
        size = 0
        for suffix in ("", "-wal"):
            with contextlib.suppress(OSError):
                size += os.stat(f"{self.path}{suffix}").st_size
        return {
            "path": str(self.path),
            "exists": self.path.exists(),
            "schema_version": SCHEMA_VERSION,
            "enabled": db_enabled() and not self._dead,
            "scopes": scopes,
            "total_rows": total,
            "total_bytes": size,
        }

    def clear(self, scope: str | None = None) -> int:
        """Delete rows (one scope, or all); returns the count removed."""
        conn = self._connection()
        if conn is None:
            return 0
        try:
            with conn:
                if scope is None:
                    cursor = conn.execute("DELETE FROM measurements")
                else:
                    cursor = conn.execute(
                        "DELETE FROM measurements WHERE scope = ?", (scope,)
                    )
        except sqlite3.OperationalError:
            return 0
        except sqlite3.DatabaseError:
            self._handle_corrupt()
            return 0
        removed = cursor.rowcount if cursor.rowcount and cursor.rowcount > 0 else 0
        if removed:
            obs_metrics.DEFAULT.incr("db.evict", removed)
        return removed

    def export_rows(self, scope: str | None = None) -> Iterator[dict]:
        """Yield rows as JSON-friendly dicts (CLI ``db export``)."""
        conn = self._connection()
        if conn is None:
            return
        query = (
            "SELECT scope, digest, setup_len, probe_len, misses, hits"
            " FROM measurements"
        )
        params: tuple = ()
        if scope is not None:
            query += " WHERE scope = ?"
            params = (scope,)
        query += " ORDER BY scope, digest"
        try:
            rows = conn.execute(query, params).fetchall()
        except sqlite3.OperationalError:
            return
        except sqlite3.DatabaseError:
            self._handle_corrupt()
            return
        for row_scope, digest, setup_len, probe_len, misses, hits in rows:
            yield {
                "scope": row_scope,
                "digest": bytes(digest).hex(),
                "setup_len": setup_len,
                "probe_len": probe_len,
                "misses": misses,
                "hits": list(bytes(hits)) if hits is not None else None,
            }
