"""Oracle service: the shared broker between clients and the DB.

An :class:`OracleService` sits between any number of measurement
clients (inference runs, identification, benches, runner workers) and
one *scope* of the measurement database:

* **Warm start** — the first query pulls the scope's entire row set
  into an in-memory digest-keyed memo (one indexed ``SELECT``), so a
  warm rerun answers every request at dictionary speed instead of one
  round-trip per measurement (``db.preload`` counts the rows).
* **Batching + coalescing** — a batch of requests is answered in one
  pass: duplicates within the batch collapse to a single measurement,
  requests already in the memo are served directly (``db.hit``), and
  only the distinct unresolved remainder is delegated — in one batched
  :meth:`~repro.core.oracle.OracleProtocol.query` call, which for a
  simulated oracle is one kernel/vector engine invocation
  (``db.miss`` counts these).
* **Write-back** — freshly measured results are written to the DB in
  one transaction, so every other process sharing the database (and
  every future run) inherits them.

Services are shared per scope within a process (:func:`shared_service`),
so two clients reverse-engineering the same policy coalesce their
queries through one memo — the "many clients, one measurement
substrate" shape.  Cross-process sharing goes through the database
itself: WAL mode lets ``--jobs N`` workers read and write one file
concurrently.

:class:`ResponseCache` is the hit-vector sibling, backing
:func:`repro.core.distinguish.responses` when opted in: it persists the
full per-access hit/miss vector (one byte per access) in the same row
schema, keyed by probe under a per-policy scope.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.obs import metrics as obs_metrics
from repro.measuredb import db as _db

__all__ = [
    "OracleService",
    "ResponseCache",
    "adopt_scope_rows",
    "preload_scopes",
    "reset_services",
    "shared_service",
]

Request = tuple[Sequence[int], Sequence[int]]

_SERVICES: dict[str, "OracleService"] = {}
_RESPONSE_CACHES: dict[str, "ResponseCache"] = {}


def shared_service(scope: str) -> "OracleService":
    """The process-wide service for ``scope`` (created on first use)."""
    service = _SERVICES.get(scope)
    if service is None:
        service = _SERVICES[scope] = OracleService(scope)
    return service


def shared_response_cache(scope: str) -> "ResponseCache":
    """The process-wide response cache for ``scope``."""
    cache = _RESPONSE_CACHES.get(scope)
    if cache is None:
        cache = _RESPONSE_CACHES[scope] = ResponseCache(scope)
    return cache


def reset_services() -> None:
    """Drop all shared services and their memos (tests, dir changes)."""
    _SERVICES.clear()
    _RESPONSE_CACHES.clear()


def preload_scopes(scopes: Sequence[str]) -> dict[str, dict[bytes, int]]:
    """Warm the shared services for ``scopes``; return their memos.

    The runner calls this in the parent — overlapped with in-flight
    worker compute — and broadcasts the returned snapshot (scope ->
    digest memo) over shared memory so every worker adopts the rows
    instead of re-reading sqlite.  ``db.preload`` counts here, once,
    exactly as a serial run would.
    """
    snapshot: dict[str, dict[bytes, int]] = {}
    for scope in scopes:
        service = shared_service(scope)
        service.preload()
        snapshot[scope] = dict(service._memo)
    return snapshot


def adopt_scope_rows(snapshot: dict[str, dict[bytes, int]]) -> None:
    """Merge a broadcast memo snapshot into this process's services.

    Counter-silent by design: the broadcasting parent already counted
    the ``db.preload``, and parallel/serial counter parity requires the
    adopting workers not to count it again.
    """
    for scope, rows in snapshot.items():
        shared_service(scope).adopt_rows(rows)


class OracleService:
    """Batched, coalescing measurement broker for one scope."""

    def __init__(self, scope: str) -> None:
        if not scope:
            raise ValueError("OracleService needs a non-empty scope")
        self.scope = scope
        self._memo: dict[bytes, int] = {}
        self._preloaded = False

    def _ensure_preloaded(self) -> None:
        if self._preloaded:
            return
        self._preloaded = True
        if not _db.db_enabled():
            return
        rows = _db.get_db().load_scope(self.scope)
        loaded = 0
        for digest, (misses, _hits) in rows.items():
            if misses is not None:
                self._memo[digest] = misses
                loaded += 1
        if loaded:
            obs_metrics.DEFAULT.incr("db.preload", loaded)

    def preload(self) -> int:
        """Warm the memo from the database now; returns the memo size.

        Idempotent.  The runner uses this to pull a scope's rows while
        worker chunks are already in flight, instead of every worker
        paying the first-query ``SELECT`` itself.
        """
        self._ensure_preloaded()
        return len(self._memo)

    def adopt_rows(self, rows: dict[bytes, int]) -> None:
        """Merge a peer's memo snapshot; marks the scope preloaded.

        Silent on the ``db.*`` counters: the broadcasting parent already
        counted the preload, and a worker re-counting it would break the
        runner's parallel == serial counter parity.  Rows written to the
        database after the snapshot are simply re-measured (and written
        back) by whoever needs them — correctness never depends on the
        snapshot being complete.
        """
        self._memo.update(rows)
        self._preloaded = True

    def query(self, requests: Sequence[Request], inner) -> list[int]:
        """Answer ``requests`` in order; delegate the unknown to ``inner``.

        ``inner`` is any :class:`~repro.core.oracle.OracleProtocol`; it
        is consulted once per *distinct* unresolved request (duplicates
        within the batch coalesce) and the fresh results are written
        back to the database.  ``db.hit`` counts requests answered
        without a new measurement, ``db.miss`` the delegated ones.
        """
        self._ensure_preloaded()
        keyed = [
            (tuple(setup), tuple(probe)) for setup, probe in requests
        ]
        digests = [_db.request_digest(setup, probe) for setup, probe in keyed]
        pending: list[tuple[tuple[int, ...], tuple[int, ...], bytes]] = []
        seen: set[bytes] = set()
        for (setup, probe), digest in zip(keyed, digests):
            if digest not in self._memo and digest not in seen:
                seen.add(digest)
                pending.append((setup, probe, digest))
        metrics = obs_metrics.DEFAULT
        served = len(requests) - len(pending)
        if served:
            metrics.incr("db.hit", served)
        if pending:
            metrics.incr("db.miss", len(pending))
            measured = inner.query([(setup, probe) for setup, probe, _ in pending])
            writes = []
            for (setup, probe, digest), misses in zip(pending, measured):
                self._memo[digest] = misses
                writes.append((digest, len(setup), len(probe), misses, None))
            if _db.db_enabled():
                _db.get_db().put_many(self.scope, writes)
        return [self._memo[digest] for digest in digests]


class ResponseCache:
    """Persistent per-probe hit-vector cache (distinguish/identify).

    Rows live under a dedicated scope; the hit vector is stored as one
    byte per access (``b"\\x01"`` hit, ``b"\\x00"`` miss) in the ``hits``
    column, with ``misses`` kept consistent so miss-count consumers of
    the same row see the same measurement.
    """

    def __init__(self, scope: str) -> None:
        self.scope = scope
        self._memo: dict[bytes, tuple[bool, ...]] = {}
        self._preloaded = False

    def _ensure_preloaded(self) -> None:
        if self._preloaded:
            return
        self._preloaded = True
        if not _db.db_enabled():
            return
        rows = _db.get_db().load_scope(self.scope)
        loaded = 0
        for digest, (_misses, hits) in rows.items():
            if hits is not None:
                self._memo[digest] = tuple(byte == 1 for byte in bytes(hits))
                loaded += 1
        if loaded:
            obs_metrics.DEFAULT.incr("db.preload", loaded)

    def lookup(
        self, probes: Sequence[Sequence[int]]
    ) -> tuple[list[tuple[bool, ...] | None], list[int]]:
        """Cached vectors per probe plus the indices still unresolved."""
        self._ensure_preloaded()
        found: list[tuple[bool, ...] | None] = []
        missing: list[int] = []
        hits = 0
        for index, probe in enumerate(probes):
            digest = _db.request_digest((), probe)
            vector = self._memo.get(digest)
            if vector is None:
                missing.append(index)
            else:
                hits += 1
            found.append(vector)
        metrics = obs_metrics.DEFAULT
        if hits:
            metrics.incr("db.hit", hits)
        if missing:
            metrics.incr("db.miss", len(missing))
        return found, missing

    def store(
        self,
        probes: Sequence[Sequence[int]],
        vectors: Sequence[tuple[bool, ...]],
    ) -> None:
        """Memoize and persist freshly computed hit vectors."""
        writes = []
        for probe, vector in zip(probes, vectors):
            digest = _db.request_digest((), probe)
            self._memo[digest] = tuple(vector)
            blob = bytes(1 if hit else 0 for hit in vector)
            misses = sum(1 for hit in vector if not hit)
            writes.append((digest, 0, len(vector), misses, blob))
        if writes and _db.db_enabled():
            _db.get_db().put_many(self.scope, writes)
