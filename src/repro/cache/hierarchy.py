"""Multi-level cache hierarchies.

Models the memory-side behaviour relevant to the paper's measurements:
which levels a line lands in, when lower levels back-invalidate upper
ones, and how many accesses reach each level.  Timing is not modelled —
the reverse-engineering algorithms observe *event counts* (per-level hits
and misses), which is also what the hardware performance counters used by
the paper report.

Inclusion behaviour is configured per level (``CacheConfig.inclusion``,
describing the level's relation to the levels *above* it, i.e. closer to
the core):

* ``"inclusive"`` — the level is filled on every demand miss that passes
  through it, and evicting a line back-invalidates all upper levels
  (Intel L3 before Skylake-SP).
* ``"nine"`` — non-inclusive non-exclusive: filled on demand misses, no
  back-invalidation (typical Intel L2).
* ``"exclusive"`` — demand misses bypass the level; it is populated only
  by victims evicted from the level directly above, and a hit migrates
  the line upward, removing it locally (AMD-style victim cache; included
  for completeness of the evaluation).

Writes are write-allocate/write-back: a store dirties the line in L1 and
dirty victims are written back to the next level that holds the line (or
to memory).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.stats import HierarchyStats
from repro.errors import ConfigurationError
from repro.policies import PolicyFactory
from repro.util.rng import SeededRng


@dataclass(frozen=True)
class HierarchyAccessResult:
    """What one access did at every level."""

    address: int
    hit_level: str | None  # level name, or None for a memory access
    level_hits: tuple[tuple[str, bool], ...]  # (level name, hit) in walk order

    @property
    def served_by_memory(self) -> bool:
        """True when no cache level held the line."""
        return self.hit_level is None


class CacheHierarchy:
    """An ordered stack of caches, L1 first, backed by memory."""

    def __init__(
        self,
        configs: Sequence[CacheConfig],
        policies: Sequence[str | PolicyFactory],
        rng: SeededRng | None = None,
    ) -> None:
        if not configs:
            raise ConfigurationError("hierarchy needs at least one level")
        if len(configs) != len(policies):
            raise ConfigurationError("one policy per level is required")
        if configs[0].inclusion == "exclusive":
            raise ConfigurationError("the first level cannot be exclusive")
        names = [config.name for config in configs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate level names: {names}")
        rng = rng if rng is not None else SeededRng(0)
        self.levels = [
            Cache(config, policy, rng=rng.fork(config.name))
            for config, policy in zip(configs, policies)
        ]
        self.stats = HierarchyStats(
            levels={cache.name: cache.stats for cache in self.levels}
        )

    @property
    def level_names(self) -> list[str]:
        """Names of the levels, L1 first."""
        return [cache.name for cache in self.levels]

    def level(self, name: str) -> Cache:
        """Return the cache level called ``name``."""
        for cache in self.levels:
            if cache.name == name:
                return cache
        raise KeyError(f"no cache level named {name!r}")

    # -- the access path ----------------------------------------------------
    def access(
        self, address: int, write: bool = False, demand: bool = True
    ) -> HierarchyAccessResult:
        """Perform one load (or store) and propagate fills and victims.

        Prefetchers pass ``demand=False``: the access moves cache state
        exactly like a load, but no demand counter changes — hardware
        ``MEM_LOAD_RETIRED``-style events count retired demand loads only.
        """
        walk: list[tuple[str, bool]] = []
        hit_index: int | None = None
        for index, cache in enumerate(self.levels):
            hit = cache.lookup_touch(address, write=write and index == 0, demand=demand)
            walk.append((cache.name, hit))
            if hit:
                hit_index = index
                break
        if hit_index is None:
            if demand:
                self.stats.memory_accesses += 1
            top_fill_source = len(self.levels)
        else:
            top_fill_source = hit_index
            hit_cache = self.levels[hit_index]
            if hit_cache.config.inclusion == "exclusive" and hit_index > 0:
                # Exclusive hit: the line migrates upward.
                hit_cache.invalidate(address)
        self._fill_upwards(address, top_fill_source, write=write, demand=demand)
        hit_level = self.levels[hit_index].name if hit_index is not None else None
        return HierarchyAccessResult(
            address=address, hit_level=hit_level, level_hits=tuple(walk)
        )

    def _fill_upwards(
        self, address: int, source_index: int, write: bool, demand: bool = True
    ) -> None:
        """Fill the line into levels above ``source_index`` (exclusive skip)."""
        for index in range(source_index - 1, -1, -1):
            cache = self.levels[index]
            if index > 0 and cache.config.inclusion == "exclusive":
                continue  # populated by victims only
            if cache.probe(address):
                continue  # already present (e.g. refilled via back path)
            result = cache.fill(address, write=write and index == 0, demand=demand)
            if result.evicted_address is not None:
                self._handle_victim(index, result.evicted_address, result.evicted_dirty)
            if cache.config.inclusion == "inclusive" and result.evicted_address is not None:
                self._back_invalidate(index, result.evicted_address)

    def _handle_victim(self, level_index: int, victim: int, dirty: bool) -> None:
        """Route a victim evicted from ``level_index`` downwards."""
        next_index = level_index + 1
        if next_index < len(self.levels):
            next_cache = self.levels[next_index]
            if next_cache.config.inclusion == "exclusive":
                if not next_cache.probe(victim):
                    result = next_cache.fill(victim, write=dirty)
                    if result.evicted_address is not None:
                        self._handle_victim(next_index, result.evicted_address, result.evicted_dirty)
                elif dirty:
                    next_cache.mark_dirty(victim)
                return
        if dirty:
            self._writeback(next_index, victim)

    def _writeback(self, start_index: int, victim: int) -> None:
        """Write a dirty victim into the first lower level holding it."""
        for index in range(start_index, len(self.levels)):
            if self.levels[index].mark_dirty(victim):
                return
        self.stats.memory_accesses += 1

    def _back_invalidate(self, level_index: int, address: int) -> None:
        """Inclusive eviction: remove the line from all upper levels."""
        for index in range(level_index - 1, -1, -1):
            self.levels[index].invalidate(address)

    # -- maintenance ----------------------------------------------------------
    def flush(self) -> None:
        """Flush every level (statistics are kept)."""
        for cache in self.levels:
            cache.flush()

    def reset(self) -> None:
        """Flush every level and zero all statistics."""
        for cache in self.levels:
            cache.reset()
        self.stats.memory_accesses = 0

    def check_inclusion_invariants(self) -> list[str]:
        """Return a list of inclusion violations (empty = consistent).

        Used by tests and by :mod:`repro.hardware` self-checks:

        * every line in a level above an *inclusive* level must also be in
          the inclusive level;
        * a line may never be resident both in an *exclusive* level and in
          any level above it.
        """
        violations = []
        for index, cache in enumerate(self.levels):
            if cache.config.inclusion == "inclusive":
                below = cache.resident_addresses()
                for upper in self.levels[:index]:
                    for address in upper.resident_addresses():
                        if address not in below:
                            violations.append(
                                f"{upper.name} holds {address:#x} not in inclusive {cache.name}"
                            )
            if cache.config.inclusion == "exclusive":
                resident = cache.resident_addresses()
                for upper in self.levels[:index]:
                    overlap = resident & upper.resident_addresses()
                    for address in sorted(overlap):
                        violations.append(
                            f"{address:#x} resident in exclusive {cache.name} and in {upper.name}"
                        )
        return violations
