"""Physical address decomposition for set-associative caches."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.util.bits import extract_bits


@dataclass(frozen=True)
class DecomposedAddress:
    """An address split into tag, set index and line offset."""

    tag: int
    set_index: int
    offset: int


class AddressCodec:
    """Splits and reassembles physical addresses for one cache geometry.

    With the classic ``"bits"`` index function the tag excludes the index
    bits and ``compose`` is the exact inverse of ``decompose``.  With a
    hashed index function (``"xor-fold"``) the set is not recoverable
    from any address bit range, so the *full line number* serves as the
    tag; ``compose`` then reassembles the address from the tag alone.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._offset_bits = config.offset_bits
        self._index_bits = config.index_bits
        self._hashed = config.index_hash != "bits"

    def _hash_index(self, line_number: int) -> int:
        # XOR all index-width chunks of the line number together: the
        # simplest stand-in for sliced LLC addressing, preserving its key
        # property that equal low index bits no longer imply equal sets.
        folded = 0
        remaining = line_number
        if self._index_bits == 0:
            return 0
        while remaining:
            folded ^= remaining & ((1 << self._index_bits) - 1)
            remaining >>= self._index_bits
        return folded

    def decompose(self, address: int) -> DecomposedAddress:
        """Split ``address`` into (tag, set index, offset)."""
        if address < 0:
            raise ValueError(f"addresses must be non-negative, got {address}")
        offset = extract_bits(address, 0, self._offset_bits)
        if self._hashed:
            line_number = address >> self._offset_bits
            return DecomposedAddress(
                tag=line_number, set_index=self._hash_index(line_number), offset=offset
            )
        set_index = extract_bits(address, self._offset_bits, self._index_bits)
        tag = address >> (self._offset_bits + self._index_bits)
        return DecomposedAddress(tag=tag, set_index=set_index, offset=offset)

    def compose(self, tag: int, set_index: int, offset: int = 0) -> int:
        """Reassemble an address from its components.

        For hashed indexing the tag is the full line number and
        ``set_index`` only sanity-checks against its hash.
        """
        if not 0 <= set_index < self.config.num_sets:
            raise ValueError(f"set_index {set_index} out of range")
        if not 0 <= offset < self.config.line_size:
            raise ValueError(f"offset {offset} out of range")
        if self._hashed:
            if self._hash_index(tag) != set_index:
                raise ValueError("set_index does not match the hashed tag")
            return (tag << self._offset_bits) | offset
        return (tag << (self._offset_bits + self._index_bits)) | (
            set_index << self._offset_bits
        ) | offset

    def line_address(self, address: int) -> int:
        """Return ``address`` rounded down to its line base."""
        return address & ~(self.config.line_size - 1)

    def same_set_address(self, set_index: int, ordinal: int) -> int:
        """Return the ``ordinal``-th distinct line address mapping to a set.

        Useful for building eviction sets in tests; the measurement harness
        builds its addresses through virtual memory instead.  With hashed
        indexing the addresses are found by scanning line numbers — which
        is exactly why real attacks against sliced LLCs need eviction-set
        discovery rather than arithmetic.
        """
        if not self._hashed:
            return self.compose(tag=ordinal, set_index=set_index)
        found = 0
        line_number = 0
        while True:
            if self._hash_index(line_number) == set_index:
                if found == ordinal:
                    return line_number << self._offset_bits
                found += 1
            line_number += 1
