"""Cache geometry configuration.

A :class:`CacheConfig` captures the geometry of one cache level the same
way data sheets do — total capacity, associativity, line size — and
derives the index/offset bit layout used for physical address
decomposition.  All three geometry parameters must be powers of two, as
in every processor the paper examines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.util.bits import ilog2, is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and identity of a single cache level.

    Attributes:
        name: human-readable level name, e.g. ``"L1"``.
        size: total capacity in bytes.
        ways: associativity.
        line_size: cache line size in bytes.
        inclusion: relation to the level above: ``"inclusive"``,
            ``"exclusive"`` or ``"nine"`` (non-inclusive non-exclusive).
    """

    name: str
    size: int
    ways: int
    line_size: int = 64
    inclusion: str = "nine"
    #: Set-index function: "bits" selects the classic low index bits;
    #: "xor-fold" XORs all index-width chunks of the line address, the
    #: simplest model of the sliced/complex addressing of modern LLCs.
    #: With hashing the set of an address is no longer readable off the
    #: index bits, so eviction sets must be *discovered* (see
    #: repro.core.evictionsets).
    index_hash: str = "bits"

    num_sets: int = field(init=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_size):
            raise ConfigurationError(f"line_size must be a power of two, got {self.line_size}")
        if self.ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {self.ways}")
        if self.size % (self.ways * self.line_size) != 0:
            raise ConfigurationError(
                f"size {self.size} is not divisible by ways*line_size "
                f"({self.ways} * {self.line_size})"
            )
        num_sets = self.size // (self.ways * self.line_size)
        # Sets are selected by address bits, so their count must be a power
        # of two; size and ways need not be (e.g. Atom's 24 KiB 6-way L1).
        if not is_power_of_two(num_sets):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {num_sets}"
            )
        if self.inclusion not in ("inclusive", "exclusive", "nine"):
            raise ConfigurationError(f"unknown inclusion policy {self.inclusion!r}")
        if self.index_hash not in ("bits", "xor-fold"):
            raise ConfigurationError(f"unknown index_hash {self.index_hash!r}")
        object.__setattr__(self, "num_sets", num_sets)

    @property
    def offset_bits(self) -> int:
        """Number of line-offset bits of an address."""
        return ilog2(self.line_size)

    @property
    def index_bits(self) -> int:
        """Number of set-index bits of an address."""
        return ilog2(self.num_sets)

    @property
    def way_size(self) -> int:
        """Bytes covered by one way (the set-index aliasing stride)."""
        return self.num_sets * self.line_size

    def describe(self) -> str:
        """One-line summary, e.g. ``L1: 32 KiB, 8-way, 64 sets, 64 B lines``."""
        kib = self.size / 1024
        return (
            f"{self.name}: {kib:g} KiB, {self.ways}-way, "
            f"{self.num_sets} sets, {self.line_size} B lines ({self.inclusion})"
        )
