"""A single-level set-associative cache."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.address import AddressCodec
from repro.cache.config import CacheConfig
from repro.cache.set import CacheSet
from repro.cache.stats import CacheStats
from repro.policies import PolicyFactory
from repro.util.rng import SeededRng


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one access to a cache level."""

    hit: bool
    set_index: int
    way: int
    evicted_address: int | None
    evicted_dirty: bool = False


class Cache:
    """Physically indexed, physically tagged set-associative cache.

    Addresses are byte addresses; all accesses within one line are the
    same cache line.  The replacement policy is specified by name or
    :class:`~repro.policies.PolicyFactory` and instantiated per set, with
    a cache-global shared context for set-dueling policies.
    """

    def __init__(
        self,
        config: CacheConfig,
        policy: str | PolicyFactory = "lru",
        rng: SeededRng | None = None,
    ) -> None:
        self.config = config
        self.codec = AddressCodec(config)
        if isinstance(policy, str):
            policy = PolicyFactory(policy)
        self.policy_factory = policy
        self._rng = rng if rng is not None else SeededRng(0)
        self.shared = policy.create_shared(config.num_sets, self._rng.fork("shared"))
        self.sets = [
            CacheSet(config.ways, policy.build(config.ways, index, self.shared, self._rng))
            for index in range(config.num_sets)
        ]
        self.stats = CacheStats()

    @property
    def name(self) -> str:
        """The level name from the configuration (e.g. ``"L2"``)."""
        return self.config.name

    # -- access path -------------------------------------------------------
    def access(self, address: int, write: bool = False) -> CacheAccessResult:
        """Access ``address``; fill on miss; update statistics."""
        decomposed = self.codec.decompose(address)
        cache_set = self.sets[decomposed.set_index]
        result = cache_set.access(decomposed.tag, write=write)
        self.stats.accesses += 1
        evicted_address: int | None = None
        if result.hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            self.stats.fills += 1
            if result.evicted_tag is not None:
                self.stats.evictions += 1
                if result.evicted_dirty:
                    self.stats.writebacks += 1
                evicted_address = self.codec.compose(result.evicted_tag, decomposed.set_index)
        return CacheAccessResult(
            hit=result.hit,
            set_index=decomposed.set_index,
            way=result.way,
            evicted_address=evicted_address,
            evicted_dirty=result.evicted_dirty,
        )

    def lookup_touch(self, address: int, write: bool = False, demand: bool = True) -> bool:
        """Hit path only: touch and count, but never fill on a miss.

        Used by :class:`~repro.cache.hierarchy.CacheHierarchy`, which
        decides separately which levels the line is filled into.
        Non-demand accesses (prefetches) update replacement state but not
        the demand counters, mirroring ``MEM_LOAD_RETIRED``-style events.
        """
        decomposed = self.codec.decompose(address)
        way = self.sets[decomposed.set_index].touch_tag(decomposed.tag, write=write)
        if demand:
            self.stats.accesses += 1
        if way is None:
            if demand:
                self.stats.misses += 1
            return False
        if demand:
            self.stats.hits += 1
        return True

    def mark_dirty(self, address: int) -> bool:
        """Absorb a writeback from an upper level; True if line present."""
        decomposed = self.codec.decompose(address)
        return self.sets[decomposed.set_index].mark_dirty(decomposed.tag)

    def fill(self, address: int, write: bool = False, demand: bool = True) -> CacheAccessResult:
        """Install a line known to be absent (hierarchy fill path)."""
        decomposed = self.codec.decompose(address)
        cache_set = self.sets[decomposed.set_index]
        result = cache_set.fill(decomposed.tag, write=write)
        if demand:
            self.stats.fills += 1
        evicted_address: int | None = None
        if result.evicted_tag is not None:
            if demand:
                self.stats.evictions += 1
                if result.evicted_dirty:
                    self.stats.writebacks += 1
            evicted_address = self.codec.compose(result.evicted_tag, decomposed.set_index)
        return CacheAccessResult(
            hit=False,
            set_index=decomposed.set_index,
            way=result.way,
            evicted_address=evicted_address,
            evicted_dirty=result.evicted_dirty,
        )

    # -- non-disturbing queries ---------------------------------------------
    def probe(self, address: int) -> bool:
        """Return True if ``address`` is resident; no state change."""
        decomposed = self.codec.decompose(address)
        return self.sets[decomposed.set_index].lookup(decomposed.tag) is not None

    def resident_addresses(self) -> set[int]:
        """Return the line addresses of every resident line (test helper)."""
        addresses = set()
        for set_index, cache_set in enumerate(self.sets):
            for tag in cache_set.resident_tags():
                addresses.add(self.codec.compose(tag, set_index))
        return addresses

    # -- maintenance ---------------------------------------------------------
    def invalidate(self, address: int) -> bool:
        """Drop a line (back-invalidation path); True if it was present."""
        decomposed = self.codec.decompose(address)
        removed = self.sets[decomposed.set_index].invalidate(decomposed.tag)
        if removed:
            self.stats.invalidations += 1
        return removed

    def flush(self) -> None:
        """Invalidate all lines, reset replacement state; keep statistics."""
        for cache_set in self.sets:
            cache_set.flush()
        self.shared.reset()

    def reset(self) -> None:
        """Flush and zero statistics."""
        self.flush()
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cache {self.config.describe()} policy={self.policy_factory.name}>"
