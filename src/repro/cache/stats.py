"""Event counters for caches and hierarchies."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters accumulated by one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    fills: int = 0
    invalidations: int = 0
    writebacks: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0.0 when no accesses happened)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Hits per access (0.0 when no accesses happened)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fills = 0
        self.invalidations = 0
        self.writebacks = 0

    def snapshot(self) -> "CacheStats":
        """Return an independent copy of the current counters."""
        return CacheStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            fills=self.fills,
            invalidations=self.invalidations,
            writebacks=self.writebacks,
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Return the counter difference ``self - earlier``."""
        return CacheStats(
            accesses=self.accesses - earlier.accesses,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            fills=self.fills - earlier.fills,
            invalidations=self.invalidations - earlier.invalidations,
            writebacks=self.writebacks - earlier.writebacks,
        )


@dataclass
class HierarchyStats:
    """Per-level stats plus memory traffic for a hierarchy."""

    levels: dict[str, CacheStats] = field(default_factory=dict)
    memory_accesses: int = 0

    def reset(self) -> None:
        """Zero all per-level counters and the memory counter."""
        for stats in self.levels.values():
            stats.reset()
        self.memory_accesses = 0
