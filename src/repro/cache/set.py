"""One set of a set-associative cache."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.obs import trace as obs_trace
from repro.policies.base import ReplacementPolicy


@dataclass(frozen=True)
class SetAccessResult:
    """Outcome of one access to a set."""

    hit: bool
    way: int
    evicted_tag: int | None
    evicted_dirty: bool = False


class CacheSet:
    """Tag store and replacement state for one set.

    Invalid ways are filled first, in ascending way order, matching the
    behaviour of the Intel caches the paper probes (and the assumption the
    inference algorithms rely on when they warm a set up from cold).
    """

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        if policy.ways != ways:
            raise SimulationError(f"policy is {policy.ways}-way but set has {ways} ways")
        self.ways = ways
        self.policy = policy
        self._tags: list[int | None] = [None] * ways
        self._dirty: list[bool] = [False] * ways
        # Inverse index of _tags; every access starts with a lookup, so the
        # O(ways) scan here used to dominate whole-trace simulation time.
        self._way_of: dict[int, int] = {}

    # -- queries that do not disturb state --------------------------------
    def lookup(self, tag: int) -> int | None:
        """Return the way holding ``tag``, or None, without side effects."""
        return self._way_of.get(tag)

    def contents(self) -> list[int | None]:
        """Return the tag in each way (None = invalid)."""
        return list(self._tags)

    def resident_tags(self) -> set[int]:
        """Return the set of valid tags."""
        return set(self._way_of)

    @property
    def full(self) -> bool:
        """True when every way holds a valid line."""
        return len(self._way_of) == self.ways

    # -- state-changing operations ----------------------------------------
    def touch_tag(self, tag: int, write: bool = False) -> int | None:
        """Touch ``tag`` if resident (hit path only); return its way.

        Unlike :meth:`access` this never fills, which is what a hierarchy
        walk needs: lower levels are only filled along the chosen fill
        path, not implicitly by the lookup.
        """
        way = self.lookup(tag)
        tracer = obs_trace.ACTIVE
        if way is None:
            if tracer is not None and tracer.wants_cache:
                tracer.emit("cache.miss", tag=tag, filled=False)
            return None
        self.policy.touch(way)
        if write:
            self._dirty[way] = True
        if tracer is not None and tracer.wants_cache:
            tracer.emit("cache.hit", tag=tag, way=way)
        return way

    def mark_dirty(self, tag: int) -> bool:
        """Set the dirty bit of a resident line (writeback absorption)."""
        way = self.lookup(tag)
        if way is None:
            return False
        self._dirty[way] = True
        return True

    def access(self, tag: int, write: bool = False) -> SetAccessResult:
        """Perform one access; fill on miss; return what happened."""
        # Read the tracer global once: the hit path is the hottest line
        # in whole-trace simulation and paid for the module-attribute
        # load twice before returning.
        tracer = obs_trace.ACTIVE
        way = self.lookup(tag)
        if way is not None:
            self.policy.touch(way)
            if write:
                self._dirty[way] = True
            if tracer is not None and tracer.wants_cache:
                tracer.emit("cache.hit", tag=tag, way=way)
            return SetAccessResult(hit=True, way=way, evicted_tag=None)
        if tracer is not None and tracer.wants_cache:
            tracer.emit("cache.miss", tag=tag, filled=True)
        return self.fill(tag, write=write)

    def fill(self, tag: int, write: bool = False) -> SetAccessResult:
        """Install ``tag`` without a prior lookup (miss path)."""
        if self.lookup(tag) is not None:
            raise SimulationError(f"fill of tag {tag} that is already resident")
        evicted_tag: int | None = None
        evicted_dirty = False
        way = self._first_invalid_way()
        if way is None:
            way = self.policy.evict()
            evicted_tag = self._tags[way]
            evicted_dirty = self._dirty[way]
            if evicted_tag is not None:
                del self._way_of[evicted_tag]
        self._tags[way] = tag
        self._dirty[way] = write
        self._way_of[tag] = way
        self.policy.fill(way)
        tracer = obs_trace.ACTIVE
        if tracer is not None and tracer.wants_cache:
            if evicted_tag is not None:
                tracer.emit(
                    "cache.evict", tag=evicted_tag, way=way, dirty=evicted_dirty
                )
            tracer.emit("cache.fill", tag=tag, way=way)
        return SetAccessResult(
            hit=False, way=way, evicted_tag=evicted_tag, evicted_dirty=evicted_dirty
        )

    def invalidate(self, tag: int) -> bool:
        """Drop ``tag`` if present; replacement bits are left untouched.

        Returns True if the line was present.  Real hardware also keeps its
        replacement metadata on invalidations, so the policy is not told.
        """
        way = self.lookup(tag)
        if way is None:
            return False
        self._tags[way] = None
        self._dirty[way] = False
        del self._way_of[tag]
        return True

    def flush(self) -> None:
        """Invalidate every line and reset the replacement state."""
        self._tags = [None] * self.ways
        self._dirty = [False] * self.ways
        self._way_of = {}
        self.policy.reset()

    def preload(self, tags: list[int | None]) -> None:
        """Place ``tags[w]`` in way ``w`` without touching replacement state.

        Used by analyses that reconstruct a known state (e.g. aligning an
        inferred spec with a measured establishment arrangement).
        """
        if len(tags) != self.ways:
            raise SimulationError(f"need {self.ways} tags, got {len(tags)}")
        valid = [tag for tag in tags if tag is not None]
        if len(set(valid)) != len(valid):
            raise SimulationError("duplicate tags in preload")
        self._tags = list(tags)
        self._dirty = [False] * self.ways
        self._way_of = {tag: way for way, tag in enumerate(tags) if tag is not None}

    def clone(self) -> "CacheSet":
        """Deep copy: cloned policy, copied tag and dirty arrays."""
        copy = CacheSet(self.ways, self.policy.clone())
        copy._tags = list(self._tags)
        copy._dirty = list(self._dirty)
        copy._way_of = dict(self._way_of)
        return copy

    def state_key(self):
        """Hashable (tags, policy state) pair for state-space searches.

        Returns None when the policy is randomized.
        """
        policy_key = self.policy.state_key()
        if policy_key is None:
            return None
        return (tuple(self._tags), policy_key)

    def _first_invalid_way(self) -> int | None:
        for way, tag in enumerate(self._tags):
            if tag is None:
                return way
        return None
