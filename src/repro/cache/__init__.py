"""Set-associative cache simulation: single levels and hierarchies."""

from repro.cache.address import AddressCodec, DecomposedAddress
from repro.cache.cache import Cache, CacheAccessResult
from repro.cache.config import CacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyAccessResult
from repro.cache.set import CacheSet, SetAccessResult
from repro.cache.stats import CacheStats, HierarchyStats

__all__ = [
    "AddressCodec",
    "DecomposedAddress",
    "Cache",
    "CacheAccessResult",
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyAccessResult",
    "CacheSet",
    "SetAccessResult",
    "CacheStats",
    "HierarchyStats",
]
