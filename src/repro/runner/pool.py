"""Process-wide persistent worker pool for the experiment runner.

Every :meth:`ExperimentRunner.map` round used to build (and tear down) a
fresh ``ProcessPoolExecutor`` — a bench running a dozen experiments paid
pool spawn, artifact re-warm and trace re-pickling a dozen times.  This
module keeps one :class:`WorkerPool` alive for the whole process:
created lazily by :func:`get_pool`, reused across ``map()`` calls,
experiments and CLI subcommands, health-checked on reuse, and shut down
at interpreter exit (or explicitly via :func:`shutdown_pool`).

Design points:

* **Per-worker pipes, one task in flight each.**  Every worker owns a
  task pipe and a result pipe; the scheduler only submits to idle
  workers, so a ``send`` can never deadlock against an unread result.
  ``multiprocessing.connection.wait`` multiplexes the result pipes.
* **Per-worker restart, not per-pool.**  A dead worker is detected by
  EOF on its result pipe (or a failed health check between rounds) and
  replaced individually; healthy workers keep their warm caches.  The
  chunk the dead worker held is reported ``lost`` for the scheduler to
  retry elsewhere.
* **Shared-memory result transport.**  A worker whose chunk result
  pickles to ≥ :data:`RESULT_SHM_MIN_BYTES` writes the payload to a
  fresh shm segment and sends only the handle; the parent reads and
  unlinks it.  Failures fall back to inline pickle bytes and count
  ``runner.shm.fallbacks``.
* **Lifecycle metrics.**  ``runner.pool.spawned`` / ``.reused`` /
  ``.restarted`` flow into the ledger's KEY_COUNTERS, so a warm bench
  run can assert it spawned at most one pool.
"""

from __future__ import annotations

import atexit
import itertools
import pickle
from multiprocessing import connection, get_context
from multiprocessing import get_start_method as _default_start_method

from repro.obs import metrics as obs_metrics
from repro.runner import shm as runner_shm

__all__ = [
    "RESULT_SHM_MIN_BYTES",
    "WorkerPool",
    "get_pool",
    "pool_stats",
    "shutdown_pool",
]

#: Chunk results whose pickle is at least this big return via a
#: shared-memory segment instead of the result pipe.
RESULT_SHM_MIN_BYTES = 256 * 1024

#: Result-pipe payload tags: inline pickle, shm handle, shm fallback.
_TAG_INLINE = b"I"
_TAG_SHM = b"S"
_TAG_FALLBACK = b"F"


def _send_result(result_send, outcome) -> None:
    """Worker side: ship ``outcome`` inline or through a shm segment."""
    payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) >= RESULT_SHM_MIN_BYTES and runner_shm.shm_enabled():
        segment = runner_shm.create_blob(payload)
        if segment is not None:
            try:
                handle = pickle.dumps((segment.name, len(payload)))
                result_send.send_bytes(_TAG_SHM + handle)
            finally:
                segment.close()
            return
        result_send.send_bytes(_TAG_FALLBACK + payload)
        return
    result_send.send_bytes(_TAG_INLINE + payload)


def _worker_main(task_recv, result_send) -> None:
    """Worker loop: recv (job_id, target, args), run, send the outcome.

    Exceptions raised by the target are reported as failures rather
    than killing the worker — only real process death (signal, exit)
    costs a restart.  ``None`` is the shutdown sentinel.
    """
    while True:
        try:
            item = task_recv.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        job_id, target, args = item
        try:
            value = target(*args)
            outcome = (job_id, True, value, None)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            outcome = (job_id, False, None, f"{type(exc).__name__}: {exc}")
        try:
            _send_result(result_send, outcome)
        except Exception:
            # The value itself would not pickle; report that instead.
            try:
                _send_result(
                    result_send, (job_id, False, None, "result not picklable")
                )
            except Exception:
                return


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("process", "task_send", "result_recv", "job")

    def __init__(self, process, task_send, result_recv) -> None:
        self.process = process
        self.task_send = task_send
        self.result_recv = result_recv
        #: (job_id, meta) of the in-flight task, or None when idle.
        self.job: tuple | None = None


class WorkerPool:
    """A fixed-size pool of persistent worker processes."""

    def __init__(self, jobs: int, start_method: str | None = None) -> None:
        self.jobs = max(1, int(jobs))
        self.start_method = start_method or _default_start_method()
        self.closed = False
        self._ctx = get_context(self.start_method)
        self._job_ids = itertools.count()
        self._workers: list[_Worker] = [self._spawn() for _ in range(self.jobs)]

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self) -> _Worker:
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(task_recv, result_send),
            daemon=True,
            name="repro-runner-worker",
        )
        process.start()
        # Drop the parent's copies of the child ends so a dead worker
        # reads as EOF on its result pipe instead of hanging forever.
        task_recv.close()
        result_send.close()
        return _Worker(process, task_send, result_recv)

    def _replace(self, worker: _Worker) -> None:
        """Restart one dead worker in place; the rest keep running."""
        for handle in (worker.task_send, worker.result_recv):
            try:
                handle.close()
            except Exception:
                pass
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
        worker.process.join(timeout=1.0)
        self._workers[self._workers.index(worker)] = self._spawn()
        obs_metrics.DEFAULT.incr("runner.pool.restarted")

    def heal(self) -> None:
        """Replace workers that died idle (between rounds / externally).

        Busy workers are left to :meth:`collect`, which sees their EOF
        and reports the lost chunk alongside the restart.
        """
        for worker in list(self._workers):
            if worker.job is None and not worker.process.is_alive():
                self._replace(worker)

    def shutdown(self) -> None:
        """Stop every worker and release the shm broadcast plane."""
        if self.closed:
            return
        self.closed = True
        for worker in self._workers:
            try:
                worker.task_send.send(None)
            except Exception:
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            for handle in (worker.task_send, worker.result_recv):
                try:
                    handle.close()
                except Exception:
                    pass
        self._workers.clear()
        runner_shm.release_broadcasts()

    # -- scheduling --------------------------------------------------------
    def idle_workers(self) -> list[_Worker]:
        """Workers with no task in flight (after healing dead ones)."""
        self.heal()
        return [worker for worker in self._workers if worker.job is None]

    def busy_count(self) -> int:
        return sum(1 for worker in self._workers if worker.job is not None)

    def submit(self, worker: _Worker, target, args, meta) -> None:
        """Send one task to an idle worker; ``meta`` rides on the slot.

        Raises whatever ``Pipe.send`` raises — a pickling error leaves
        the worker reusable (nothing was written), a broken pipe means
        the worker died and the caller should :meth:`_replace` it.
        """
        if worker.job is not None:  # pragma: no cover - scheduler bug guard
            raise RuntimeError("worker already has a task in flight")
        job_id = next(self._job_ids)
        worker.job = (job_id, meta)
        try:
            worker.task_send.send((job_id, target, args))
        except Exception:
            worker.job = None
            raise

    def collect(self, timeout: float):
        """Wait up to ``timeout`` for outcomes from busy workers.

        Yields a list of ``(kind, meta, payload)`` triples with kind
        ``"done"`` (payload = the target's return value), ``"failed"``
        (payload = error string) or ``"lost"`` (worker died mid-task;
        payload is None and the worker has already been restarted).
        """
        pending = {
            worker.result_recv: worker
            for worker in self._workers
            if worker.job is not None
        }
        if not pending:
            return []
        ready = connection.wait(list(pending), timeout)
        outcomes = []
        for conn in ready:
            worker = pending[conn]
            job_id, meta = worker.job
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                self._replace(worker)
                outcomes.append(("lost", meta, None))
                continue
            tag, body = data[:1], data[1:]
            if tag == _TAG_SHM:
                name, size = pickle.loads(body)
                payload = runner_shm.read_blob(name, size, unlink=True)
                if payload is None:  # pragma: no cover - segment vanished
                    worker.job = None
                    outcomes.append(("failed", meta, "shm result segment lost"))
                    continue
                obs_metrics.DEFAULT.incr("runner.shm.bytes", size)
                outcome = pickle.loads(payload)
            else:
                if tag == _TAG_FALLBACK:
                    obs_metrics.DEFAULT.incr("runner.shm.fallbacks")
                outcome = pickle.loads(body)
            worker.job = None
            got_id, ok, value, error = outcome
            if got_id != job_id:  # pragma: no cover - protocol guard
                outcomes.append(("failed", meta, "out-of-order result"))
            elif ok:
                outcomes.append(("done", meta, value))
            else:
                outcomes.append(("failed", meta, error))
        return outcomes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else f"busy={self.busy_count()}"
        return (
            f"<WorkerPool jobs={self.jobs} "
            f"start_method={self.start_method} {state}>"
        )


# -- process-wide singleton --------------------------------------------------
_POOL: WorkerPool | None = None
_ATEXIT_REGISTERED = False


def get_pool(jobs: int, start_method: str | None = None) -> WorkerPool:
    """The process-wide pool, created lazily and reused when compatible.

    A live pool with the same worker count and start method is healed
    and handed back (``runner.pool.reused``); a mismatch shuts the old
    pool down and spawns a replacement (``runner.pool.spawned``).
    """
    global _POOL, _ATEXIT_REGISTERED
    method = start_method or _default_start_method()
    pool = _POOL
    if pool is not None and not pool.closed:
        if pool.jobs == max(1, int(jobs)) and pool.start_method == method:
            pool.heal()
            obs_metrics.DEFAULT.incr("runner.pool.reused")
            return pool
        pool.shutdown()
        _POOL = None
    pool = WorkerPool(jobs, method)
    obs_metrics.DEFAULT.incr("runner.pool.spawned")
    _POOL = pool
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_pool)
        _ATEXIT_REGISTERED = True
    return pool


def fresh_pool(jobs: int, start_method: str | None = None) -> WorkerPool:
    """A private, non-shared pool (baseline benchmarks); caller shuts down."""
    pool = WorkerPool(jobs, start_method)
    obs_metrics.DEFAULT.incr("runner.pool.spawned")
    return pool


def shutdown_pool() -> None:
    """Shut down the process-wide pool (idempotent; also runs atexit)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def pool_stats() -> dict | None:
    """Introspection: the live pool's shape, or None when none exists."""
    if _POOL is None or _POOL.closed:
        return None
    return {
        "jobs": _POOL.jobs,
        "start_method": _POOL.start_method,
        "busy": _POOL.busy_count(),
        "workers_alive": sum(1 for w in _POOL._workers if w.process.is_alive()),
    }
