"""Simulation experiment cells: the unit of work the runner schedules.

A :class:`SimCell` is one (trace x cache configuration x policy x seed)
simulation — the atom of the paper's evaluation grids.  Cells are
frozen, picklable and carry everything a worker process needs to rebuild
the cache from scratch, so a cell's result depends on nothing but the
cell itself.  That purity is what makes the memoization cache sound: two
cells with the same key *must* produce the same statistics, whether they
run serially, in a worker, or not at all.

The memo key is (trace fingerprint, config, policy name + params, seed).
The trace fingerprint is a content hash of the address sequence, not the
trace name, so two differently-named but identical traces share an
entry and a renamed-but-changed trace does not poison the cache.
"""

from __future__ import annotations

import hashlib
from array import array
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.cache import Cache, CacheConfig, CacheStats
from repro.kernels import try_simulate_trace
from repro.obs import spans as obs_spans
from repro.policies import PolicyFactory
from repro.util.rng import SeededRng, derive_seed
from repro.workloads.trace import Trace

__all__ = [
    "SimCell",
    "CellResult",
    "trace_fingerprint",
    "derive_cell_seed",
    "run_sim_cells",
    "clear_memo",
    "memo_size",
]


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace's address sequence (hex digest).

    Cached on the trace's metadata dict (which is excluded from trace
    equality), so repeated grid builds hash each trace once.
    """
    cached = trace.metadata.get("_fingerprint")
    if cached is not None:
        return cached
    hasher = hashlib.blake2s(digest_size=16)
    try:
        hasher.update(array("Q", trace.addresses).tobytes())
    except OverflowError:  # addresses beyond 64 bits: rare, still sound
        hasher.update(repr(trace.addresses).encode())
    digest = hasher.hexdigest()
    trace.metadata["_fingerprint"] = digest
    return digest


def derive_cell_seed(base_seed: int, *labels: object) -> int:
    """Stable per-cell seed from a base seed and cell coordinates.

    Sweeps that repeat a measurement across seeds (noise experiments,
    voting) should derive each repetition's seed through this instead of
    ``base_seed + i`` so that enlarging one axis of a grid never shifts
    the streams of another.  Stable across processes and runs.
    """
    return derive_seed(base_seed, *labels)


@dataclass(frozen=True)
class SimCell:
    """One simulation of ``trace`` under ``policy`` at ``config``."""

    trace: Trace
    config: CacheConfig
    policy: str
    params: tuple[tuple[str, object], ...] = ()
    seed: int = 0

    @classmethod
    def make(
        cls,
        trace: Trace,
        config: CacheConfig,
        policy: str | PolicyFactory,
        seed: int = 0,
    ) -> "SimCell":
        """Build a cell from a policy given by name or factory."""
        if isinstance(policy, PolicyFactory):
            name = policy.name
            params = tuple(sorted(policy.params.items()))
        else:
            name, params = policy, ()
        return cls(trace=trace, config=config, policy=name, params=params, seed=seed)

    @property
    def label(self) -> str:
        """Short human-readable cell identity for progress reporting."""
        return f"{self.policy}/{self.trace.name}@{self.config.name}:{self.seed}"

    def memo_key(self) -> tuple:
        """Hashable identity of the cell's *result* (content-addressed)."""
        return (
            trace_fingerprint(self.trace),
            self.config,
            self.policy,
            self.params,
            self.seed,
        )


@dataclass(frozen=True)
class CellResult:
    """Outcome of one simulated cell."""

    policy: str
    trace: str
    stats: CacheStats


def simulate_cell(cell: SimCell) -> CellResult:
    """Run one cell in the current process (worker entry point).

    Fast-pathed through the compiled kernel when it is enabled and no
    active tracer wants per-access ``cache.*`` events; the interpreted
    loop below is the bit-identical reference.  The whole cell runs
    inside a ``cell`` span, which in a worker process nests under the
    parent's ``runner.map`` span via the runner's forwarded context.
    """
    with obs_spans.span("cell", label=cell.label):
        factory = PolicyFactory(cell.policy, **dict(cell.params))
        stats = try_simulate_trace(cell.trace, cell.config, factory, cell.seed)
        if stats is None:
            cache = Cache(cell.config, factory, rng=SeededRng(cell.seed))
            access = cache.access
            for address in cell.trace.addresses:
                access(address)
            stats = cache.stats.snapshot()
    return CellResult(policy=cell.policy, trace=cell.trace.name, stats=stats)


def _prewarm_automata(cells: Sequence[SimCell]) -> None:
    """Resolve and persist the automata a parallel batch needs, once.

    Runs in the parent before the pool round: each unique
    ``(policy, params, ways)`` is compiled (or disk-loaded) here and
    persisted to the artifact store, so forked workers inherit the warm
    in-memory cache and spawned/later workers hit the warm disk cache —
    every unique automaton of a ``--jobs N`` grid is BFS-compiled at
    most once machine-wide (``kernel.compile.miss`` stays 0 in warm
    runs).  Skipped when the kernel may not run; a store that cannot
    write degrades to fork-inherited memory warmth only.
    """
    from repro import kernels
    from repro.kernels import store

    if not kernels.kernel_allowed():
        return
    entries = {(cell.policy, cell.params, cell.config.ways) for cell in cells}
    ordered = sorted(entries, key=lambda entry: (entry[0], repr(entry[1]), entry[2]))
    with obs_spans.span("prewarm", label=f"{len(ordered)} automata"):
        store.warm(ordered)


def _share_cell_traces(cells: Sequence[SimCell]) -> list[SimCell]:
    """Swap large traces for shared-memory twins before a parallel map.

    Each distinct trace's address payload is broadcast once per pool
    (:func:`repro.runner.shm.share_trace`); the cells then pickle as
    tiny handles instead of megabyte address tuples.  Cells whose trace
    is small — or when shm is unavailable — pass through unchanged, and
    results are unaffected either way: a :class:`SharedTrace` has the
    same name, addresses and fingerprint as the original.
    """
    from repro.runner import shm as runner_shm

    if not runner_shm.shm_enabled():
        return list(cells)
    shared_of: dict[int, Trace | None] = {}
    out = []
    for cell in cells:
        key = id(cell.trace)
        if key not in shared_of:
            shared_of[key] = runner_shm.share_trace(cell.trace)
        shared = shared_of[key]
        out.append(replace(cell, trace=shared) if shared is not None else cell)
    return out


#: Process-wide memoization cache: memo_key -> CellResult.
_MEMO: dict[tuple, CellResult] = {}


def clear_memo() -> None:
    """Drop every memoized cell result."""
    _MEMO.clear()


def memo_size() -> int:
    """Number of memoized cell results."""
    return len(_MEMO)


def run_sim_cells(
    cells: Sequence[SimCell],
    runner=None,
    jobs: int | None = None,
    memoize: bool = True,
) -> list[CellResult]:
    """Execute a grid of cells; return results in cell order.

    Already-memoized cells are served from the cache (and reported to
    the runner's progress hook with source ``"memo"``); the rest go
    through ``runner.map`` — serial by default, parallel when the runner
    or ``jobs`` says so.  Duplicate cells within one call run once.
    """
    from repro.runner.core import ExperimentRunner

    if runner is None:
        runner = ExperimentRunner(jobs=jobs)
    cells = list(cells)
    if not memoize:
        labels = [cell.label for cell in cells]
        if runner.parallel and cells:
            _prewarm_automata(cells)
            cells = _share_cell_traces(cells)
        return runner.map(simulate_cell, cells, labels=labels)
    results: dict[int, CellResult] = {}
    fresh: list[SimCell] = []
    fresh_keys: list[tuple] = []
    waiters: dict[tuple, list[int]] = {}
    for index, cell in enumerate(cells):
        key = cell.memo_key()
        if key in _MEMO:
            results[index] = _MEMO[key]
            runner.record(index, cell.label, 0.0, "memo")
        else:
            if key not in waiters:
                fresh.append(cell)
                fresh_keys.append(key)
            waiters.setdefault(key, []).append(index)
    fresh_labels = [cell.label for cell in fresh]
    if runner.parallel and fresh:
        _prewarm_automata(fresh)
        fresh = _share_cell_traces(fresh)
    computed = runner.map(simulate_cell, fresh, labels=fresh_labels)
    for key, result in zip(fresh_keys, computed):
        _MEMO[key] = result
        for index in waiters[key]:
            results[index] = result
    return [results[index] for index in range(len(cells))]
