"""Zero-copy shared-memory transport for the persistent worker pool.

Large read-only inputs cross the process boundary *once per pool*
instead of once per chunk: a trace's packed address payload is broadcast
into a ``multiprocessing.shared_memory`` segment and tasks carry only a
small handle (:class:`SharedTrace` pickles to its segment name).  A
worker attaches the segment on first use, builds a zero-copy numpy view
for the vector engine, and keeps the attachment for the life of the
process — so a pool that runs ten experiment rounds over the same
workload suite ships each trace's addresses exactly once.

The same blob plane carries two more payload kinds:

* preloaded measurement-DB scope rows, broadcast by the runner so every
  worker adopts the parent's warm memo instead of re-reading sqlite;
* oversized chunk *results*, which workers write to a fresh segment and
  return by handle instead of pushing megabytes through a pipe.

Everything degrades gracefully: when shared memory is unavailable,
disabled (:func:`set_shm_enabled`), or a payload will not pack, callers
fall back to plain pickling and count ``runner.shm.fallbacks``.
Segments broadcast by the parent are unlinked when the owning pool shuts
down (:func:`release_broadcasts`); already-attached workers keep their
mappings — POSIX keeps an unlinked segment alive until the last close.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
from array import array
from collections.abc import Iterator

from repro.obs import metrics as obs_metrics
from repro.workloads.trace import Trace

__all__ = [
    "MIN_TRACE_ADDRESSES",
    "SharedTrace",
    "create_blob",
    "read_blob",
    "release_broadcasts",
    "set_shm_enabled",
    "share_blob",
    "share_trace",
    "shm_available",
    "shm_disabled",
    "shm_enabled",
]

#: Traces shorter than this are pickled inline — the handle indirection
#: only pays for itself once the address payload dwarfs the task pickle.
MIN_TRACE_ADDRESSES = 2048

_ENABLED = True


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can be imported."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - all supported platforms have it
        return False
    return True


def shm_enabled() -> bool:
    """True when the shared-memory transport may be used."""
    return _ENABLED and shm_available()


def set_shm_enabled(enabled: bool) -> None:
    """Globally enable or disable the shared-memory transport."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextlib.contextmanager
def shm_disabled() -> Iterator[None]:
    """Temporarily force the pickle transport (tests, benchmarks)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


# -- low-level blob plane ----------------------------------------------------
def create_blob(payload: bytes):
    """Copy ``payload`` into a fresh shm segment; None on any failure.

    The caller owns the returned ``SharedMemory`` handle: result senders
    ``close()`` after handing the name over (the receiver unlinks);
    broadcasters keep it registered until :func:`release_broadcasts`.
    """
    if not shm_enabled():
        return None
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        segment.buf[: len(payload)] = payload
    except Exception:
        return None
    return segment


def read_blob(name: str, size: int, unlink: bool = True) -> bytes | None:
    """Read ``size`` bytes from segment ``name``; None if it is gone.

    ``unlink=True`` consumes the segment (one-shot result transport);
    ``unlink=False`` leaves it for other readers (broadcasts).
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except Exception:
        return None
    try:
        return bytes(segment.buf[:size])
    finally:
        segment.close()
        if unlink:
            with contextlib.suppress(Exception):
                segment.unlink()


# -- parent-side broadcast registry ------------------------------------------
#: key -> (SharedMemory, payload size).  Keys are content digests, so a
#: re-broadcast of the same trace or scope snapshot reuses the segment.
_BROADCASTS: dict[str, tuple[object, int]] = {}


def share_blob(key: str, payload: bytes) -> tuple[str, int] | None:
    """Broadcast ``payload`` once under ``key``; return (name, size).

    Subsequent calls with the same key return the existing segment.
    Counts ``runner.shm.broadcasts`` / ``runner.shm.bytes`` on creation;
    returns None (counting ``runner.shm.fallbacks``) when shm is off or
    segment creation fails.
    """
    entry = _BROADCASTS.get(key)
    if entry is not None:
        return entry[0].name, entry[1]
    segment = create_blob(payload)
    if segment is None:
        if shm_enabled():
            obs_metrics.DEFAULT.incr("runner.shm.fallbacks")
        return None
    _BROADCASTS[key] = (segment, len(payload))
    obs_metrics.DEFAULT.incr("runner.shm.broadcasts")
    obs_metrics.DEFAULT.incr("runner.shm.bytes", len(payload))
    return segment.name, len(payload)


def release_broadcasts() -> None:
    """Unlink every broadcast segment (pool shutdown / atexit).

    Workers that already attached keep their mappings; workers of a
    *future* pool simply trigger a fresh broadcast on next use.
    """
    for segment, _size in list(_BROADCASTS.values()):
        with contextlib.suppress(Exception):
            segment.close()
        with contextlib.suppress(Exception):
            segment.unlink()
    _BROADCASTS.clear()


def broadcast_count() -> int:
    """Number of live parent-side broadcast segments (introspection)."""
    return len(_BROADCASTS)


# -- shared traces -----------------------------------------------------------
class SharedTrace(Trace):
    """A :class:`Trace` whose address payload lives in shared memory.

    Behaves exactly like the trace it wraps — same name, addresses,
    metadata, fingerprint — but pickles to a tiny handle
    ``(segment name, count, trace name, fingerprint)`` instead of the
    address tuple.  On the worker side the addresses materialize lazily:
    ``address_array()`` is a zero-copy numpy view over the segment, and
    the ``addresses`` tuple is only rebuilt if a scalar path touches it.
    """

    @classmethod
    def _wrap(cls, trace: Trace, ref: tuple) -> "SharedTrace":
        """Parent-side constructor: full trace + broadcast handle."""
        self = object.__new__(cls)
        object.__setattr__(self, "name", trace.name)
        object.__setattr__(self, "addresses", trace.addresses)
        object.__setattr__(self, "metadata", trace.metadata)
        object.__setattr__(self, "_ref", ref)
        object.__setattr__(self, "_count", len(trace.addresses))
        object.__setattr__(self, "_segment", None)
        return self

    def __reduce__(self):
        return (_resolve_shared_trace, (self._ref,))

    def __len__(self) -> int:
        return self._count

    def __getattr__(self, attr):
        # Worker-side instances materialize ``addresses`` on first
        # scalar touch; every other missing attribute is a real miss.
        if attr == "addresses":
            value = self._materialize()
            object.__setattr__(self, "addresses", value)
            return value
        raise AttributeError(attr)

    def _materialize(self) -> tuple[int, ...]:
        segment = self.__dict__.get("_segment")
        if segment is None:  # pragma: no cover - parent side always has them
            raise AttributeError("addresses")
        data = array("Q")
        data.frombytes(bytes(segment.buf[: self._count * 8]))
        return tuple(data.tolist())

    def address_array(self):
        segment = self.__dict__.get("_segment")
        if segment is None:
            return super().address_array()
        try:
            return self._address_array
        except AttributeError:
            pass
        try:
            import numpy
        except ImportError:
            view = None
        else:
            view = numpy.frombuffer(
                segment.buf, dtype=numpy.uint64, count=self._count
            )
            view.setflags(write=False)
        object.__setattr__(self, "_address_array", view)
        return view


def share_trace(trace: Trace) -> SharedTrace | None:
    """Broadcast ``trace``'s addresses; return a handle-pickling twin.

    Returns None (caller keeps the plain trace) when the trace is small,
    shm is unavailable, the addresses exceed 64 bits, or the broadcast
    fails — every case degrades to the ordinary pickle transport.
    """
    if not shm_enabled() or len(trace) < MIN_TRACE_ADDRESSES:
        return None
    if isinstance(trace, SharedTrace):
        return trace
    payload = trace.address_bytes()
    if payload is None:
        obs_metrics.DEFAULT.incr("runner.shm.fallbacks")
        return None
    fingerprint = trace.metadata.get("_fingerprint")
    if fingerprint is None:
        # Same recipe as repro.runner.cells.trace_fingerprint, so the
        # memo layer and the transport share the cached digest.
        fingerprint = hashlib.blake2s(payload, digest_size=16).hexdigest()
        trace.metadata["_fingerprint"] = fingerprint
    shared = share_blob(f"trace:{fingerprint}", payload)
    if shared is None:
        return None
    segment_name, _size = shared
    ref = (segment_name, len(trace), trace.name, fingerprint)
    return SharedTrace._wrap(trace, ref)


#: Worker-side cache: fingerprint -> resolved SharedTrace.  One live
#: object per trace per worker process keeps the numpy view, the
#: vector engine's per-trace layout memo and the segment attachment all
#: stable across chunks and across map() rounds.
_RESOLVED: dict[str, SharedTrace] = {}


def _resolve_shared_trace(ref: tuple) -> Trace:
    """Unpickle hook: attach the broadcast segment (or die trying).

    A missing segment raises — the chunk fails, and the runner's
    retry/serial-fallback ladder re-runs those cells from the parent's
    plain traces, so correctness never depends on the broadcast.
    """
    segment_name, count, trace_name, fingerprint = ref
    cached = _RESOLVED.get(fingerprint)
    if cached is not None:
        return cached
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=segment_name)
    self = object.__new__(SharedTrace)
    object.__setattr__(self, "name", trace_name)
    object.__setattr__(self, "metadata", {"_fingerprint": fingerprint})
    object.__setattr__(self, "_ref", ref)
    object.__setattr__(self, "_count", count)
    object.__setattr__(self, "_segment", segment)
    _RESOLVED[fingerprint] = self
    return self


@atexit.register
def _close_resolved() -> None:  # pragma: no cover - interpreter shutdown
    """Drop numpy views before their segments are garbage-collected.

    Without this, shutdown-order GC can try to close a mapping while a
    zero-copy view still exports its buffer, which surfaces as noisy
    ``Exception ignored ... BufferError`` messages on exit.
    """
    for trace in _RESOLVED.values():
        trace.__dict__.pop("_address_array", None)
        segment = trace.__dict__.get("_segment")
        if segment is not None:
            with contextlib.suppress(Exception):
                segment.close()
    _RESOLVED.clear()
