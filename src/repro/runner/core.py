"""Deterministic parallel execution of independent experiment cells.

The evaluation half of the reproduction is dominated by grids of
independent simulations — (policy x workload x configuration x seed)
cells for miss-ratio matrices, agreement matrices, noise sweeps and the
E1-E12 benchmark tables.  :class:`ExperimentRunner` fans such grids out
over a :class:`concurrent.futures.ProcessPoolExecutor` with chunked
scheduling while guaranteeing that the result list is *bit-identical* to
running the cells serially in submission order:

* cells are pure functions of their task value — workers receive the
  task by pickling, never by shared mutable state;
* all seeded randomness flows through :class:`repro.util.rng.SeededRng`,
  whose stream derivation is process-stable (no ``hash()``
  randomization), so a worker derives exactly the streams the parent
  would;
* results are collected by cell index, not completion order.

Failures degrade, never abort: a chunk whose worker dies (or whose task
cannot be pickled) is retried in a fresh pool, and whatever still fails
is re-executed serially in the parent process, where a genuine task
error surfaces with its original traceback.

Observability crosses the process boundary.  Each dispatched chunk runs
against a *worker-local* :class:`~repro.obs.metrics.Metrics` store and
(when the parent has a tracer installed) a worker-local
:class:`~repro.obs.trace.Tracer` with the parent's include filter; the
chunk result carries the store's snapshot and the collected events back,
the parent merges the snapshot into :data:`repro.obs.metrics.DEFAULT`
and interleaves the event shards — in deterministic cell order, seq
numbers rebased — into its own tracer.  Span context
(:mod:`repro.obs.spans`) is forwarded too, so a cell's spans nest under
the ``runner.map`` span that scheduled it.  A parallel run therefore
produces the same counters and the same event mix as ``jobs=0``; only
wall-clock observations differ in value.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class CellTiming:
    """Timing record of one executed cell, reported to progress hooks.

    ``source`` says how the cell was executed: ``"serial"`` (runner in
    serial mode), ``"parallel"`` (worker process), ``"fallback"`` (serial
    re-execution after worker failure) or ``"memo"`` (result served from
    the memoization cache without running anything).
    """

    index: int
    label: str
    seconds: float
    source: str


#: Hook called once per finished cell with its :class:`CellTiming`.
ProgressHook = Callable[[CellTiming], None]


def _run_chunk(fn, indexed_tasks, capture=None):
    """Worker entry point: run one chunk of (index, task) pairs.

    Returns ``(rows, metrics_snapshot, events)``.  With ``capture`` set
    (a spec built by :meth:`ExperimentRunner._capture_spec`), the chunk
    runs against a fresh worker-local metrics store — and, when the
    parent traces, a worker-local tracer — whose contents travel back in
    the return value for the parent to merge.  Span context nests the
    chunk's spans under the parent's ``runner.map`` span via a
    deterministic ``w<first-cell-index>`` prefix, so ids are unique
    across chunks without any process-dependent state.
    """
    if capture is None:
        rows = []
        for index, task in indexed_tasks:
            start = time.perf_counter()
            value = fn(task)
            rows.append((index, value, time.perf_counter() - start))
        return rows, None, None

    restore_measuredb = _apply_measuredb_spec(capture.get("measuredb"))
    local = obs_metrics.Metrics()
    tracer = None
    if capture.get("trace"):
        tracer = obs_trace.Tracer(keep_events=True, include=capture.get("include"))
    previous_metrics = obs_metrics.DEFAULT
    previous_tracer = obs_trace.ACTIVE
    obs_metrics.DEFAULT = local
    obs_trace.ACTIVE = tracer
    first = indexed_tasks[0][0] if indexed_tasks else 0
    try:
        with obs_spans.adopt(capture.get("span_parent"), f"w{first}"):
            rows = []
            for index, task in indexed_tasks:
                start = time.perf_counter()
                value = fn(task)
                rows.append((index, value, time.perf_counter() - start))
    finally:
        obs_metrics.DEFAULT = previous_metrics
        obs_trace.ACTIVE = previous_tracer
        restore_measuredb()
    events = tracer.events if tracer is not None else None
    shard_dir = capture.get("shard_dir")
    if events and shard_dir:
        shard_path = Path(shard_dir) / f"shard-{first:06d}.jsonl"
        with obs_trace.JsonlWriter(shard_path) as writer:
            for event in events:
                writer(event)
    return rows, local.snapshot(), events


def _apply_measuredb_spec(spec) -> Callable[[], None]:
    """Point this process's measurement DB at the parent's; returns undo.

    Start-method-proof: a forked worker inherits the parent's overrides
    already, but a spawned one starts from defaults, and either way the
    explicit directory in the spec is what makes every worker share the
    *same* database file (WAL mode handles the concurrent writers).
    """
    if spec is None:
        return lambda: None
    from repro import measuredb

    previous = (
        measuredb.db_dir(),
        measuredb.db_enabled(),
        measuredb.hits_cache_enabled(),
    )
    measuredb.set_db_dir(spec["dir"])
    measuredb.set_db_enabled(spec["enabled"])
    measuredb.set_hits_cache_enabled(spec.get("hits", False))

    def restore() -> None:
        measuredb.set_db_dir(previous[0])
        measuredb.set_db_enabled(previous[1])
        measuredb.set_hits_cache_enabled(previous[2])

    return restore


class ExperimentRunner:
    """Ordered, fault-tolerant map over independent experiment cells.

    Args:
        jobs: worker process count; ``None``, 0 or 1 run serially in the
            parent process (the default, so existing entry points keep
            their exact behaviour unless a caller opts in).
        chunk_size: cells per worker task; defaults to spreading the
            grid over ``4 * jobs`` chunks so stragglers rebalance.
        retries: how many times a failed chunk is resubmitted to a fresh
            pool before the serial fallback runs it in the parent.
        progress: optional per-cell :data:`ProgressHook`.
        trace_shard_dir: when set and a tracer is active, each worker
            chunk also writes its events to a per-chunk JSONL shard
            (``shard-<first-cell-index>.jsonl``) in this directory, for
            post-mortems of runs that die before the parent merge.

    Every completed cell is also appended to :attr:`timings`, which the
    benchmarks use for their throughput tables.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunk_size: int | None = None,
        retries: int = 1,
        progress: ProgressHook | None = None,
        trace_shard_dir: str | Path | None = None,
    ) -> None:
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.retries = retries
        self.progress = progress
        self.trace_shard_dir = trace_shard_dir
        self.timings: list[CellTiming] = []

    @property
    def parallel(self) -> bool:
        """True when cells will be dispatched to worker processes."""
        return self.jobs is not None and self.jobs > 1

    def map(
        self,
        fn: Callable,
        tasks: Iterable,
        labels: Sequence[str] | None = None,
    ) -> list:
        """Apply ``fn`` to every task; return results in task order.

        ``fn`` must be picklable (a module-level function) for the
        parallel path; the serial path has no such constraint.  A task
        that raises re-raises in the parent after the retry/fallback
        ladder is exhausted, so error behaviour matches a plain loop.
        """
        tasks = list(tasks)
        if labels is None:
            labels = [f"cell-{index}" for index in range(len(tasks))]
        if len(labels) != len(tasks):
            raise ValueError(f"{len(tasks)} tasks but {len(labels)} labels")
        indexed = list(enumerate(tasks))
        with obs_spans.span(
            "runner.map",
            cells=len(tasks),
            jobs=self.jobs if self.parallel else 1,
        ):
            tracer = obs_trace.ACTIVE
            if tracer is not None:
                tracer.emit(
                    "runner.scheduled",
                    cells=len(tasks),
                    jobs=self.jobs if self.parallel else 1,
                )
            if not self.parallel or len(tasks) <= 1:
                return self._run_serially(fn, indexed, labels, source="serial")

            results: dict[int, object] = {}
            shards: dict[int, list] = {}
            capture = self._capture_spec()
            pending = self._chunked(indexed)
            for _attempt in range(1 + max(0, self.retries)):
                if not pending:
                    break
                pending = self._run_round(
                    fn, pending, labels, results, capture, shards
                )
            if pending:
                # Last resort: run the survivors in-process.  Deterministic
                # task errors propagate here with their original traceback.
                fallback = [pair for chunk in pending for pair in chunk]
                fallback.sort(key=lambda pair: pair[0])
                for index, value in zip(
                    (pair[0] for pair in fallback),
                    self._run_serially(fn, fallback, labels, source="fallback"),
                ):
                    results[index] = value
            self._ingest_shards(shards)
            return [results[index] for index in range(len(tasks))]

    # -- internals ---------------------------------------------------------
    def _capture_spec(self) -> dict:
        """Describe to workers what observability state to capture.

        The spec is pickled with every chunk; it carries the parent's
        span path (so worker spans nest under ``runner.map``) and, when
        a tracer is installed, its include filter and the optional shard
        directory.  Metrics capture is unconditional — merging a
        worker's store into the parent's is what keeps ``--jobs N``
        counters identical to a serial run.
        """
        from repro import measuredb

        spec: dict = {"span_parent": obs_spans.current_span()}
        spec["measuredb"] = {
            "dir": str(measuredb.db_dir()),
            "enabled": measuredb.db_enabled(),
            "hits": measuredb.hits_cache_enabled(),
        }
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            spec["trace"] = True
            spec["include"] = tracer.include
            if self.trace_shard_dir is not None:
                shard_dir = Path(self.trace_shard_dir)
                shard_dir.mkdir(parents=True, exist_ok=True)
                spec["shard_dir"] = str(shard_dir)
        return spec

    def _ingest_shards(self, shards: dict[int, list]) -> None:
        """Re-sequence buffered worker events into the parent tracer.

        Shards are interleaved in deterministic first-cell-index order,
        so the merged trace does not depend on chunk completion order.
        """
        tracer = obs_trace.ACTIVE
        if tracer is None or not shards:
            return
        for first in sorted(shards):
            tracer.ingest(shards[first])

    def _run_round(self, fn, chunks, labels, results, capture, shards) -> list:
        """Submit ``chunks`` to one fresh pool; return the failed ones."""
        failed: list = []
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                future_of = {
                    pool.submit(_run_chunk, fn, chunk, capture): chunk
                    for chunk in chunks
                }
                remaining = set(future_of)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        chunk = future_of[future]
                        try:
                            rows, worker_metrics, worker_events = future.result()
                        except Exception:
                            # Worker death, pickling failure, or a task
                            # error; all retried, then run serially.
                            obs_metrics.DEFAULT.incr("runner.chunk_retries")
                            tracer = obs_trace.ACTIVE
                            if tracer is not None:
                                tracer.emit("runner.retry", cells=len(chunk))
                            failed.append(chunk)
                            continue
                        if worker_metrics:
                            obs_metrics.DEFAULT.merge(worker_metrics)
                        if worker_events:
                            shards[chunk[0][0]] = worker_events
                        for index, value, seconds in rows:
                            results[index] = value
                            self.record(index, labels[index], seconds, "parallel")
        except Exception:
            # The pool itself failed to start or broke down wholesale.
            covered = {id(chunk) for chunk in failed}
            failed.extend(
                chunk
                for chunk in chunks
                if id(chunk) not in covered
                and any(index not in results for index, _ in chunk)
            )
        return failed

    def _run_serially(self, fn, indexed_tasks, labels, source: str) -> list:
        values = []
        for index, task in indexed_tasks:
            start = time.perf_counter()
            value = fn(task)
            self.record(index, labels[index], time.perf_counter() - start, source)
            values.append(value)
        return values

    def _chunked(self, indexed_tasks: list) -> list[list]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker balances scheduling overhead against
            # straggler rebalancing on heterogeneous cell costs.
            size = max(1, len(indexed_tasks) // (4 * (self.jobs or 1)) or 1)
        return [
            indexed_tasks[start : start + size]
            for start in range(0, len(indexed_tasks), size)
        ]

    def record(self, index: int, label: str, seconds: float, source: str) -> None:
        """Append one timing record and notify the progress hook.

        This is the single choke point every execution path (serial,
        parallel, fallback, memo) goes through, so it also carries the
        observability bookkeeping: per-source cell counters, a wall-time
        histogram, and a ``runner.cell`` trace event.
        """
        timing = CellTiming(index=index, label=label, seconds=seconds, source=source)
        self.timings.append(timing)
        metrics = obs_metrics.DEFAULT
        metrics.incr(f"runner.cells.{source}")
        metrics.observe("runner.cell_seconds", seconds)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "runner.cell",
                index=index,
                label=label,
                seconds=round(seconds, 6),
                source=source,
                memo=source == "memo",
            )
        if self.progress is not None:
            self.progress(timing)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = f"jobs={self.jobs}" if self.parallel else "serial"
        return f"<ExperimentRunner {mode} retries={self.retries}>"
