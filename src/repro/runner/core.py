"""Deterministic parallel execution of independent experiment cells.

The evaluation half of the reproduction is dominated by grids of
independent simulations — (policy x workload x configuration x seed)
cells for miss-ratio matrices, agreement matrices, noise sweeps and the
E1-E12 benchmark tables.  :class:`ExperimentRunner` fans such grids out
over a :class:`concurrent.futures.ProcessPoolExecutor` with chunked
scheduling while guaranteeing that the result list is *bit-identical* to
running the cells serially in submission order:

* cells are pure functions of their task value — workers receive the
  task by pickling, never by shared mutable state;
* all seeded randomness flows through :class:`repro.util.rng.SeededRng`,
  whose stream derivation is process-stable (no ``hash()``
  randomization), so a worker derives exactly the streams the parent
  would;
* results are collected by cell index, not completion order.

Failures degrade, never abort: a chunk whose worker dies (or whose task
cannot be pickled) is retried in a fresh pool, and whatever still fails
is re-executed serially in the parent process, where a genuine task
error surfaces with its original traceback.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class CellTiming:
    """Timing record of one executed cell, reported to progress hooks.

    ``source`` says how the cell was executed: ``"serial"`` (runner in
    serial mode), ``"parallel"`` (worker process), ``"fallback"`` (serial
    re-execution after worker failure) or ``"memo"`` (result served from
    the memoization cache without running anything).
    """

    index: int
    label: str
    seconds: float
    source: str


#: Hook called once per finished cell with its :class:`CellTiming`.
ProgressHook = Callable[[CellTiming], None]


def _run_chunk(fn, indexed_tasks):
    """Worker entry point: run one chunk of (index, task) pairs."""
    results = []
    for index, task in indexed_tasks:
        start = time.perf_counter()
        value = fn(task)
        results.append((index, value, time.perf_counter() - start))
    return results


class ExperimentRunner:
    """Ordered, fault-tolerant map over independent experiment cells.

    Args:
        jobs: worker process count; ``None``, 0 or 1 run serially in the
            parent process (the default, so existing entry points keep
            their exact behaviour unless a caller opts in).
        chunk_size: cells per worker task; defaults to spreading the
            grid over ``4 * jobs`` chunks so stragglers rebalance.
        retries: how many times a failed chunk is resubmitted to a fresh
            pool before the serial fallback runs it in the parent.
        progress: optional per-cell :data:`ProgressHook`.

    Every completed cell is also appended to :attr:`timings`, which the
    benchmarks use for their throughput tables.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunk_size: int | None = None,
        retries: int = 1,
        progress: ProgressHook | None = None,
    ) -> None:
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.retries = retries
        self.progress = progress
        self.timings: list[CellTiming] = []

    @property
    def parallel(self) -> bool:
        """True when cells will be dispatched to worker processes."""
        return self.jobs is not None and self.jobs > 1

    def map(
        self,
        fn: Callable,
        tasks: Iterable,
        labels: Sequence[str] | None = None,
    ) -> list:
        """Apply ``fn`` to every task; return results in task order.

        ``fn`` must be picklable (a module-level function) for the
        parallel path; the serial path has no such constraint.  A task
        that raises re-raises in the parent after the retry/fallback
        ladder is exhausted, so error behaviour matches a plain loop.
        """
        tasks = list(tasks)
        if labels is None:
            labels = [f"cell-{index}" for index in range(len(tasks))]
        if len(labels) != len(tasks):
            raise ValueError(f"{len(tasks)} tasks but {len(labels)} labels")
        indexed = list(enumerate(tasks))
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "runner.scheduled",
                cells=len(tasks),
                jobs=self.jobs if self.parallel else 1,
            )
        if not self.parallel or len(tasks) <= 1:
            return self._run_serially(fn, indexed, labels, source="serial")

        results: dict[int, object] = {}
        pending = self._chunked(indexed)
        for _attempt in range(1 + max(0, self.retries)):
            if not pending:
                break
            pending = self._run_round(fn, pending, labels, results)
        if pending:
            # Last resort: run the survivors in-process.  Deterministic
            # task errors propagate here with their original traceback.
            fallback = [pair for chunk in pending for pair in chunk]
            fallback.sort(key=lambda pair: pair[0])
            for index, value in zip(
                (pair[0] for pair in fallback),
                self._run_serially(fn, fallback, labels, source="fallback"),
            ):
                results[index] = value
        return [results[index] for index in range(len(tasks))]

    # -- internals ---------------------------------------------------------
    def _run_round(self, fn, chunks, labels, results) -> list:
        """Submit ``chunks`` to one fresh pool; return the failed ones."""
        failed: list = []
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                future_of = {
                    pool.submit(_run_chunk, fn, chunk): chunk for chunk in chunks
                }
                remaining = set(future_of)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        chunk = future_of[future]
                        try:
                            rows = future.result()
                        except Exception:
                            # Worker death, pickling failure, or a task
                            # error; all retried, then run serially.
                            obs_metrics.DEFAULT.incr("runner.chunk_retries")
                            tracer = obs_trace.ACTIVE
                            if tracer is not None:
                                tracer.emit("runner.retry", cells=len(chunk))
                            failed.append(chunk)
                            continue
                        for index, value, seconds in rows:
                            results[index] = value
                            self.record(index, labels[index], seconds, "parallel")
        except Exception:
            # The pool itself failed to start or broke down wholesale.
            covered = {id(chunk) for chunk in failed}
            failed.extend(
                chunk
                for chunk in chunks
                if id(chunk) not in covered
                and any(index not in results for index, _ in chunk)
            )
        return failed

    def _run_serially(self, fn, indexed_tasks, labels, source: str) -> list:
        values = []
        for index, task in indexed_tasks:
            start = time.perf_counter()
            value = fn(task)
            self.record(index, labels[index], time.perf_counter() - start, source)
            values.append(value)
        return values

    def _chunked(self, indexed_tasks: list) -> list[list]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker balances scheduling overhead against
            # straggler rebalancing on heterogeneous cell costs.
            size = max(1, len(indexed_tasks) // (4 * (self.jobs or 1)) or 1)
        return [
            indexed_tasks[start : start + size]
            for start in range(0, len(indexed_tasks), size)
        ]

    def record(self, index: int, label: str, seconds: float, source: str) -> None:
        """Append one timing record and notify the progress hook.

        This is the single choke point every execution path (serial,
        parallel, fallback, memo) goes through, so it also carries the
        observability bookkeeping: per-source cell counters, a wall-time
        histogram, and a ``runner.cell`` trace event.
        """
        timing = CellTiming(index=index, label=label, seconds=seconds, source=source)
        self.timings.append(timing)
        metrics = obs_metrics.DEFAULT
        metrics.incr(f"runner.cells.{source}")
        metrics.observe("runner.cell_seconds", seconds)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "runner.cell",
                index=index,
                label=label,
                seconds=round(seconds, 6),
                source=source,
                memo=source == "memo",
            )
        if self.progress is not None:
            self.progress(timing)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = f"jobs={self.jobs}" if self.parallel else "serial"
        return f"<ExperimentRunner {mode} retries={self.retries}>"
