"""Deterministic parallel execution of independent experiment cells.

The evaluation half of the reproduction is dominated by grids of
independent simulations — (policy x workload x configuration x seed)
cells for miss-ratio matrices, agreement matrices, noise sweeps and the
E1-E12 benchmark tables.  :class:`ExperimentRunner` fans such grids out
over the process-wide persistent :mod:`repro.runner.pool` with adaptive
chunked scheduling while guaranteeing that the result list is
*bit-identical* to running the cells serially in submission order:

* cells are pure functions of their task value — workers receive the
  task by pickling (or by shared-memory handle, see
  :mod:`repro.runner.shm`), never by shared mutable state;
* all seeded randomness flows through :class:`repro.util.rng.SeededRng`,
  whose stream derivation is process-stable (no ``hash()``
  randomization), so a worker derives exactly the streams the parent
  would;
* results are collected by cell index, not completion order, and worker
  metric/event shards merge in deterministic first-cell-index order.

Scheduling is adaptive: the first wave uses small probe chunks, then
chunk sizes follow an EWMA of observed per-cell seconds targeting
:data:`TARGET_CHUNK_SECONDS` per chunk, capped so the tail of a grid
still spreads over every worker (stragglers stay bounded).  Measurement
DB scope preloading (``preload_scopes=``) runs in the parent *while the
first wave is in flight* and is broadcast to workers over shared
memory, so neither the parent nor any worker blocks on sqlite.

Failures degrade, never abort: a chunk whose worker dies is retried on
the surviving workers (the dead one is restarted individually — the
pool survives), a chunk that cannot be pickled falls straight back, and
whatever still fails after ``retries`` attempts is re-executed serially
in the parent process, where a genuine task error surfaces with its
original traceback.

Observability crosses the process boundary.  Each dispatched chunk runs
against a *worker-local* :class:`~repro.obs.metrics.Metrics` store and
(when the parent has a tracer installed) a worker-local
:class:`~repro.obs.trace.Tracer` with the parent's include filter; the
chunk result carries the store's snapshot and the collected events back,
the parent merges the snapshots and interleaves the event shards — in
deterministic cell order, seq numbers rebased — into its own tracer.
Span context (:mod:`repro.obs.spans`) is forwarded too, so a cell's
spans nest under the ``runner.map`` span that scheduled it.  A parallel
run therefore produces the same *logical* counters and event mix as
``jobs=0``; the exceptions are the runner's own scheduling metrics
(``runner.*`` — per-source cell splits, pool lifecycle, shm transport,
adaptive chunk sizes) and cache-warmth splits (``kernel.compile.hit``
vs ``.load`` vs ``.miss``), because a persistent worker's in-memory
caches outlive the fork point — the *totals* still match, only the
warm/cold split is process-local.
"""

from __future__ import annotations

import contextlib
import hashlib
import pickle
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace

#: Adaptive chunking aims for chunks of about this much work, so pipe
#: traffic stays negligible without letting one chunk become a straggler.
TARGET_CHUNK_SECONDS = 0.2

#: Cells per probe chunk while no timing has been observed yet.
PROBE_CHUNK_CELLS = 2

#: How long one collect() pass waits before re-checking worker health.
_COLLECT_INTERVAL = 0.1


@dataclass(frozen=True)
class CellTiming:
    """Timing record of one executed cell, reported to progress hooks.

    ``source`` says how the cell was executed: ``"serial"`` (runner in
    serial mode), ``"parallel"`` (worker process), ``"fallback"`` (serial
    re-execution after worker failure) or ``"memo"`` (result served from
    the memoization cache without running anything).
    """

    index: int
    label: str
    seconds: float
    source: str


#: Hook called once per finished cell with its :class:`CellTiming`.
ProgressHook = Callable[[CellTiming], None]

#: Hook called once per completed :meth:`ExperimentRunner.map` with a
#: summary record (cells, jobs, seconds, per-source counts).  The run
#: history layer registers one to attach per-map breakdowns to the run
#: row; hooks must never raise (exceptions are swallowed — a broken
#: observer cannot fail the experiment it observes).
MapHook = Callable[[dict], None]

_MAP_HOOKS: list[MapHook] = []


def add_map_hook(hook: MapHook) -> None:
    """Register a hook invoked after every completed ``map()``."""
    if hook not in _MAP_HOOKS:
        _MAP_HOOKS.append(hook)


def remove_map_hook(hook: MapHook) -> None:
    """Unregister a previously added map hook (missing is a no-op)."""
    with contextlib.suppress(ValueError):
        _MAP_HOOKS.remove(hook)


def _run_chunk(fn, indexed_tasks, capture=None):
    """Worker entry point: run one chunk of (index, task) pairs.

    Returns ``(rows, metrics_snapshot, events)``.  With ``capture`` set
    (a spec built by :meth:`ExperimentRunner._capture_spec`), the chunk
    runs against a fresh worker-local metrics store — and, when the
    parent traces, a worker-local tracer — whose contents travel back in
    the return value for the parent to merge.  Span context nests the
    chunk's spans under the parent's ``runner.map`` span via a
    deterministic ``w<first-cell-index>`` prefix, so ids are unique
    across chunks without any process-dependent state.

    Persistent workers outlive any parent-side context manager, so the
    spec also pins the measurement-DB and kernel/store switches for the
    duration of the chunk (and restores them after): a worker spawned
    during one test or experiment must not leak its settings into the
    next.
    """
    if capture is None:
        rows = []
        for index, task in indexed_tasks:
            start = time.perf_counter()
            value = fn(task)
            rows.append((index, value, time.perf_counter() - start))
        return rows, None, None

    restore_measuredb = _apply_measuredb_spec(capture.get("measuredb"))
    restore_kernel = _apply_kernel_spec(capture.get("kernel"))
    _adopt_scope_rows(capture.get("scope_rows"))
    local = obs_metrics.Metrics()
    tracer = None
    if capture.get("trace"):
        tracer = obs_trace.Tracer(keep_events=True, include=capture.get("include"))
    previous_metrics = obs_metrics.DEFAULT
    previous_tracer = obs_trace.ACTIVE
    obs_metrics.DEFAULT = local
    obs_trace.ACTIVE = tracer
    first = indexed_tasks[0][0] if indexed_tasks else 0
    try:
        with obs_spans.adopt(capture.get("span_parent"), f"w{first}"):
            rows = []
            for index, task in indexed_tasks:
                start = time.perf_counter()
                value = fn(task)
                rows.append((index, value, time.perf_counter() - start))
    finally:
        obs_metrics.DEFAULT = previous_metrics
        obs_trace.ACTIVE = previous_tracer
        restore_kernel()
        restore_measuredb()
    events = tracer.events if tracer is not None else None
    shard_dir = capture.get("shard_dir")
    if events and shard_dir:
        shard_path = Path(shard_dir) / f"shard-{first:06d}.jsonl"
        with obs_trace.JsonlWriter(shard_path) as writer:
            for event in events:
                writer(event)
    return rows, local.snapshot(), events


def _apply_measuredb_spec(spec) -> Callable[[], None]:
    """Point this process's measurement DB at the parent's; returns undo.

    Start-method-proof: a forked worker inherits the parent's overrides
    already, but a spawned one starts from defaults, and either way the
    explicit directory in the spec is what makes every worker share the
    *same* database file (WAL mode handles the concurrent writers).
    """
    if spec is None:
        return lambda: None
    from repro import measuredb

    previous = (
        measuredb.db_dir(),
        measuredb.db_enabled(),
        measuredb.hits_cache_enabled(),
    )
    measuredb.set_db_dir(spec["dir"])
    measuredb.set_db_enabled(spec["enabled"])
    measuredb.set_hits_cache_enabled(spec.get("hits", False))

    def restore() -> None:
        measuredb.set_db_dir(previous[0])
        measuredb.set_db_enabled(previous[1])
        measuredb.set_hits_cache_enabled(previous[2])

    return restore


def _apply_kernel_spec(spec) -> Callable[[], None]:
    """Pin this process's kernel/store switches to the parent's; undo.

    A persistent worker may have been spawned under a different store
    directory (tests isolate per-test) or while the kernel was disabled
    (reference benchmarks), so each chunk carries the parent's current
    switches instead of trusting fork-time state.
    """
    if spec is None:
        return lambda: None
    from repro import kernels
    from repro.kernels import store

    previous = (
        kernels.kernel_enabled(),
        kernels.vector_enabled(),
        str(store.cache_dir()),
        store.store_enabled(),
    )
    kernels.set_kernel_enabled(spec["enabled"])
    kernels.set_vector_enabled(spec["vector"])
    if str(store.cache_dir()) != spec["store_dir"]:
        # set_cache_dir drops the persisted-artifact memo, so only
        # re-point when the directory actually changed.
        store.set_cache_dir(spec["store_dir"])
    store.set_store_enabled(spec["store_enabled"])

    def restore() -> None:
        kernels.set_kernel_enabled(previous[0])
        kernels.set_vector_enabled(previous[1])
        if str(store.cache_dir()) != previous[2]:
            store.set_cache_dir(previous[2])
        store.set_store_enabled(previous[3])

    return restore


#: Digests of scope-row broadcasts this worker has already adopted.
_ADOPTED_SCOPES: set[str] = set()


def _adopt_scope_rows(spec) -> None:
    """Merge a broadcast measurement-DB memo snapshot into this worker.

    ``spec`` is either an shm handle ``(segment name, size, digest)`` or
    an inline snapshot dict (the pickle fallback).  Adoption is silent
    on the ``db.*`` counters and idempotent; a missing segment simply
    leaves the worker to preload from sqlite on first query.
    """
    if spec is None:
        return
    from repro import measuredb

    if isinstance(spec, tuple):
        name, size, digest = spec
        if digest in _ADOPTED_SCOPES:
            return
        from repro.runner import shm as runner_shm

        payload = runner_shm.read_blob(name, size, unlink=False)
        if payload is None:
            return
        measuredb.adopt_scope_rows(pickle.loads(payload))
        _ADOPTED_SCOPES.add(digest)
    else:
        measuredb.adopt_scope_rows(spec)


class _AdaptiveChunker:
    """Chunk sizing from observed cell timings (probe -> EWMA -> cap).

    With no observations yet, chunks are :data:`PROBE_CHUNK_CELLS` small
    so the pipeline fills fast and timing data arrives early.  Once cell
    timings flow in, the size targets :data:`TARGET_CHUNK_SECONDS` of
    work per chunk, capped at ``ceil(remaining / (2 * jobs))`` so the
    tail of the grid still spreads across every worker — the straggler
    bound.  An explicit ``chunk_size`` disables adaptation entirely.
    """

    def __init__(self, fixed: int | None, jobs: int) -> None:
        self.fixed = fixed
        self.jobs = max(1, jobs or 1)
        self._ewma: float | None = None

    def observe(self, seconds: float) -> None:
        if self._ewma is None:
            self._ewma = seconds
        else:
            self._ewma = 0.7 * self._ewma + 0.3 * seconds

    def next_size(self, remaining: int) -> int:
        if self.fixed is not None:
            return max(1, min(self.fixed, remaining))
        if self._ewma is None:
            size = PROBE_CHUNK_CELLS
        else:
            size = int(TARGET_CHUNK_SECONDS / max(self._ewma, 1e-7))
        straggler_cap = max(1, -(-remaining // (2 * self.jobs)))
        size = max(1, min(size, straggler_cap, remaining))
        obs_metrics.DEFAULT.observe("runner.chunk.adaptive", size)
        return size


class ExperimentRunner:
    """Ordered, fault-tolerant map over independent experiment cells.

    Args:
        jobs: worker process count; ``None``, 0 or 1 run serially in the
            parent process (the default, so existing entry points keep
            their exact behaviour unless a caller opts in).
        chunk_size: cells per worker task; default adapts chunk sizes to
            observed cell timings (see :class:`_AdaptiveChunker`).
        retries: how many times a failed chunk is resubmitted to the
            surviving workers before the serial fallback runs it in the
            parent.
        progress: optional per-cell :data:`ProgressHook`.
        trace_shard_dir: when set and a tracer is active, each worker
            chunk also writes its events to a per-chunk JSONL shard
            (``shard-<first-cell-index>.jsonl``) in this directory, for
            post-mortems of runs that die before the parent merge.
        start_method: multiprocessing start method for the pool
            (``"fork"``/``"spawn"``/``"forkserver"``; default: the
            platform's).
        reuse_pool: use the process-wide persistent pool (the default);
            ``False`` spawns a private pool per ``map()`` call, which is
            the old per-round behaviour the benchmarks use as baseline.
        preload_scopes: measurement-DB scopes to preload in the parent,
            overlapped with the first in-flight chunks and broadcast to
            workers over shared memory.

    Every completed cell is also appended to :attr:`timings`, which the
    benchmarks use for their throughput tables.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunk_size: int | None = None,
        retries: int = 1,
        progress: ProgressHook | None = None,
        trace_shard_dir: str | Path | None = None,
        start_method: str | None = None,
        reuse_pool: bool = True,
        preload_scopes: Sequence[str] | None = None,
    ) -> None:
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.retries = retries
        self.progress = progress
        self.trace_shard_dir = trace_shard_dir
        self.start_method = start_method
        self.reuse_pool = reuse_pool
        self.preload_scopes = list(preload_scopes) if preload_scopes else []
        self.timings: list[CellTiming] = []

    @property
    def parallel(self) -> bool:
        """True when cells will be dispatched to worker processes."""
        return self.jobs is not None and self.jobs > 1

    def map(
        self,
        fn: Callable,
        tasks: Iterable,
        labels: Sequence[str] | None = None,
    ) -> list:
        """Apply ``fn`` to every task; return results in task order.

        ``fn`` must be picklable (a module-level function) for the
        parallel path; the serial path has no such constraint.  A task
        that raises re-raises in the parent after the retry/fallback
        ladder is exhausted, so error behaviour matches a plain loop.
        """
        tasks = list(tasks)
        if labels is None:
            labels = [f"cell-{index}" for index in range(len(tasks))]
        if len(labels) != len(tasks):
            raise ValueError(f"{len(tasks)} tasks but {len(labels)} labels")
        indexed = list(enumerate(tasks))
        start = time.perf_counter()
        timings_before = len(self.timings)
        try:
            return self._map(fn, indexed, labels)
        finally:
            if _MAP_HOOKS:
                sources: dict[str, int] = {}
                for timing in self.timings[timings_before:]:
                    sources[timing.source] = sources.get(timing.source, 0) + 1
                record = {
                    "cells": len(tasks),
                    "jobs": self.jobs if self.parallel else 1,
                    "seconds": round(time.perf_counter() - start, 6),
                    "sources": sources,
                }
                for hook in list(_MAP_HOOKS):
                    with contextlib.suppress(Exception):
                        hook(record)

    def _map(self, fn: Callable, indexed: list, labels: Sequence[str]) -> list:
        tasks = [task for _, task in indexed]
        with obs_spans.span(
            "runner.map",
            cells=len(tasks),
            jobs=self.jobs if self.parallel else 1,
        ):
            tracer = obs_trace.ACTIVE
            if tracer is not None:
                tracer.emit(
                    "runner.scheduled",
                    cells=len(tasks),
                    jobs=self.jobs if self.parallel else 1,
                )
            if not self.parallel or len(tasks) <= 1:
                self._preload_parent_scopes()
                return self._run_serially(fn, indexed, labels, source="serial")

            results: dict[int, object] = {}
            shards: dict[int, list] = {}
            metric_shards: dict[int, dict] = {}
            capture = self._capture_spec()
            try:
                unfinished = self._run_pooled(
                    fn, indexed, labels, results, capture, shards, metric_shards
                )
            except Exception:
                # The pool plane itself failed (cannot spawn processes,
                # broken pipes wholesale): run everything still missing
                # in-process.
                unfinished = [
                    [pair for pair in indexed if pair[0] not in results]
                ]
            pending = [pair for chunk in unfinished for pair in chunk]
            if pending:
                # Last resort: run the survivors in-process.  Deterministic
                # task errors propagate here with their original traceback.
                pending.sort(key=lambda pair: pair[0])
                for index, value in zip(
                    (pair[0] for pair in pending),
                    self._run_serially(fn, pending, labels, source="fallback"),
                ):
                    results[index] = value
            self._merge_metric_shards(metric_shards)
            self._ingest_shards(shards)
            return [results[index] for index in range(len(tasks))]

    # -- internals ---------------------------------------------------------
    def _capture_spec(self) -> dict:
        """Describe to workers what process state to capture and pin.

        The spec is pickled with every chunk; it carries the parent's
        span path (so worker spans nest under ``runner.map``), the
        measurement-DB and kernel/store switches (persistent workers
        outlive any parent-side context), and, when a tracer is
        installed, its include filter and the optional shard directory.
        Metrics capture is unconditional — merging a worker's store into
        the parent's is what keeps ``--jobs N`` counters identical to a
        serial run.
        """
        from repro import kernels, measuredb
        from repro.kernels import store

        spec: dict = {"span_parent": obs_spans.current_span()}
        spec["measuredb"] = {
            "dir": str(measuredb.db_dir()),
            "enabled": measuredb.db_enabled(),
            "hits": measuredb.hits_cache_enabled(),
        }
        spec["kernel"] = {
            "enabled": kernels.kernel_enabled(),
            "vector": kernels.vector_enabled(),
            "store_dir": str(store.cache_dir()),
            "store_enabled": store.store_enabled(),
        }
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            spec["trace"] = True
            spec["include"] = tracer.include
            if self.trace_shard_dir is not None:
                shard_dir = Path(self.trace_shard_dir)
                shard_dir.mkdir(parents=True, exist_ok=True)
                spec["shard_dir"] = str(shard_dir)
        return spec

    def _preload_parent_scopes(self) -> None:
        """Serial-path scope preload (parity with the parallel path)."""
        if not self.preload_scopes:
            return
        from repro import measuredb

        measuredb.preload_scopes(self.preload_scopes)

    def _broadcast_scope_rows(self, capture: dict) -> None:
        """Preload scopes in the parent and broadcast the memos.

        Called once per ``map()`` *after* the first chunk wave is in
        flight, so the sqlite read overlaps worker compute.  Chunks
        submitted afterwards carry the shm handle (or the inline
        snapshot when shm is unavailable); earlier chunks just preload
        lazily like before — correctness never depends on the overlap.
        """
        from repro import measuredb
        from repro.runner import shm as runner_shm

        snapshot = measuredb.preload_scopes(self.preload_scopes)
        if not any(snapshot.values()):
            return
        payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.blake2s(payload, digest_size=16).hexdigest()
        shared = runner_shm.share_blob(f"scopes:{digest}", payload)
        if shared is not None:
            name, size = shared
            capture["scope_rows"] = (name, size, digest)
        else:
            capture["scope_rows"] = snapshot

    def _merge_metric_shards(self, metric_shards: dict[int, dict]) -> None:
        """Merge worker metric snapshots in deterministic cell order."""
        for first in sorted(metric_shards):
            obs_metrics.DEFAULT.merge(metric_shards[first])

    def _ingest_shards(self, shards: dict[int, list]) -> None:
        """Re-sequence buffered worker events into the parent tracer.

        Shards are interleaved in deterministic first-cell-index order,
        so the merged trace does not depend on chunk completion order.
        """
        tracer = obs_trace.ACTIVE
        if tracer is None or not shards:
            return
        for first in sorted(shards):
            tracer.ingest(shards[first])

    def _note_chunk_retry(self, chunk: list) -> None:
        obs_metrics.DEFAULT.incr("runner.chunk_retries")
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit("runner.retry", cells=len(chunk))

    def _run_pooled(
        self, fn, indexed, labels, results, capture, shards, metric_shards
    ) -> list[list]:
        """Dispatch every (index, task) pair through the worker pool.

        Returns the chunks that exhausted their retries (or could not be
        pickled) for the caller's serial fallback.  The scheduling loop
        keeps every idle worker fed: retried chunks first, then fresh
        chunks carved off the queue at the adaptive size.  A worker that
        dies mid-chunk is restarted individually and its chunk re-queued
        on the survivors — the pool, and every other in-flight chunk,
        keeps running.
        """
        from repro.runner import pool as runner_pool

        if self.reuse_pool:
            pool = runner_pool.get_pool(self.jobs, self.start_method)
        else:
            pool = runner_pool.fresh_pool(self.jobs, self.start_method)
        chunker = _AdaptiveChunker(self.chunk_size, self.jobs)
        queue: deque = deque(indexed)
        retry: deque = deque()
        fallback: list[list] = []
        attempts: dict[int, int] = {}
        preload_pending = bool(self.preload_scopes)

        def give_up(chunk: list) -> None:
            self._note_chunk_retry(chunk)
            first = chunk[0][0]
            attempts[first] = attempts.get(first, 0) + 1
            if attempts[first] <= max(0, self.retries):
                retry.append(chunk)
            else:
                fallback.append(chunk)

        try:
            while queue or retry or pool.busy_count():
                for worker in pool.idle_workers():
                    if retry:
                        chunk = retry.popleft()
                    elif queue:
                        size = chunker.next_size(len(queue))
                        chunk = [queue.popleft() for _ in range(size)]
                    else:
                        break
                    try:
                        pool.submit(worker, _run_chunk, (fn, chunk, capture), chunk)
                    except (OSError, EOFError):
                        # The worker died under us; restart it and let
                        # the chunk take a retry slot.
                        pool._replace(worker)
                        give_up(chunk)
                    except Exception:
                        # fn or a task does not pickle — deterministic,
                        # straight to the serial fallback (still noted
                        # as a chunk retry, like any failed chunk).
                        self._note_chunk_retry(chunk)
                        fallback.append(chunk)
                if preload_pending:
                    # First wave is in flight: overlap the sqlite read
                    # with worker compute, then broadcast the rows.
                    preload_pending = False
                    self._broadcast_scope_rows(capture)
                if not pool.busy_count():
                    if queue or retry:
                        continue
                    break
                for kind, chunk, payload in pool.collect(_COLLECT_INTERVAL):
                    if kind == "done":
                        rows, worker_metrics, worker_events = payload
                        first = chunk[0][0]
                        if worker_metrics:
                            metric_shards[first] = worker_metrics
                        if worker_events:
                            shards[first] = worker_events
                        for index, value, seconds in rows:
                            results[index] = value
                            chunker.observe(seconds)
                            self.record(index, labels[index], seconds, "parallel")
                    else:  # "failed" (task raised) or "lost" (worker died)
                        give_up(chunk)
        finally:
            if not self.reuse_pool:
                pool.shutdown()
        return fallback

    def _run_serially(self, fn, indexed_tasks, labels, source: str) -> list:
        values = []
        for index, task in indexed_tasks:
            start = time.perf_counter()
            value = fn(task)
            self.record(index, labels[index], time.perf_counter() - start, source)
            values.append(value)
        return values

    def record(self, index: int, label: str, seconds: float, source: str) -> None:
        """Append one timing record and notify the progress hook.

        This is the single choke point every execution path (serial,
        parallel, fallback, memo) goes through, so it also carries the
        observability bookkeeping: per-source cell counters, a wall-time
        histogram, and a ``runner.cell`` trace event.
        """
        timing = CellTiming(index=index, label=label, seconds=seconds, source=source)
        self.timings.append(timing)
        metrics = obs_metrics.DEFAULT
        metrics.incr(f"runner.cells.{source}")
        metrics.observe("runner.cell_seconds", seconds)
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(
                "runner.cell",
                index=index,
                label=label,
                seconds=round(seconds, 6),
                source=source,
                memo=source == "memo",
            )
        if self.progress is not None:
            self.progress(timing)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = f"jobs={self.jobs}" if self.parallel else "serial"
        return f"<ExperimentRunner {mode} retries={self.retries}>"
