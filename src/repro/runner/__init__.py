"""Parallel experiment runner for the evaluation grids.

See :mod:`repro.runner.core` for the scheduling/fault model,
:mod:`repro.runner.cells` for the simulation cell + memoization layer,
:mod:`repro.runner.pool` for the process-wide persistent worker pool
and :mod:`repro.runner.shm` for the shared-memory transport plane.
"""

from repro.runner.cells import (
    CellResult,
    SimCell,
    clear_memo,
    derive_cell_seed,
    memo_size,
    run_sim_cells,
    simulate_cell,
    trace_fingerprint,
)
from repro.runner.core import (
    CellTiming,
    ExperimentRunner,
    MapHook,
    ProgressHook,
    add_map_hook,
    remove_map_hook,
)
from repro.runner.pool import WorkerPool, get_pool, pool_stats, shutdown_pool
from repro.runner.shm import (
    SharedTrace,
    set_shm_enabled,
    share_trace,
    shm_disabled,
    shm_enabled,
)

__all__ = [
    "CellResult",
    "CellTiming",
    "ExperimentRunner",
    "MapHook",
    "ProgressHook",
    "add_map_hook",
    "remove_map_hook",
    "SharedTrace",
    "SimCell",
    "WorkerPool",
    "clear_memo",
    "derive_cell_seed",
    "get_pool",
    "memo_size",
    "pool_stats",
    "run_sim_cells",
    "set_shm_enabled",
    "share_trace",
    "shm_disabled",
    "shm_enabled",
    "shutdown_pool",
    "simulate_cell",
    "trace_fingerprint",
]
