"""Parallel experiment runner for the evaluation grids.

See :mod:`repro.runner.core` for the scheduling/fault model and
:mod:`repro.runner.cells` for the simulation cell + memoization layer.
"""

from repro.runner.cells import (
    CellResult,
    SimCell,
    clear_memo,
    derive_cell_seed,
    memo_size,
    run_sim_cells,
    simulate_cell,
    trace_fingerprint,
)
from repro.runner.core import CellTiming, ExperimentRunner, ProgressHook

__all__ = [
    "CellResult",
    "CellTiming",
    "ExperimentRunner",
    "ProgressHook",
    "SimCell",
    "clear_memo",
    "derive_cell_seed",
    "memo_size",
    "run_sim_cells",
    "simulate_cell",
    "trace_fingerprint",
]
