"""Abstract cache domains for LRU must/may analysis.

The classic Ferdinand/Wilhelm abstract interpretation used by WCET
tools, reproduced here because it is what the paper's "evaluation for
predictability" ultimately serves: once a cache's policy is known, these
domains turn it into guaranteed hit/miss classifications.

Both domains track, per cache set, an *age* for each line address:

* **must** ages are upper bounds on the concrete LRU age — a line in the
  must state is guaranteed cached.  Join at control-flow merges is
  key intersection with the maximum age; accessing ``s`` rejuvenates it
  and ages exactly the lines with a smaller upper bound.
* **may** ages are lower bounds — a line *missing* from the may state is
  guaranteed absent.  Join is key union with the minimum age; accessing
  ``s`` ages the lines with age less than or equal to ``s``'s.

Lines age out of the domain at the associativity bound.  For the
policy-generic analysis of :mod:`repro.analysis.generic` the bound is
not the associativity but the policy's *minimum life span*, so the
capacity is a constructor parameter.

Soundness is checked empirically by the property tests in
``tests/test_props_analysis.py``: on random programs and random paths,
must-classified accesses never miss and may-absent accesses never hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.address import AddressCodec
from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError

# Per-set abstract content: line address -> age bound.
_SetState = dict[int, int]


@dataclass
class AbstractCacheState:
    """Shared machinery of the must and may domains.

    ``capacity`` is the age at which a line leaves the domain (the
    associativity for plain LRU analysis; the policy's minimum life span
    for the generic analysis).
    """

    config: CacheConfig
    capacity: int
    kind: str  # "must" or "may"
    sets: dict[int, _SetState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("must", "may"):
            raise ConfigurationError(f"unknown domain kind {self.kind!r}")
        if self.capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._codec = AddressCodec(self.config)

    # -- queries -----------------------------------------------------------
    def _locate(self, address: int) -> tuple[int, int]:
        line = self._codec.line_address(address)
        return self._codec.decompose(line).set_index, line

    def contains(self, address: int) -> bool:
        """Is the line within the domain (guaranteed in / maybe in)?"""
        set_index, line = self._locate(address)
        return line in self.sets.get(set_index, {})

    def age_of(self, address: int) -> int | None:
        """The tracked age bound, or None if outside the domain."""
        set_index, line = self._locate(address)
        return self.sets.get(set_index, {}).get(line)

    # -- transfer function ---------------------------------------------------
    def access(self, address: int) -> None:
        """Abstract LRU update for one access."""
        set_index, line = self._locate(address)
        content = self.sets.setdefault(set_index, {})
        own_age = content.get(line, self.capacity)
        for other, age in list(content.items()):
            if other == line:
                continue
            ages = age < own_age if self.kind == "must" else age <= own_age
            if ages:
                if age + 1 >= self.capacity:
                    del content[other]
                else:
                    content[other] = age + 1
        content[line] = 0

    # -- lattice operations -----------------------------------------------------
    def join(self, other: "AbstractCacheState") -> "AbstractCacheState":
        """Merge two incoming states at a control-flow join."""
        if (self.config, self.capacity, self.kind) != (
            other.config,
            other.capacity,
            other.kind,
        ):
            raise ConfigurationError("joining incompatible abstract states")
        merged: dict[int, _SetState] = {}
        set_indices = set(self.sets) | set(other.sets)
        for set_index in set_indices:
            mine = self.sets.get(set_index, {})
            theirs = other.sets.get(set_index, {})
            if self.kind == "must":
                lines = set(mine) & set(theirs)
                merged_set = {line: max(mine[line], theirs[line]) for line in lines}
            else:
                lines = set(mine) | set(theirs)
                merged_set = {
                    line: min(
                        mine.get(line, self.capacity), theirs.get(line, self.capacity)
                    )
                    for line in lines
                }
            if merged_set:
                merged[set_index] = merged_set
        return AbstractCacheState(
            config=self.config, capacity=self.capacity, kind=self.kind, sets=merged
        )

    def copy(self) -> "AbstractCacheState":
        """Deep copy."""
        return AbstractCacheState(
            config=self.config,
            capacity=self.capacity,
            kind=self.kind,
            sets={index: dict(content) for index, content in self.sets.items()},
        )

    def key(self) -> tuple:
        """Hashable fingerprint for fixpoint convergence checks."""
        return tuple(
            (index, tuple(sorted(content.items())))
            for index, content in sorted(self.sets.items())
            if content
        )

    @classmethod
    def empty(
        cls, config: CacheConfig, kind: str, capacity: int | None = None
    ) -> "AbstractCacheState":
        """The cold-cache starting state (nothing cached)."""
        return cls(
            config=config,
            capacity=capacity if capacity is not None else config.ways,
            kind=kind,
        )
