"""Access classification: always-hit / always-miss / unclassified.

Combines the must and may fixpoints: at each access site,

* the line being in the *must* state means every execution hits;
* the line being absent from the *may* state means every execution
  misses;
* anything else stays unclassified (the honest third verdict).

:func:`check_soundness` replays random concrete paths through the
program on a real simulated cache and verifies the classifications —
the property tests run it over random programs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.fixpoint import solve
from repro.analysis.program import Program
from repro.cache import Cache, CacheConfig

ALWAYS_HIT = "always-hit"
ALWAYS_MISS = "always-miss"
UNCLASSIFIED = "unclassified"


@dataclass(frozen=True)
class AccessClassification:
    """Verdict for one access site."""

    block: str
    index: int
    address: int
    verdict: str


@dataclass(frozen=True)
class AnalysisResult:
    """All classifications of one program/cache combination."""

    classifications: tuple[AccessClassification, ...]
    capacity: int

    def verdict_of(self, block: str, index: int) -> str:
        """Verdict for the access at ``(block, index)``."""
        for classification in self.classifications:
            if classification.block == block and classification.index == index:
                return classification.verdict
        raise KeyError(f"no access at {block}[{index}]")

    def counts(self) -> dict[str, int]:
        """Histogram of verdicts."""
        histogram = Counter(c.verdict for c in self.classifications)
        return {
            ALWAYS_HIT: histogram.get(ALWAYS_HIT, 0),
            ALWAYS_MISS: histogram.get(ALWAYS_MISS, 0),
            UNCLASSIFIED: histogram.get(UNCLASSIFIED, 0),
        }

    @property
    def guaranteed_hit_fraction(self) -> float:
        """Fraction of access sites proven always-hit."""
        if not self.classifications:
            return 0.0
        return self.counts()[ALWAYS_HIT] / len(self.classifications)


def analyze(
    program: Program,
    config: CacheConfig,
    capacity: int | None = None,
    may_capacity: int | None = None,
) -> AnalysisResult:
    """Run must and may analyses and classify every access site.

    ``capacity`` overrides the must-domain age bound and
    ``may_capacity`` the may-domain bound.  For plain LRU both default
    to the associativity.  The policy-generic analysis passes the
    policy's *minimum life span* as the must bound (hits guaranteed
    within that window) and its *evict* metric as the may bound (absence
    guaranteed only after that many distinct accesses) — both sound
    replacements derived in :mod:`repro.analysis.generic`.
    """
    must_states = solve(program, config, "must", capacity)
    may_states = solve(program, config, "may", may_capacity)
    classifications = []
    for name, block in program.blocks.items():
        must = must_states[name].copy()
        may = may_states[name].copy()
        for index, address in enumerate(block.accesses):
            if must.contains(address):
                verdict = ALWAYS_HIT
            elif not may.contains(address):
                verdict = ALWAYS_MISS
            else:
                verdict = UNCLASSIFIED
            classifications.append(
                AccessClassification(name, index, address, verdict)
            )
            must.access(address)
            may.access(address)
    return AnalysisResult(
        classifications=tuple(classifications),
        capacity=capacity if capacity is not None else config.ways,
    )


def check_soundness(
    program: Program,
    config: CacheConfig,
    result: AnalysisResult,
    policy: str = "lru",
    paths: int = 50,
    seed: int = 0,
) -> list[str]:
    """Replay random paths concretely; return violation descriptions.

    An empty list means no classification was contradicted on the
    sampled paths.  Must verdicts are checked against the given policy
    (LRU for the plain analysis; the generic analysis passes the policy
    whose minimum life span produced the capacity).
    """
    violations = []
    for path in program.random_paths(paths, seed=seed):
        cache = Cache(config, policy)
        for block_name in path:
            for index, address in enumerate(program.blocks[block_name].accesses):
                hit = cache.access(address).hit
                verdict = result.verdict_of(block_name, index)
                if verdict == ALWAYS_HIT and not hit:
                    violations.append(
                        f"{block_name}[{index}] ({address:#x}) classified "
                        f"always-hit but missed"
                    )
                if verdict == ALWAYS_MISS and hit:
                    violations.append(
                        f"{block_name}[{index}] ({address:#x}) classified "
                        f"always-miss but hit"
                    )
    return violations
