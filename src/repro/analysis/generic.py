"""Policy-generic cache analysis via the minimum-life-span metric.

The LRU must analysis generalises to *any* deterministic policy P with
one number, the **minimum life span** mls(P): the smallest number of
accesses to pairwise-distinct other blocks that can possibly evict a
just-accessed block, starting from any reachable state.  If fewer than
mls(P) distinct blocks were accessed since a block's last access, the
block is still cached under P — so the LRU must domain with capacity
mls(P) is a sound must analysis for P.  (This is the generic-analysis
construction of Reineke's predictability framework; the companion may
bound is the evict metric of :mod:`repro.eval.predictability`.)

Known values reproduced by the computation (and asserted in tests):

* mls(LRU, a) = a — the optimum;
* mls(FIFO, a) = 1 — a hit block can be the next victim, so FIFO gets
  (almost) no guaranteed hits from this analysis;
* mls(PLRU, a) = log2(a) + 1 — an a-way PLRU only *guarantees* as much
  as a (log2(a)+1)-way LRU, the classic PLRU result;
* mls(bit-PLRU/MRU, a) = 2.

mls is computed exactly as a shortest adversarial eviction: breadth-
first search over (policy state, target way) pairs where the adversary
may miss (evicting the policy's victim) or claim a hit on any
not-yet-claimed non-target block.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.classify import AnalysisResult, analyze
from repro.analysis.program import Program
from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError
from repro.eval.predictability import evict_metric_policy, reachable_full_states
from repro.policies import ReplacementPolicy

OLD = "O"  # unclaimed non-target block (may absorb one adversary hit)
CLAIMED = "C"  # non-target block already accessed (blocks are distinct)
TARGET = "T"


def mls_metric_spec(spec, max_states: int = 2_000_000) -> int | None:
    """Exact minimum life span of a permutation policy.

    Positions abstract the ways away, so the search state is just the
    label of each position and the initial states are exactly the
    positions a just-accessed block can occupy: ``hit_perms[i][i]`` for
    a hit at any position ``i``, or the insertion position after a fill.
    """
    from repro.policies.permutation import apply_permutation

    ways = spec.ways
    if ways == 1:
        return 1
    start_positions = {spec.hit_perms[i][i] for i in range(ways)}
    start_positions.add(spec.insertion_position)
    queue: deque = deque()
    seen = set()
    for position in start_positions:
        labels = tuple(
            TARGET if p == position else OLD for p in range(ways)
        )
        if labels not in seen:
            seen.add(labels)
            queue.append((labels, 0))
    evict_pos = spec.eviction_position
    while queue:
        labels, depth = queue.popleft()
        successors = []
        if labels[evict_pos] == TARGET:
            # A miss would evict the target right now.
            return depth + 1
        relocated = list(labels)
        relocated[evict_pos] = CLAIMED  # the incoming block is claimed
        successors.append(tuple(apply_permutation(relocated, spec.miss_perm)))
        for position, label in enumerate(labels):
            if label == OLD:
                claimed = list(labels)
                claimed[position] = CLAIMED
                successors.append(
                    tuple(apply_permutation(claimed, spec.hit_perms[position]))
                )
        for new_labels in successors:
            if new_labels not in seen:
                if len(seen) >= max_states:
                    raise ConfigurationError(
                        f"mls search exceeded {max_states} states"
                    )
                seen.add(new_labels)
                queue.append((new_labels, depth + 1))
    return None


def mls_metric_policy(policy: ReplacementPolicy, max_states: int = 300_000) -> int | None:
    """Exact minimum life span of a deterministic policy.

    Permutation policies are analysed in position space (cheap at any
    relevant associativity); others fall back to a way-level search,
    which stays shallow because their minimum life spans are small.
    Returns None for randomized policies (no guarantee exists).
    """
    if not policy.DETERMINISTIC:
        return None
    ways = policy.ways
    if ways == 1:
        return 1  # the only way is the next victim by definition
    from repro.core.permutation import derive_spec_from_policy

    spec = derive_spec_from_policy(policy)
    if spec is not None:
        return mls_metric_spec(spec)

    # Initial states: every reachable full state, after the target way
    # was just touched, and after the target was just filled on a miss.
    prototypes: dict = {}
    start_states = []
    for state in reachable_full_states(policy):
        for way in range(ways):
            touched = state.clone()
            touched.touch(way)
            start_states.append((touched, way))
        missed = state.clone()
        victim = missed.evict()
        missed.fill(victim)
        start_states.append((missed, victim))

    def register(policy_state: ReplacementPolicy):
        key = policy_state.state_key()
        if key not in prototypes:
            prototypes[key] = policy_state
        return key

    queue: deque = deque()
    seen = set()
    for policy_state, target_way in start_states:
        labels = tuple(
            TARGET if way == target_way else OLD for way in range(ways)
        )
        node = (register(policy_state), labels)
        if node not in seen:
            seen.add(node)
            queue.append((node, 0))

    while queue:
        (policy_key, labels), depth = queue.popleft()
        base = prototypes[policy_key]
        successors = []
        # Adversary move 1: a miss with a fresh block.
        missed = base.clone()
        victim = missed.evict()
        missed.fill(victim)
        if labels[victim] == TARGET:
            # Breadth-first order makes the first eviction the minimum.
            return depth + 1
        miss_labels = list(labels)
        miss_labels[victim] = CLAIMED
        successors.append((missed, tuple(miss_labels)))
        # Adversary move 2: a hit on any unclaimed non-target block.
        for way, label in enumerate(labels):
            if label == OLD:
                claimed = base.clone()
                claimed.touch(way)
                hit_labels = list(labels)
                hit_labels[way] = CLAIMED
                successors.append((claimed, tuple(hit_labels)))
        for policy_state, new_labels in successors:
            node = (register(policy_state), new_labels)
            if node not in seen:
                if len(seen) >= max_states:
                    raise ConfigurationError(
                        f"mls search exceeded {max_states} states"
                    )
                seen.add(node)
                queue.append((node, depth + 1))
    return None  # the target can never be evicted (would be odd)


def generic_analysis(
    program: Program,
    config: CacheConfig,
    policy: ReplacementPolicy,
) -> AnalysisResult:
    """Sound must/may classification of ``program`` under any policy.

    Uses the LRU domains with the policy's mls as the must bound and its
    evict metric as the may bound.  Falls back to "no guarantees"
    (capacity 1 / never-absent) when a metric is unbounded.
    """
    if policy.ways != config.ways:
        raise ConfigurationError(
            f"policy is {policy.ways}-way but the cache has {config.ways} ways"
        )
    mls = mls_metric_policy(policy)
    evict = evict_metric_policy(policy) if policy.DETERMINISTIC else None
    must_capacity = mls if mls is not None else 1
    # The may bound must cover the worst case; an unbounded evict metric
    # means absence can never be concluded, approximated by a bound the
    # program cannot reach.
    may_capacity = evict if evict is not None else 1 << 30
    return analyze(
        program, config, capacity=must_capacity, may_capacity=may_capacity
    )
