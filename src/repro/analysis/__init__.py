"""Static cache analysis: WCET-style must/may classification.

The consumer side of the paper's predictability evaluation: once a
cache's policy is reverse engineered, these analyses compute guaranteed
hit/miss classifications for programs — exactly for LRU, and generically
for any deterministic policy via its minimum-life-span and evict
metrics.
"""

from repro.analysis.classify import (
    ALWAYS_HIT,
    ALWAYS_MISS,
    UNCLASSIFIED,
    AccessClassification,
    AnalysisResult,
    analyze,
    check_soundness,
)
from repro.analysis.domain import AbstractCacheState
from repro.analysis.fixpoint import block_transfer, solve
from repro.analysis.generic import generic_analysis, mls_metric_policy
from repro.analysis.program import (
    BasicBlock,
    Program,
    diamond,
    simple_loop,
    straight_line,
)

__all__ = [
    "ALWAYS_HIT",
    "ALWAYS_MISS",
    "UNCLASSIFIED",
    "AccessClassification",
    "AnalysisResult",
    "analyze",
    "check_soundness",
    "AbstractCacheState",
    "block_transfer",
    "solve",
    "generic_analysis",
    "mls_metric_policy",
    "BasicBlock",
    "Program",
    "diamond",
    "simple_loop",
    "straight_line",
]
