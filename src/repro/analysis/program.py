"""A miniature program model for static cache analysis.

WCET-style cache analyses run on a control-flow graph whose basic blocks
carry the memory accesses the compiler extracted.  This module provides
exactly that much structure:

* :class:`BasicBlock` — a named straight-line region with a list of
  accessed line addresses;
* :class:`Program` — blocks plus directed edges and an entry block;
* builders for the common shapes (sequences, loops, diamonds) so tests
  and experiments can compose programs declaratively;
* :meth:`Program.random_paths` — concrete executions used to check the
  analysis' soundness against simulation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.util.rng import SeededRng


@dataclass(frozen=True)
class BasicBlock:
    """A straight-line sequence of memory accesses."""

    name: str
    accesses: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("basic blocks need a name")
        if any(address < 0 for address in self.accesses):
            raise ConfigurationError("negative access address")


@dataclass
class Program:
    """A control-flow graph of basic blocks."""

    blocks: dict[str, BasicBlock]
    edges: dict[str, tuple[str, ...]]  # successors per block name
    entry: str
    exits: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.entry not in self.blocks:
            raise ConfigurationError(f"entry block {self.entry!r} does not exist")
        for source, targets in self.edges.items():
            if source not in self.blocks:
                raise ConfigurationError(f"edge from unknown block {source!r}")
            for target in targets:
                if target not in self.blocks:
                    raise ConfigurationError(f"edge to unknown block {target!r}")
        if not self.exits:
            self.exits = tuple(
                name for name in self.blocks if not self.edges.get(name)
            )

    def successors(self, name: str) -> tuple[str, ...]:
        """Successor block names of ``name``."""
        return self.edges.get(name, ())

    def predecessors(self, name: str) -> list[str]:
        """Predecessor block names of ``name``."""
        return [
            source for source, targets in self.edges.items() if name in targets
        ]

    def access_points(self) -> list[tuple[str, int, int]]:
        """Every (block, index, address) access site of the program."""
        return [
            (name, index, address)
            for name, block in self.blocks.items()
            for index, address in enumerate(block.accesses)
        ]

    def random_paths(
        self, count: int, max_steps: int = 200, seed: int = 0
    ) -> list[list[str]]:
        """Sample concrete block-level paths (for soundness testing)."""
        rng = SeededRng(seed)
        paths = []
        for _ in range(count):
            path = [self.entry]
            current = self.entry
            for _ in range(max_steps):
                successors = self.successors(current)
                if not successors:
                    break
                current = rng.choice(successors)
                path.append(current)
            paths.append(path)
        return paths


def straight_line(access_lists: Sequence[Sequence[int]]) -> Program:
    """A linear chain of blocks B0 -> B1 -> ... -> Bn."""
    if not access_lists:
        raise ConfigurationError("need at least one block")
    blocks = {
        f"B{index}": BasicBlock(f"B{index}", tuple(accesses))
        for index, accesses in enumerate(access_lists)
    }
    edges = {
        f"B{index}": (f"B{index + 1}",) for index in range(len(access_lists) - 1)
    }
    return Program(blocks=blocks, edges=edges, entry="B0")


def simple_loop(
    preheader: Sequence[int], body: Sequence[int], exit_accesses: Sequence[int] = ()
) -> Program:
    """``pre -> body -> (body | exit)`` — the canonical analysed loop."""
    blocks = {
        "pre": BasicBlock("pre", tuple(preheader)),
        "body": BasicBlock("body", tuple(body)),
        "exit": BasicBlock("exit", tuple(exit_accesses)),
    }
    edges = {"pre": ("body",), "body": ("body", "exit")}
    return Program(blocks=blocks, edges=edges, entry="pre")


def diamond(
    before: Sequence[int],
    then_accesses: Sequence[int],
    else_accesses: Sequence[int],
    after: Sequence[int],
) -> Program:
    """An if/then/else: ``before -> (then | else) -> after``."""
    blocks = {
        "before": BasicBlock("before", tuple(before)),
        "then": BasicBlock("then", tuple(then_accesses)),
        "else": BasicBlock("else", tuple(else_accesses)),
        "after": BasicBlock("after", tuple(after)),
    }
    edges = {
        "before": ("then", "else"),
        "then": ("after",),
        "else": ("after",),
    }
    return Program(blocks=blocks, edges=edges, entry="before")
