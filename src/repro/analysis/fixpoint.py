"""Worklist fixpoint solver over the program CFG.

Computes, for every basic block, the abstract cache state holding at its
entry — the join over all predecessors' exit states — by iterating block
transfer functions until nothing changes.  Both domains are finite (ages
are bounded, line sets are bounded by the program's footprint), so
termination is guaranteed.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.domain import AbstractCacheState
from repro.analysis.program import Program
from repro.cache.config import CacheConfig


def block_transfer(state: AbstractCacheState, accesses: tuple[int, ...]) -> AbstractCacheState:
    """Apply a basic block's accesses to a copy of ``state``."""
    result = state.copy()
    for address in accesses:
        result.access(address)
    return result


def solve(
    program: Program,
    config: CacheConfig,
    kind: str,
    capacity: int | None = None,
) -> dict[str, AbstractCacheState]:
    """Return the entry state of every block at the fixpoint.

    The entry block starts from the cold cache; unreachable blocks keep
    the cold state too (they contribute nothing to any join).
    """
    states: dict[str, AbstractCacheState] = {
        name: AbstractCacheState.empty(config, kind, capacity)
        for name in program.blocks
    }
    # For the must domain the cold state (nothing guaranteed) is already
    # the bottom of the join direction, so iteration simply grows the
    # per-block knowledge; for may it is dually the empty may set.
    worklist: deque[str] = deque([program.entry])
    initialized = {program.entry}
    while worklist:
        name = worklist.popleft()
        out_state = block_transfer(states[name], program.blocks[name].accesses)
        for successor in program.successors(name):
            if successor not in initialized:
                # First incoming state: adopt it as-is (joining with the
                # uninitialized placeholder would be wrong for must).
                initialized.add(successor)
                states[successor] = out_state.copy()
                worklist.append(successor)
                continue
            joined = states[successor].join(out_state)
            if joined.key() != states[successor].key():
                states[successor] = joined
                if successor not in worklist:
                    worklist.append(successor)
    return states
