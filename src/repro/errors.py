"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A cache, policy, or hardware configuration is invalid.

    Raised eagerly at construction time: for example a cache whose size is
    not divisible by ``line_size * ways``, or a permutation policy whose
    vectors are not permutations.
    """


class SimulationError(ReproError):
    """The simulator was driven into an impossible situation.

    This indicates a bug in the caller (for example filling a way that is
    already valid) rather than a property of the simulated workload.
    """


class MeasurementError(ReproError):
    """A hardware measurement could not be carried out.

    Examples: the harness cannot construct enough same-set addresses from
    the available memory buffer, or a counter for the requested cache level
    does not exist on the simulated platform.
    """


class InferenceError(ReproError):
    """Reverse engineering failed to produce a consistent result.

    Carries a human-readable reason; the most common cause is a target
    policy outside the supported class (for example a randomized policy)
    combined with ``strict=True``.
    """


class UnknownPolicyError(ReproError):
    """A policy name was not found in the policy registry."""


class KernelUnsupported(ReproError):
    """A policy cannot run on the compiled simulation kernel.

    Raised by :func:`repro.kernels.compile_policy` for randomized or
    adaptive policies (no hashable ``state_key``) and by a running kernel
    when a policy's reachable state space exceeds the compilation budget.
    Callers catch this and fall back to the interpreted simulator, whose
    results the kernel is bit-identical to.
    """


class TraceFormatError(ReproError):
    """A trace file is malformed and cannot be parsed."""


class ResultSchemaError(ReproError):
    """An experiment result payload violates the documented schema.

    Raised by :func:`repro.obs.result.validate_result` with a
    field-level message; see OBSERVABILITY.md for the schema.
    """
