"""Bit-manipulation helpers used by address decomposition and set indexing."""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return log2 of a positive power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def mask(width: int) -> int:
    """Return a bitmask of ``width`` low bits (``mask(3) == 0b111``)."""
    if width < 0:
        raise ValueError("mask width must be non-negative")
    return (1 << width) - 1


def extract_bits(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``."""
    if low < 0 or width < 0:
        raise ValueError("bit positions must be non-negative")
    return (value >> low) & mask(width)
