"""Plain-text table rendering for benchmark and report output.

Benchmarks print the same rows the paper's tables report; this module is
the single place that formats them so all experiment output looks alike.
"""

from __future__ import annotations

from collections.abc import Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: cell values; floats are rendered with 4 significant digits.
        title: optional title line printed above the table.
    """
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
