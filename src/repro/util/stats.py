"""Tiny statistics helpers for experiment reporting.

Kept dependency-free on purpose: benchmark harnesses import this module,
and keeping it to the standard library means benchmark timings are not
distorted by heavyweight imports.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of a non-empty sequence of positive values."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for sequences of length < 2)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


@dataclass(frozen=True)
class Summary:
    """Five-number style summary of a sample."""

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} median={self.median:.4g} "
            f"sd={self.stdev:.4g} min={self.minimum:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Return a :class:`Summary` of a non-empty sequence."""
    if not values:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(values),
        mean=mean(values),
        median=median(values),
        stdev=stdev(values),
        minimum=min(values),
        maximum=max(values),
    )
