"""Small shared utilities: bit manipulation, RNG, statistics, tables."""

from repro.util.bits import is_power_of_two, ilog2, mask, extract_bits
from repro.util.rng import SeededRng, derive_seed
from repro.util.stats import mean, geomean, median, stdev, summarize, Summary
from repro.util.tables import format_table, format_markdown_table

__all__ = [
    "is_power_of_two",
    "ilog2",
    "mask",
    "extract_bits",
    "SeededRng",
    "derive_seed",
    "mean",
    "geomean",
    "median",
    "stdev",
    "summarize",
    "Summary",
    "format_table",
    "format_markdown_table",
]
