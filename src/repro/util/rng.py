"""Seeded random number generation.

Every stochastic component of the library (random replacement, noise
models, workload generators) draws randomness through :class:`SeededRng`
so that experiments are reproducible end to end from a single integer
seed.  Independent components should use :meth:`SeededRng.fork` to obtain
decorrelated child streams instead of sharing one generator, so that
adding draws in one component does not perturb another.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and any hashable/reprable labels.

    The derivation is a keyed cryptographic hash, so it is stable across
    interpreter invocations and across processes — unlike the built-in
    ``hash()``, which is randomized per process by ``PYTHONHASHSEED``.
    The parallel experiment runner relies on this: a worker process must
    derive exactly the same per-set and per-component streams as the
    serial path in the parent.
    """
    material = repr((seed,) + labels).encode()
    digest = hashlib.blake2s(material, digest_size=4).digest()
    return int.from_bytes(digest, "big")


class SeededRng:
    """A deterministic random stream with support for forking substreams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child stream identified by ``label``.

        The child seed depends only on the parent seed and the label, not
        on how many values the parent has produced, which keeps components
        decoupled.  The derivation is process-stable (see
        :func:`derive_seed`), so forked streams agree between the serial
        path and parallel worker processes.
        """
        return SeededRng(derive_seed(self.seed, label))

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def randrange(self, stop: int) -> int:
        """Return a uniform integer in [0, stop)."""
        return self._random.randrange(stop)

    def random(self) -> float:
        """Return a uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        """Return a uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Return ``count`` distinct items sampled without replacement."""
        return self._random.sample(items, count)

    def permutation(self, size: int) -> tuple[int, ...]:
        """Return a uniformly random permutation of range(size)."""
        order = list(range(size))
        self._random.shuffle(order)
        return tuple(order)

    def expovariate(self, rate: float) -> float:
        """Return an exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Return a normally distributed float."""
        return self._random.gauss(mu, sigma)
