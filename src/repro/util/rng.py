"""Seeded random number generation.

Every stochastic component of the library (random replacement, noise
models, workload generators) draws randomness through :class:`SeededRng`
so that experiments are reproducible end to end from a single integer
seed.  Independent components should use :meth:`SeededRng.fork` to obtain
decorrelated child streams instead of sharing one generator, so that
adding draws in one component does not perturb another.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


class SeededRng:
    """A deterministic random stream with support for forking substreams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child stream identified by ``label``.

        The child seed depends only on the parent seed and the label, not
        on how many values the parent has produced, which keeps components
        decoupled.
        """
        child_seed = hash((self.seed, label)) & 0xFFFFFFFF
        return SeededRng(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def randrange(self, stop: int) -> int:
        """Return a uniform integer in [0, stop)."""
        return self._random.randrange(stop)

    def random(self) -> float:
        """Return a uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        """Return a uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Return ``count`` distinct items sampled without replacement."""
        return self._random.sample(items, count)

    def permutation(self, size: int) -> tuple[int, ...]:
        """Return a uniformly random permutation of range(size)."""
        order = list(range(size))
        self._random.shuffle(order)
        return tuple(order)

    def expovariate(self, rate: float) -> float:
        """Return an exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Return a normally distributed float."""
        return self._random.gauss(mu, sigma)
