"""Quickstart: reverse engineer the L1 policy of a simulated processor.

Run with::

    python examples/quickstart.py

This is the paper's headline experiment in miniature: boot a simulated
Intel-like machine, point a measurement oracle at one cache set, and let
the inference pipeline name the replacement policy — using nothing but
access sequences and a miss counter.
"""

from repro import HardwarePlatform, HardwareSetOracle, get_processor, reverse_engineer


def main() -> None:
    spec = get_processor("nehalem-like")
    platform = HardwarePlatform(spec, seed=0)
    print(f"booted {spec.name}: {spec.description}")
    for config in platform.level_configs:
        print(f"  {config.describe()}")

    print("\nreverse engineering L1 ...")
    oracle = HardwareSetOracle(platform, "L1")
    finding = reverse_engineer(oracle)

    print(f"finding : {finding.summary()}")
    print(f"cost    : {finding.measurements} measurements, {finding.accesses} accesses")
    if finding.spec is not None:
        print(finding.spec.describe())

    truth = spec.ground_truth["L1"]
    print(f"\nground truth (hidden from the oracle): {truth}")
    print("MATCH" if finding.policy_name == truth else "MISMATCH")


if __name__ == "__main__":
    main()
