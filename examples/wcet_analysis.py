"""Static cache analysis: why the policy matters for WCET.

Run with::

    python examples/wcet_analysis.py

The payoff of knowing a cache's replacement policy: a WCET analysis can
classify accesses as guaranteed hits.  This example analyses the same
small loop nest under several policies (via the minimum-life-span
construction) and compares the fraction of accesses *proven* to hit with
the hit ratio a simulation actually observes — the gap is the price of
an unpredictable policy.
"""

from repro.analysis import analyze, check_soundness, generic_analysis, simple_loop
from repro.analysis.generic import mls_metric_policy
from repro.cache import Cache, CacheConfig
from repro.policies import make_policy
from repro.util.tables import format_table

CONFIG = CacheConfig("L1", 1024, 4)  # 4 sets, 4-way
POLICIES = ["lru", "plru", "bitplru", "fifo"]


def build_program():
    """A loop touching three conflicting lines per set after a warmup."""
    stride = CONFIG.way_size
    preheader = [0, stride, 2 * stride, 64]
    body = [0, stride, 2 * stride, 64, 64 + stride]
    return simple_loop(preheader, body)


def observed_hit_ratio(program, policy_name: str, paths: int = 40) -> float:
    hits = accesses = 0
    for path in program.random_paths(paths, seed=1):
        cache = Cache(CONFIG, policy_name)
        for block_name in path:
            for address in program.blocks[block_name].accesses:
                accesses += 1
                if cache.access(address).hit:
                    hits += 1
    return hits / accesses if accesses else 0.0


def main() -> None:
    program = build_program()
    rows = []
    for name in POLICIES:
        policy = make_policy(name, CONFIG.ways)
        mls = mls_metric_policy(policy)
        if name == "lru":
            result = analyze(program, CONFIG)
        else:
            result = generic_analysis(program, CONFIG, policy)
        violations = check_soundness(program, CONFIG, result, policy=name, paths=30)
        assert violations == [], violations
        rows.append(
            [
                name,
                mls,
                f"{result.guaranteed_hit_fraction:.0%}",
                f"{observed_hit_ratio(program, name):.0%}",
                "sound" if not violations else "UNSOUND",
            ]
        )
    print(
        format_table(
            ["policy", "mls", "proven hits", "observed hits", "check"],
            rows,
            title="guaranteed vs observed hits on a loop nest (4-way, 4 sets)",
        )
    )
    print(
        "\nThe observed hit ratios are nearly identical — but only the"
        "\npredictable policies let the analysis *prove* the hits."
    )


if __name__ == "__main__":
    main()
