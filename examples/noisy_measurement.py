"""Inference under measurement noise, and how repetition fixes it.

Run with::

    python examples/noisy_measurement.py

The paper's measurements fight performance-counter pollution.  This
example reproduces the situation on the simulated platform: single-shot
inference degrades as counter noise grows, while repeated measurements
with min-aggregation (noise only ever adds counts) stay correct.
"""

from repro import (
    HardwarePlatform,
    HardwareSetOracle,
    InferenceConfig,
    NoiseModel,
    VotingOracle,
    reverse_engineer,
)
from repro.cache import CacheConfig
from repro.hardware import LevelSpec, ProcessorSpec
from repro.util.tables import format_table


def noisy_processor(rate: float) -> ProcessorSpec:
    return ProcessorSpec(
        name=f"noisy-{rate:g}",
        description="PLRU L1 with noisy counters",
        levels=(LevelSpec(CacheConfig("L1", 4 * 1024, 4), "plru"),),
        noise=NoiseModel(counter_noise_rate=rate),
    )


def attempt(rate: float, repetitions: int, seed: int) -> str:
    platform = HardwarePlatform(noisy_processor(rate), seed=seed)
    oracle = HardwareSetOracle(platform, "L1", max_blocks=96)
    if repetitions > 1:
        oracle = VotingOracle(oracle, repetitions=repetitions, aggregate="min")
    config = InferenceConfig(verify_sequences=8, verify_length=40, verify_window=4)
    finding = reverse_engineer(oracle, inference_config=config)
    if finding.policy_name == "plru":
        return "plru (correct)"
    return finding.summary()


def main() -> None:
    rows = []
    for rate in (0.0, 0.005, 0.02, 0.05):
        rows.append(
            [
                f"{rate:g}",
                attempt(rate, repetitions=1, seed=1),
                attempt(rate, repetitions=7, seed=1),
            ]
        )
    print(
        format_table(
            ["noise rate", "single shot", "7x repetition (min)"],
            rows,
            title="inference of a PLRU L1 under counter noise",
        )
    )


if __name__ == "__main__":
    main()
