"""Eviction sets on a sliced (hash-indexed) cache.

Run with::

    python examples/sliced_cache.py

Modern last-level caches hash many address bits into the set/slice
index, so the paper's arithmetic set targeting fails: addresses sharing
all low index bits land in different sets.  This example demonstrates
the problem and the cure — group-testing eviction-set discovery —
against a simulated XOR-folded index, with ground truth available for
verification.
"""

from repro.cache import CacheConfig
from repro.core.evictionsets import PlatformEvictionTester, find_eviction_set
from repro.hardware import HardwarePlatform, LevelSpec, ProcessorSpec


def main() -> None:
    config = CacheConfig("LLC", 32 * 1024, 8, index_hash="xor-fold")
    platform = HardwarePlatform(
        ProcessorSpec(
            name="sliced-llc",
            description="hash-indexed LLC testbench",
            levels=(LevelSpec(config, "lru"),),
        )
    )
    codec = platform.hierarchy.level("LLC").codec
    buffer = platform.allocate(8 * 1024 * 1024)

    # The problem: same low index bits, different hashed sets.
    stride = config.way_size
    sample = [buffer.base + k * stride for k in range(8)]
    sets = [codec.decompose(platform.translate(a)).set_index for a in sample]
    print(f"stride-{stride} addresses (classic same-set recipe) map to sets: {sets}")
    print("-> arithmetic set targeting is dead on a sliced cache\n")

    # The cure: discover an eviction set by group testing.
    victim = buffer.base + 4 * 1024 * 1024
    pool = [buffer.base + k * 64 for k in range(4096)]
    tester = PlatformEvictionTester(platform, "LLC")
    eviction_set = find_eviction_set(tester, victim, pool, target_size=config.ways)
    print(
        f"discovered a minimal eviction set of {len(eviction_set)} lines "
        f"in {tester.tests} eviction tests"
    )

    victim_set = codec.decompose(platform.translate(victim)).set_index
    member_sets = {
        codec.decompose(platform.translate(a)).set_index for a in eviction_set
    }
    print(f"victim's hashed set: {victim_set}; members map to: {member_sets}")
    print("exact" if member_sets == {victim_set} else "MISMATCH")


if __name__ == "__main__":
    main()
