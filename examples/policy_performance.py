"""Performance evaluation: miss ratios of policies across workloads.

Run with::

    python examples/policy_performance.py

The evaluation half of the paper: once the policies of real machines are
known, how do they perform?  This example prints (a) the policy-by-
workload miss-ratio matrix at a fixed cache and (b) a cache-size sweep
showing where insertion policies overtake LRU on a thrashing loop.
"""

from repro import CacheConfig, workload_suite
from repro.eval import cache_size_sweep, miss_ratio_matrix
from repro.util.tables import format_table
from repro.workloads import cyclic_loop

POLICIES = ["lru", "fifo", "plru", "bitplru", "srrip", "lip", "dip", "random"]


def matrix_section() -> None:
    config = CacheConfig("L2", 64 * 1024, 8)  # 1024 lines
    traces = workload_suite(cache_lines=config.num_sets * config.ways, seed=0)
    matrix = miss_ratio_matrix(traces, config, POLICIES)
    print(
        format_table(
            ["workload"] + matrix.policies(),
            matrix.rows(),
            title=f"miss ratios @ {config.describe()}",
        )
    )


def sweep_section() -> None:
    # A loop slightly larger than mid-sized caches: the LRU pathology.
    trace = cyclic_loop(640, iterations=12)  # 40 KiB footprint
    sizes = [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
    points = cache_size_sweep(trace, sizes, ["lru", "lip", "dip", "srrip"])
    rows = []
    for size in sizes:
        row = [f"{size // 1024} KiB"]
        for policy in ("lru", "lip", "dip", "srrip"):
            ratio = next(
                p.miss_ratio for p in points if p.policy == policy and p.cache_size == size
            )
            row.append(ratio)
        rows.append(row)
    print()
    print(
        format_table(
            ["cache size", "lru", "lip", "dip", "srrip"],
            rows,
            title=f"cache-size sweep on {trace.name} (footprint 40 KiB)",
        )
    )


def main() -> None:
    matrix_section()
    sweep_section()


if __name__ == "__main__":
    main()
