"""Reverse engineer every cache of every catalog processor (E1 preview).

Run with::

    python examples/processor_zoo.py [--fast]

Produces the per-processor policy table of experiment E1: for each
simulated machine and each cache level, what policy did inference find,
by which method, and at what measurement cost.  ``--fast`` trims the
verification effort (useful on slow machines); the benchmark in
``benchmarks/bench_e1_inferred_policies.py`` runs the full version.
"""

import sys
import time

from repro import (
    PROCESSORS,
    HardwarePlatform,
    HardwareSetOracle,
    InferenceConfig,
    reverse_engineer,
)
from repro.util.tables import format_table


def main() -> None:
    fast = "--fast" in sys.argv
    config = InferenceConfig(verify_sequences=8, verify_length=40) if fast else None
    rows = []
    for name in sorted(PROCESSORS):
        spec = PROCESSORS[name]
        platform = HardwarePlatform(spec, seed=0)
        for level in [lvl.config.name for lvl in spec.levels]:
            started = time.time()
            oracle = HardwareSetOracle(platform, level)
            finding = reverse_engineer(oracle, inference_config=config)
            truth = spec.ground_truth[level]
            if truth in ("dip", "drrip"):
                # Set-dueling caches have no single per-set policy; being
                # unidentified here is the right answer (the adaptivity
                # survey in repro.core.adaptive tells the full story).
                match = "yes" if not finding.identified else "NO"
                truth = f"{truth} (adaptive)"
            else:
                match = "yes" if finding.policy_name == truth else "NO"
            rows.append(
                [
                    name,
                    level,
                    finding.summary(),
                    truth,
                    match,
                    finding.measurements,
                    f"{time.time() - started:.1f}s",
                ]
            )
            print(f"  {name} {level}: {finding.summary()}")
    print()
    print(
        format_table(
            ["processor", "level", "inferred", "ground truth", "match", "measurements", "time"],
            rows,
            title="E1: reverse-engineered replacement policies",
        )
    )


if __name__ == "__main__":
    main()
