"""Characterise an unknown machine from scratch — the full workflow.

Run with::

    python examples/survey_unknown_machine.py

Combines every piece of the library the way a real reverse-engineering
campaign would:

1. measure the L1 *geometry* (line size, exact capacity, ways);
2. reverse engineer the *policy* of every cache level;
3. run an *adaptivity survey* on the last-level cache (set dueling
   leaves per-set fingerprints);
4. evaluate what the discovered policy mix means for a workload,
   against alternative assignments, using the AMAT model.
"""

from repro import HardwarePlatform, HardwareSetOracle, get_processor, reverse_engineer
from repro.core import InferenceConfig
from repro.core.adaptive import AdaptivitySurvey
from repro.core.geometry import GeometryInference, PlatformAddressOracle
from repro.eval import compare_policy_assignments
from repro.util.tables import format_table
from repro.workloads import APP_MODELS

FAST = InferenceConfig(verify_sequences=8, verify_length=40)


def main() -> None:
    # The machine under test; pretend we know nothing but its name.
    spec = get_processor("haswell-adaptive-like")
    platform = HardwarePlatform(spec, seed=0)
    print(f"machine under test: {spec.name}\n")

    # 1. Geometry of the first-level cache.
    geometry = GeometryInference(PlatformAddressOracle(platform, "L1")).infer()
    print(f"measured L1 geometry : {geometry.describe()}")

    # 2. Policy of every level.
    findings = {}
    for config in platform.level_configs:
        oracle = HardwareSetOracle(platform, config.name)
        findings[config.name] = reverse_engineer(oracle, inference_config=FAST)
        print(f"policy of {config.name:3s}        : {findings[config.name].summary()}")

    # 3. Adaptivity survey of the last-level cache.
    l3 = platform.level_config("L3")
    survey = AdaptivitySurvey(
        lambda set_index: HardwareSetOracle(
            platform, "L3", set_index=set_index, max_blocks=128
        ),
        ways=l3.ways,
        level="L3",
    )
    report = survey.survey([0, 128, 5, 300, 700])
    print(f"L3 adaptivity survey : {report.summary()}")
    for classification in report.classifications:
        print(
            f"   set {classification.set_index:4d}: {classification.kind}"
            f" {classification.policy_name or ''}"
        )

    # 4. What the discovered mix means for a workload.
    cache_lines = l3.num_sets * l3.ways
    trace = APP_MODELS["skewed"].trace(cache_lines=cache_lines // 4, seed=0)
    assignments = {
        "as-discovered": ["plru", "plru", "dip"],
        "all-lru": ["lru", "lru", "lru"],
        "all-fifo": ["fifo", "fifo", "fifo"],
    }
    results = compare_policy_assignments(
        trace, platform.level_configs, assignments
    )
    level_names = [config.name for config in platform.level_configs]
    rows = [result.row(level_names) for result in results]
    print()
    print(
        format_table(
            ["assignment"] + [f"{name} miss" for name in level_names] + ["mem ratio", "AMAT"],
            rows,
            title=f"hierarchy evaluation on '{trace.name}'",
        )
    )


if __name__ == "__main__":
    main()
