"""Predictability evaluation of the policy zoo.

Run with::

    python examples/predictability_report.py

The second evaluation axis of the paper: how quickly can a WCET analysis
regain certainty about cache contents under each policy?  Prints the
evict/fill metrics (smaller is more predictable) and the behavioural
agreement matrix that motivates crafted distinguishing sequences.
"""

from repro.eval import agreement_matrix, predictability_of_policy
from repro.policies import make_policy
from repro.util.tables import format_table

POLICIES = ["lru", "fifo", "plru", "bitplru", "nru", "srrip", "random"]


def metrics_section() -> None:
    rows = []
    for ways in (4, 8):
        for name in POLICIES:
            policy = make_policy(name, ways)
            result = predictability_of_policy(name, policy)
            rows.append(
                [
                    name,
                    ways,
                    result.evict if result.evict is not None else "-",
                    result.fill if result.fill is not None else "-",
                    result.note,
                ]
            )
    print(
        format_table(
            ["policy", "ways", "evict", "fill", "note"],
            rows,
            title="predictability metrics (accesses to regain certainty)",
        )
    )


def agreement_section() -> None:
    policies = {name: make_policy(name, 8) for name in ("lru", "fifo", "plru", "bitplru", "srrip")}
    matrix = agreement_matrix(policies, accesses=30_000, seed=0)
    print()
    print(
        format_table(
            ["policy"] + list(matrix.policies),
            matrix.rows(),
            title="hit/miss agreement on a random stream (why crafted probes are needed)",
        )
    )


def main() -> None:
    metrics_section()
    agreement_section()


if __name__ == "__main__":
    main()
