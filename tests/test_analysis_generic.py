"""Tests for the minimum-life-span metric and the generic analysis."""

import pytest

from repro.analysis import generic_analysis, mls_metric_policy
from repro.analysis.generic import mls_metric_spec
from repro.analysis import ALWAYS_HIT, analyze, check_soundness, simple_loop, straight_line
from repro.cache import CacheConfig
from repro.core.permutation import derive_spec_from_policy
from repro.errors import ConfigurationError
from repro.policies import PlruPolicy, lru_spec, make_policy

CONFIG = CacheConfig("L1", 1024, 4)  # 4 sets, 4-way


class TestMlsKnownValues:
    @pytest.mark.parametrize("ways", [2, 4, 8, 16])
    def test_lru_is_ways(self, ways):
        assert mls_metric_policy(make_policy("lru", ways)) == ways

    @pytest.mark.parametrize("ways", [2, 4, 8])
    def test_fifo_is_one(self, ways):
        assert mls_metric_policy(make_policy("fifo", ways)) == 1

    @pytest.mark.parametrize("ways,expected", [(2, 2), (4, 3), (8, 4), (16, 5)])
    def test_plru_is_log2_plus_one(self, ways, expected):
        # The classic result: k-way PLRU guarantees only as much as a
        # (log2 k + 1)-way LRU.
        assert mls_metric_policy(PlruPolicy(ways)) == expected

    @pytest.mark.parametrize("ways", [2, 4, 8])
    def test_bitplru_is_two(self, ways):
        assert mls_metric_policy(make_policy("bitplru", ways)) == 2

    def test_randomized_is_none(self):
        assert mls_metric_policy(make_policy("random", 4)) is None

    def test_single_way(self):
        assert mls_metric_policy(make_policy("lru", 1)) == 1

    def test_spec_path_matches_policy_path(self):
        spec = derive_spec_from_policy(PlruPolicy(4))
        assert mls_metric_spec(spec) == 3
        assert mls_metric_spec(lru_spec(4)) == 4


class TestGenericAnalysis:
    def loop_program(self):
        # A loop reusing two lines in one set plus preheader warmup.
        stride = CONFIG.way_size
        return simple_loop([0, stride], [0, stride])

    def test_lru_guarantees_loop_hits(self):
        result = generic_analysis(self.loop_program(), CONFIG, make_policy("lru", 4))
        assert result.verdict_of("body", 0) == ALWAYS_HIT
        assert result.verdict_of("body", 1) == ALWAYS_HIT

    def test_fifo_guarantees_nothing_across_conflicts(self):
        result = generic_analysis(self.loop_program(), CONFIG, make_policy("fifo", 4))
        # With mls(FIFO)=1, a line is only guaranteed until the next
        # distinct access in its set.
        assert result.verdict_of("body", 0) != ALWAYS_HIT

    def test_plru_between_the_two(self):
        # mls(PLRU,4) = 3: two conflicting lines stay guaranteed.
        result = generic_analysis(self.loop_program(), CONFIG, PlruPolicy(4))
        assert result.verdict_of("body", 0) == ALWAYS_HIT

    @pytest.mark.parametrize("policy_name", ["lru", "fifo", "plru", "bitplru", "nru"])
    def test_sound_against_simulation(self, policy_name):
        program = self.loop_program()
        policy = make_policy(policy_name, 4)
        result = generic_analysis(program, CONFIG, policy)
        violations = check_soundness(
            program, CONFIG, result, policy=policy_name, paths=40
        )
        assert violations == []

    def test_ways_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            generic_analysis(self.loop_program(), CONFIG, make_policy("lru", 8))

    def test_generic_lru_equals_plain_analysis(self):
        program = self.loop_program()
        plain = analyze(program, CONFIG)
        generic = generic_analysis(program, CONFIG, make_policy("lru", 4))
        assert plain.classifications == generic.classifications
