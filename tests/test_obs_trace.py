"""Tests for the repro.obs event bus and trace files."""

import pytest

from repro.cache import CacheConfig
from repro.core import InferenceConfig, PermutationInference, SimulatedSetOracle
from repro.eval.missratio import simulate_trace
from repro.obs import trace as obs_trace
from repro.obs.trace import (
    Tracer,
    filter_events,
    format_event,
    install,
    read_jsonl,
    tracing,
    uninstall,
    write_jsonl,
)
from repro.policies import get
from repro.workloads import cyclic_loop


@pytest.fixture(autouse=True)
def _clean_bus():
    """Every test starts and ends with no installed tracer."""
    uninstall()
    yield
    uninstall()


class TestTracer:
    def test_emit_assigns_sequence_numbers(self):
        tracer = Tracer()
        tracer.emit("oracle.query", misses=3)
        tracer.emit("runner.cell", index=0)
        assert [e["seq"] for e in tracer.events] == [1, 2]
        assert tracer.events[0]["kind"] == "oracle.query"
        assert tracer.events[0]["misses"] == 3

    def test_include_filter_drops_other_kinds(self):
        tracer = Tracer(include=("oracle.",))
        tracer.emit("oracle.query", misses=0)
        tracer.emit("runner.cell", index=0)
        assert [e["kind"] for e in tracer.events] == ["oracle.query"]

    def test_wants_cache_precomputed(self):
        assert Tracer().wants_cache
        assert Tracer(include=("cache.",)).wants_cache
        assert not Tracer(include=("oracle.", "runner.")).wants_cache

    def test_sink_receives_events_even_without_keeping(self):
        seen = []
        tracer = Tracer(keep_events=False, sink=seen.append)
        tracer.emit("infer.start", ways=4)
        assert tracer.events == []
        assert seen[0]["kind"] == "infer.start"

    def test_install_uninstall(self):
        tracer = Tracer()
        assert install(tracer) is tracer
        assert obs_trace.ACTIVE is tracer
        assert uninstall() is tracer
        assert obs_trace.ACTIVE is None

    def test_tracing_context_restores_previous(self):
        outer = install(Tracer())
        with tracing() as inner:
            assert obs_trace.ACTIVE is inner
        assert obs_trace.ACTIVE is outer


class TestInstrumentation:
    def test_oracle_emits_query_events(self):
        oracle = SimulatedSetOracle(get("lru", 4))
        with tracing(include=("oracle.",)) as tracer:
            oracle.count_misses([0, 1], [0, 9])
        (event,) = tracer.events
        assert event["kind"] == "oracle.query"
        assert event["setup"] == 2
        assert event["probe"] == 2
        assert event["misses"] == 1

    def test_cache_events_cover_hit_miss_evict_fill(self):
        from repro.cache.set import CacheSet

        with tracing(include=("cache.",)) as tracer:
            cache_set = CacheSet(2, get("lru", 2))
            cache_set.access(1)
            cache_set.access(1)
            cache_set.access(2)
            cache_set.access(3)  # evicts 1
        kinds = [e["kind"] for e in tracer.events]
        assert kinds.count("cache.hit") == 1
        assert kinds.count("cache.miss") == 3
        assert kinds.count("cache.fill") == 3
        assert kinds.count("cache.evict") == 1
        evict = next(e for e in tracer.events if e["kind"] == "cache.evict")
        assert evict["tag"] == 1

    def test_inference_emits_phases_and_end(self):
        oracle = SimulatedSetOracle(get("lru", 2))
        with tracing(include=("infer.",)) as tracer:
            result = PermutationInference(
                oracle, config=InferenceConfig(verify_sequences=2)
            ).infer()
        assert result.succeeded
        kinds = [e["kind"] for e in tracer.events]
        assert kinds[0] == "infer.start"
        assert kinds[-1] == "infer.end"
        phases = [
            e["phase"] for e in tracer.events
            if e["kind"] == "infer.phase" and e["status"] == "start"
        ]
        assert phases == ["baseline", "hit-perms", "verify"]
        end = tracer.events[-1]
        assert end["succeeded"] is True
        assert end["measurements"] == oracle.measurements

    def test_tracing_does_not_change_results(self):
        """Bit-identical simulation and inference with and without a tracer."""
        trace = cyclic_loop(96, iterations=4)
        config = CacheConfig("L1", 4096, 4)
        plain_stats = simulate_trace(trace, config, "plru")
        plain_infer = PermutationInference(
            SimulatedSetOracle(get("plru", 4)),
            config=InferenceConfig(verify_sequences=3),
        ).infer()
        with tracing():
            traced_stats = simulate_trace(trace, config, "plru")
            traced_infer = PermutationInference(
                SimulatedSetOracle(get("plru", 4)),
                config=InferenceConfig(verify_sequences=3),
            ).infer()
        assert traced_stats == plain_stats
        assert traced_infer.spec == plain_infer.spec
        assert traced_infer.measurements == plain_infer.measurements
        assert traced_infer.accesses == plain_infer.accesses


class TestIngest:
    def test_ingest_rebases_seq_onto_the_parent_counter(self):
        parent = Tracer()
        parent.emit("runner.scheduled", cells=2)
        worker = [
            {"seq": 1, "kind": "span.start", "span": "cell"},
            {"seq": 2, "kind": "span.end", "span": "cell"},
        ]
        assert parent.ingest(worker) == 2
        assert [e["seq"] for e in parent.events] == [1, 2, 3]
        # The source events are not mutated.
        assert worker[0]["seq"] == 1

    def test_ingest_applies_the_include_filter(self):
        parent = Tracer(include=("span.",))
        accepted = parent.ingest([
            {"seq": 1, "kind": "span.start", "span": "cell"},
            {"seq": 2, "kind": "cache.hit", "tag": 0},
        ])
        assert accepted == 1
        assert [e["kind"] for e in parent.events] == ["span.start"]

    def test_ingest_does_not_double_count_event_metrics(self):
        """The worker store already counted events.<kind>; the runner
        merges that snapshot separately.  Re-counting on ingest would
        break the serial == parallel metrics property."""
        from repro.obs import metrics as obs_metrics

        obs_metrics.DEFAULT.reset()
        parent = Tracer()
        parent.ingest([{"seq": 1, "kind": "span.start", "span": "cell"}])
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert "events.span.start" not in counters

    def test_ingest_feeds_the_sink(self):
        seen = []
        parent = Tracer(keep_events=False, sink=seen.append)
        parent.ingest([{"seq": 9, "kind": "runner.cell", "index": 0}])
        assert parent.events == []
        assert seen[0]["kind"] == "runner.cell"
        assert seen[0]["seq"] == 1


class TestJsonlWriter:
    def test_context_manager_closes_and_flushes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs_trace.JsonlWriter(path) as writer:
            writer({"seq": 1, "kind": "oracle.query"})
            assert not writer.closed
        assert writer.closed
        assert read_jsonl(path) == [{"seq": 1, "kind": "oracle.query"}]

    def test_flush_every_bounds_unflushed_tail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = obs_trace.JsonlWriter(path, flush_every=2)
        writer({"seq": 1, "kind": "a"})
        writer({"seq": 2, "kind": "b"})  # hits the flush boundary
        writer({"seq": 3, "kind": "c"})  # may sit in the buffer
        on_disk = read_jsonl(path)
        assert len(on_disk) >= 2
        writer.close()
        assert len(read_jsonl(path)) == 3

    def test_closed_even_when_the_block_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with obs_trace.JsonlWriter(path) as writer:
                writer({"seq": 1, "kind": "a"})
                raise RuntimeError("boom")
        assert writer.closed
        assert read_jsonl(path) == [{"seq": 1, "kind": "a"}]

    def test_close_is_idempotent(self, tmp_path):
        writer = obs_trace.JsonlWriter(tmp_path / "run.jsonl")
        writer.close()
        writer.close()
        assert writer.closed

    def test_works_as_a_tracer_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs_trace.JsonlWriter(path) as sink:
            with tracing(keep_events=False, sink=sink, include=("oracle.",)):
                oracle = SimulatedSetOracle(get("lru", 2))
                oracle.count_misses([0, 1], [0, 5])
        events = read_jsonl(path)
        assert [e["kind"] for e in events] == ["oracle.query"]


class TestTraceFiles:
    def test_jsonl_round_trip(self, tmp_path):
        events = [
            {"seq": 1, "kind": "oracle.query", "misses": 2},
            {"seq": 2, "kind": "runner.cell", "label": "a/b"},
        ]
        path = write_jsonl(events, tmp_path / "run.jsonl")
        assert read_jsonl(path) == events

    def test_filter_by_kind_where_and_limit(self):
        events = [
            {"seq": 1, "kind": "oracle.query", "misses": 2},
            {"seq": 2, "kind": "oracle.query", "misses": 0},
            {"seq": 3, "kind": "runner.cell", "source": "serial"},
        ]
        assert len(filter_events(events, kinds=["oracle."])) == 2
        assert filter_events(events, where={"misses": "0"}) == [events[1]]
        assert filter_events(events, limit=1) == [events[0]]

    def test_format_event_is_one_line(self):
        line = format_event({"seq": 7, "kind": "cache.hit", "tag": 3, "way": 1})
        assert "cache.hit" in line
        assert "tag=3" in line
        assert "\n" not in line
