"""Tests for the repro.obs metrics aggregator."""

import json

from repro.obs.metrics import DEFAULT, Metrics


class TestCounters:
    def test_incr_accumulates(self):
        metrics = Metrics()
        metrics.incr("oracle.measurements")
        metrics.incr("oracle.measurements", 4)
        assert metrics.counter("oracle.measurements") == 5

    def test_unknown_counter_reads_zero(self):
        assert Metrics().counter("nope") == 0


class TestObservations:
    def test_summary_statistics(self):
        metrics = Metrics()
        for value in (1.0, 2.0, 3.0):
            metrics.observe("probe_misses", value)
        summary = metrics.summary("probe_misses")
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.mean == 2.0

    def test_histogram_buckets_are_power_of_two(self):
        metrics = Metrics()
        for value in (0.3, 1.5, 3.0, 900.0):
            metrics.observe("seconds", value)
        buckets = metrics.summary("seconds").buckets
        assert set(buckets) == {0.5, 2.0, 4.0, 1024.0}
        assert all(count == 1 for count in buckets.values())

    def test_nonpositive_values_share_zero_bucket(self):
        metrics = Metrics()
        metrics.observe("delta", 0.0)
        metrics.observe("delta", -4.0)
        assert metrics.summary("delta").buckets == {0.0: 2}

    def test_timer_records_elapsed(self):
        metrics = Metrics()
        with metrics.timer("work"):
            pass
        summary = metrics.summary("work")
        assert summary.count == 1
        assert summary.total >= 0.0


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        metrics = Metrics()
        metrics.incr("a", 2)
        metrics.observe("b", 1.25)
        snapshot = metrics.snapshot()
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["counters"]["a"] == 2
        assert parsed["observations"]["b"]["count"] == 1

    def test_reset_clears_everything(self):
        metrics = Metrics()
        metrics.incr("a")
        metrics.observe("b", 1.0)
        metrics.reset()
        assert metrics.snapshot() == {"counters": {}, "observations": {}}

    def test_format_summary_mentions_names(self):
        metrics = Metrics()
        metrics.incr("oracle.measurements", 3)
        metrics.observe("runner.cell_seconds", 0.5)
        text = metrics.format_summary()
        assert "oracle.measurements" in text
        assert "runner.cell_seconds" in text

    def test_default_store_exists(self):
        assert isinstance(DEFAULT, Metrics)
