"""Tests for the CFG program model."""

import pytest

from repro.analysis import BasicBlock, Program, diamond, simple_loop, straight_line
from repro.errors import ConfigurationError


class TestBasicBlock:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BasicBlock("", (0,))
        with pytest.raises(ConfigurationError):
            BasicBlock("b", (-64,))


class TestProgram:
    def test_entry_must_exist(self):
        with pytest.raises(ConfigurationError):
            Program(blocks={}, edges={}, entry="missing")

    def test_edges_validated(self):
        block = BasicBlock("a", (0,))
        with pytest.raises(ConfigurationError):
            Program(blocks={"a": block}, edges={"a": ("ghost",)}, entry="a")

    def test_exits_defaulted(self):
        program = straight_line([[0], [64]])
        assert program.exits == ("B1",)

    def test_successors_predecessors(self):
        program = diamond([0], [64], [128], [192])
        assert set(program.successors("before")) == {"then", "else"}
        assert set(program.predecessors("after")) == {"then", "else"}

    def test_access_points(self):
        program = straight_line([[0, 64], [128]])
        points = program.access_points()
        assert ("B0", 1, 64) in points
        assert len(points) == 3


class TestBuilders:
    def test_straight_line_shape(self):
        program = straight_line([[0], [64], [128]])
        assert program.entry == "B0"
        assert program.successors("B0") == ("B1",)
        assert program.successors("B2") == ()

    def test_simple_loop_shape(self):
        program = simple_loop([0], [64], [128])
        assert "body" in program.successors("body")
        assert "exit" in program.successors("body")

    def test_empty_straight_line_rejected(self):
        with pytest.raises(ConfigurationError):
            straight_line([])


class TestRandomPaths:
    def test_paths_start_at_entry_and_follow_edges(self):
        program = diamond([0], [64], [128], [192])
        for path in program.random_paths(20, seed=1):
            assert path[0] == "before"
            for current, following in zip(path, path[1:]):
                assert following in program.successors(current)

    def test_loop_paths_bounded(self):
        program = simple_loop([0], [64])
        for path in program.random_paths(5, max_steps=30, seed=0):
            assert len(path) <= 31
