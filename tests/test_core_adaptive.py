"""Tests for adaptivity (set dueling) detection."""

import pytest

from repro.core import SimulatedSetOracle
from repro.core.adaptive import (
    AdaptivityReport,
    AdaptivitySurvey,
    SetClassification,
    detect_nondeterminism,
)
from repro.policies import BipPolicy, LruPolicy, PlruPolicy, make_policy
from repro.util.rng import SeededRng


class TestDetectNondeterminism:
    def test_deterministic_policies_pass(self):
        for name in ("lru", "fifo", "plru", "bitplru", "srrip"):
            oracle = SimulatedSetOracle(make_policy(name, 4))
            assert detect_nondeterminism(oracle, ways=4) is False

    def test_random_policy_flagged(self):
        oracle = SimulatedSetOracle(make_policy("random", 4, rng=SeededRng(0)))
        assert detect_nondeterminism(oracle, ways=4) is True

    def test_bip_flagged(self):
        oracle = SimulatedSetOracle(BipPolicy(4, rng=SeededRng(0)))
        assert detect_nondeterminism(oracle, ways=4) is True


class TestReport:
    def test_uniform_named_is_fixed(self):
        report = AdaptivityReport(
            "L3",
            (
                SetClassification(0, "named", "lru"),
                SetClassification(5, "named", "lru"),
            ),
        )
        assert not report.adaptive
        assert report.fixed_policy == "lru"
        assert "fixed policy: lru" in report.summary()

    def test_mixed_names_is_adaptive(self):
        report = AdaptivityReport(
            "L3",
            (
                SetClassification(0, "named", "lru"),
                SetClassification(5, "named", "bitplru"),
                SetClassification(9, "named", "lru"),
            ),
        )
        assert report.adaptive
        assert report.fixed_policy is None
        leaders = report.suspected_leaders()
        assert [c.set_index for c in leaders] == [5]

    def test_mixed_kinds_is_adaptive(self):
        report = AdaptivityReport(
            "L3",
            (
                SetClassification(0, "named", "lru"),
                SetClassification(5, "nondeterministic", None),
                SetClassification(9, "nondeterministic", None),
            ),
        )
        assert report.adaptive
        assert [c.set_index for c in report.suspected_leaders()] == [0]
        assert "ADAPTIVE" in report.summary()


class TestSurvey:
    def test_survey_on_fixed_policy(self):
        # Every "set" is an independent PLRU instance: not adaptive.
        def factory(set_index):
            return SimulatedSetOracle(PlruPolicy(4))

        survey = AdaptivitySurvey(factory, ways=4, level="L1")
        report = survey.survey([0, 1, 2])
        assert not report.adaptive
        assert report.fixed_policy == "plru"

    def test_survey_on_simulated_dueling(self):
        # Emulate a DIP-like cache: set 0 runs LRU (leader), the rest BIP.
        def factory(set_index):
            if set_index == 0:
                return SimulatedSetOracle(LruPolicy(4))
            return SimulatedSetOracle(BipPolicy(4, rng=SeededRng(set_index)))

        survey = AdaptivitySurvey(factory, ways=4, level="L3")
        report = survey.survey([0, 3, 7, 11])
        assert report.adaptive
        assert [c.set_index for c in report.suspected_leaders()] == [0]
        leader = report.classifications[0]
        assert leader.kind == "named" and leader.policy_name == "lru"
