"""Tests for the persistent worker pool, shm transport and scheduler.

Covers the runner's PR-8 surface: pool lifecycle (lazy spawn, reuse
across ``map()`` calls, per-worker restart on death, ``shutdown_pool``),
the shared-memory transport plane (trace broadcasts, large result
segments, graceful pickle fallback), adaptive chunking determinism, the
measurement-DB scope preload/adopt path, and hypothesis property tests
asserting parallel == serial under pool reuse and both start methods.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import measuredb
from repro.cache import CacheConfig
from repro.core.oracle import SimulatedSetOracle
from repro.obs import metrics as obs_metrics
from repro.policies import make_policy
from repro.runner import (
    ExperimentRunner,
    SharedTrace,
    SimCell,
    clear_memo,
    pool_stats,
    run_sim_cells,
    share_trace,
    shm_disabled,
    shutdown_pool,
)
from repro.runner import pool as runner_pool
from repro.runner import shm as runner_shm
from repro.runner.cells import _share_cell_traces
from repro.workloads import sequential_scan, workload_suite

_PARENT_PID = os.getpid()

CONFIG = CacheConfig("L2", 8 * 1024, 8)


def _big_traces():
    suite = workload_suite(cache_lines=CONFIG.num_sets * CONFIG.ways, seed=0)
    big = [t for t in suite if len(t) >= runner_shm.MIN_TRACE_ADDRESSES]
    assert len(big) >= 2
    return big[:2]


def _pid(task):
    return os.getpid()


def _double(task):
    return task * 2


def _counting(task):
    obs_metrics.DEFAULT.incr("test.pool.calls")
    return task + 1


def _die_once(task):
    """Kill the worker on the marked task, once; succeed on retry."""
    value, marker = task
    if marker is not None and os.getpid() != _PARENT_PID:
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("died")
            os._exit(17)
    return value * 5


def _die_on_seven(task):
    """Kill any worker that draws task 7; fine in the parent."""
    if task == 7 and os.getpid() != _PARENT_PID:
        os._exit(23)
    return task * 11


def _payload(task):
    return bytes(task)


def _describe_trace(cell):
    trace = cell.trace
    array = trace.address_array()
    return (
        type(trace).__name__,
        len(trace),
        tuple(trace.addresses[:4]),
        None if array is None else int(array[0]),
    )


_SCOPE = "test|runner-pool-preload"


def _query_scope(task):
    setup, probe = task
    service = measuredb.shared_service(_SCOPE)
    inner = SimulatedSetOracle(make_policy("lru", 4))
    return service.query([(setup, probe)], inner)[0]


@pytest.fixture(autouse=True)
def _fresh_pool_and_metrics():
    """Each test here reasons about pool lifecycle counters from zero."""
    shutdown_pool()
    obs_metrics.DEFAULT.reset()
    clear_memo()
    yield
    shutdown_pool()


def _runner_counters():
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    return {key: value for key, value in counters.items() if key.startswith("runner.")}


class TestPoolLifecycle:
    def test_pool_spawned_once_and_reused_across_maps(self):
        runner = ExperimentRunner(jobs=2)
        first = set(runner.map(_pid, list(range(8))))
        second = set(runner.map(_pid, list(range(8))))
        counters = _runner_counters()
        assert counters["runner.pool.spawned"] == 1
        assert counters["runner.pool.reused"] >= 1
        # The same worker processes served both rounds.
        assert len(first | second) <= 2
        assert second <= first
        assert _PARENT_PID not in first

    def test_pool_shared_across_runner_instances(self):
        ExperimentRunner(jobs=2).map(_double, [1, 2, 3, 4])
        ExperimentRunner(jobs=2).map(_double, [5, 6, 7, 8])
        counters = _runner_counters()
        assert counters["runner.pool.spawned"] == 1
        assert counters["runner.pool.reused"] == 1

    def test_jobs_change_replaces_the_pool(self):
        ExperimentRunner(jobs=2).map(_double, [1, 2, 3, 4])
        ExperimentRunner(jobs=3).map(_double, [1, 2, 3, 4])
        assert _runner_counters()["runner.pool.spawned"] == 2
        assert pool_stats() == {
            "jobs": 3,
            "start_method": "fork",
            "busy": 0,
            "workers_alive": 3,
        }

    def test_shutdown_pool_allows_a_fresh_start(self):
        ExperimentRunner(jobs=2).map(_double, [1, 2, 3, 4])
        shutdown_pool()
        assert pool_stats() is None
        ExperimentRunner(jobs=2).map(_double, [1, 2, 3, 4])
        assert _runner_counters()["runner.pool.spawned"] == 2

    def test_worker_death_restarts_only_that_worker(self, tmp_path):
        marker = str(tmp_path / "died-once")
        tasks = [(index, None) for index in range(6)]
        tasks[3] = (3, marker)
        runner = ExperimentRunner(jobs=2, chunk_size=1, retries=1)
        assert runner.map(_die_once, tasks) == [v * 5 for v in range(6)]
        counters = _runner_counters()
        # The killed chunk was retried on a live worker, not run in the
        # parent: every cell still reports source "parallel".
        assert counters["runner.cells.parallel"] == 6
        assert "runner.cells.fallback" not in counters
        assert counters["runner.pool.restarted"] >= 1
        assert counters["runner.pool.spawned"] == 1
        assert pool_stats()["workers_alive"] == 2

    def test_persistent_worker_death_falls_back_serially(self):
        runner = ExperimentRunner(jobs=2, chunk_size=1, retries=1)
        assert runner.map(_die_on_seven, [1, 2, 7, 4]) == [11, 22, 77, 44]
        sources = {t.index: t.source for t in runner.timings}
        assert sources[2] == "fallback"
        assert sources[0] == sources[1] == sources[3] == "parallel"
        assert _runner_counters()["runner.pool.restarted"] >= 2


class TestSharedMemoryTransport:
    def test_share_trace_roundtrips_through_pickle(self):
        trace = _big_traces()[0]
        assert len(trace) >= runner_shm.MIN_TRACE_ADDRESSES
        shared = share_trace(trace)
        assert isinstance(shared, SharedTrace)
        payload = pickle.dumps(shared)
        assert len(payload) < 1024, "handle pickled, not the addresses"
        clone = pickle.loads(payload)
        assert clone.name == trace.name
        assert len(clone) == len(trace)
        assert tuple(clone.addresses) == trace.addresses
        array = clone.address_array()
        if array is not None:
            assert tuple(int(a) for a in array[:8]) == trace.addresses[:8]
        counters = _runner_counters()
        assert counters["runner.shm.broadcasts"] == 1
        assert counters["runner.shm.bytes"] == 8 * len(trace)
        # Re-sharing the same trace reuses the segment.
        assert share_trace(trace)._ref == shared._ref
        assert _runner_counters()["runner.shm.broadcasts"] == 1

    def test_small_traces_are_not_shared(self):
        assert share_trace(sequential_scan(64)) is None
        assert "runner.shm.broadcasts" not in _runner_counters()

    def test_shm_disabled_falls_back_to_plain_pickle(self):
        trace = _big_traces()[0]
        with shm_disabled():
            assert share_trace(trace) is None
            cells = [SimCell.make(trace, CONFIG, policy) for policy in ("lru", "fifo")]
            assert _share_cell_traces(cells) == cells
        assert "runner.shm.broadcasts" not in _runner_counters()

    def test_workers_see_shared_traces_with_zero_copy_arrays(self):
        traces = _big_traces()
        cells = [SimCell.make(trace, CONFIG, "lru") for trace in traces]
        shared_cells = _share_cell_traces(cells)
        assert all(isinstance(cell.trace, SharedTrace) for cell in shared_cells)
        runner = ExperimentRunner(jobs=2, chunk_size=1)
        described = runner.map(_describe_trace, shared_cells)
        for trace, (kind, count, head, first) in zip(traces, described):
            assert kind == "SharedTrace"
            assert count == len(trace)
            assert head == trace.addresses[:4]
            if first is not None:
                assert first == trace.addresses[0]

    def test_shared_and_plain_cells_simulate_identically(self):
        traces = _big_traces()
        cells = [
            SimCell.make(trace, CONFIG, policy, seed=3)
            for policy in ("lru", "plru")
            for trace in traces
        ]
        serial = run_sim_cells(cells, jobs=0, memoize=False)
        clear_memo()
        with shm_disabled():
            plain = run_sim_cells(
                cells, runner=ExperimentRunner(jobs=2), memoize=False
            )
        clear_memo()
        shared = run_sim_cells(cells, runner=ExperimentRunner(jobs=2), memoize=False)
        assert plain == serial
        assert shared == serial
        assert _runner_counters()["runner.shm.broadcasts"] == len(traces)

    def test_large_results_return_through_shm_segments(self):
        size = runner_pool.RESULT_SHM_MIN_BYTES
        runner = ExperimentRunner(jobs=2, chunk_size=1)
        out = runner.map(_payload, [size, size + 1, 8])
        assert [len(blob) for blob in out] == [size, size + 1, 8]
        assert _runner_counters()["runner.shm.bytes"] >= 2 * size


class TestAdaptiveChunking:
    def test_adaptive_sizes_are_observed_and_bounded(self):
        runner = ExperimentRunner(jobs=2)
        tasks = list(range(40))
        assert runner.map(_double, tasks) == [t * 2 for t in tasks]
        snapshot = obs_metrics.DEFAULT.snapshot()["observations"]
        sizes = snapshot.get("runner.chunk.adaptive")
        assert sizes is not None and sizes["count"] >= 2
        assert 1 <= sizes["min"] and sizes["max"] <= len(tasks)

    def test_fixed_chunk_size_disables_adaptation(self):
        runner = ExperimentRunner(jobs=2, chunk_size=3)
        runner.map(_double, list(range(12)))
        snapshot = obs_metrics.DEFAULT.snapshot()["observations"]
        assert "runner.chunk.adaptive" not in snapshot

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        tasks=st.lists(st.integers(min_value=0, max_value=99), min_size=2, max_size=40),
        jobs=st.integers(min_value=2, max_value=3),
    )
    def test_parallel_equals_serial_under_pool_reuse(self, tasks, jobs):
        """Property: results and counters match serial, maps back to back."""
        obs_metrics.DEFAULT.reset()
        expected = ExperimentRunner().map(_counting, tasks)
        serial_calls = obs_metrics.DEFAULT.snapshot()["counters"]["test.pool.calls"]
        assert serial_calls == len(tasks)

        obs_metrics.DEFAULT.reset()
        runner = ExperimentRunner(jobs=jobs)
        assert runner.map(_counting, tasks) == expected
        assert runner.map(_counting, tasks) == expected
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters["test.pool.calls"] == 2 * len(tasks)
        assert counters.get("runner.pool.spawned", 0) <= 1
        assert counters.get("runner.cells.parallel", 0) == 2 * len(tasks)


class TestStartMethods:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_sim_cells_bit_identical_across_start_methods(self, method):
        cells = [
            SimCell.make(trace, CONFIG, policy, seed=2)
            for policy in ("lru", "fifo")
            for trace in _big_traces()
        ]
        serial = run_sim_cells(cells, jobs=0, memoize=False)
        clear_memo()
        runner = ExperimentRunner(jobs=2, start_method=method)
        parallel = run_sim_cells(cells, runner=runner, memoize=False)
        assert parallel == serial
        assert pool_stats()["start_method"] == method

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_plain_map_and_counters_across_start_methods(self, method):
        runner = ExperimentRunner(jobs=2, start_method=method)
        tasks = list(range(10))
        assert runner.map(_counting, tasks) == [t + 1 for t in tasks]
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters["test.pool.calls"] == len(tasks)
        assert counters["runner.cells.parallel"] == len(tasks)


class TestScopePreload:
    def test_adopt_rows_serves_silently(self):
        service = measuredb.OracleService(_SCOPE)
        digest = measuredb.request_digest((1, 2), (3,))
        service.adopt_rows({digest: 7})
        inner = SimulatedSetOracle(make_policy("lru", 4))
        assert service.query([((1, 2), (3,))], inner)[0] == 7
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters.get("db.hit", 0) == 1
        assert counters.get("db.miss", 0) == 0
        assert "db.preload" not in counters

    def test_preload_scopes_snapshot_matches_db(self, tmp_path):
        measuredb.set_db_dir(tmp_path)
        measuredb.set_db_enabled(True)
        try:
            requests = [((), (lane,)) for lane in range(6)]
            expected = [_query_scope(request) for request in requests]
            measuredb.reset()
            snapshot = measuredb.preload_scopes([_SCOPE])
            assert len(snapshot[_SCOPE]) == len(requests)
            # Adopting the snapshot into a fresh process answers without
            # touching the database again.
            measuredb.reset()
            obs_metrics.DEFAULT.reset()
            measuredb.adopt_scope_rows(snapshot)
            assert [_query_scope(request) for request in requests] == expected
            counters = obs_metrics.DEFAULT.snapshot()["counters"]
            assert counters.get("db.miss", 0) == 0
            assert "db.preload" not in counters
        finally:
            measuredb.set_db_dir(None)
            measuredb.set_db_enabled(False)
            measuredb.reset()

    def test_runner_preload_broadcast_keeps_workers_off_the_db(self, tmp_path):
        measuredb.set_db_dir(tmp_path)
        measuredb.set_db_enabled(True)
        try:
            requests = [((), tuple(range(lane + 1))) for lane in range(8)]
            expected = [_query_scope(request) for request in requests]
            # A "new run" over the same database: memos gone, rows kept.
            measuredb.reset()
            obs_metrics.DEFAULT.reset()
            runner = ExperimentRunner(
                jobs=2, chunk_size=1, preload_scopes=[_SCOPE]
            )
            assert runner.map(_query_scope, requests) == expected
            counters = obs_metrics.DEFAULT.snapshot()["counters"]
            # Every answer came from a memo (parent preload broadcast or
            # a worker's own warm start) — nothing was re-measured.
            assert counters.get("db.miss", 0) == 0
            assert counters.get("db.hit", 0) == len(requests)
            assert counters.get("db.preload", 0) >= len(requests)
        finally:
            measuredb.set_db_dir(None)
            measuredb.set_db_enabled(False)
            measuredb.reset()

    def test_serial_path_preloads_for_parity(self, tmp_path):
        measuredb.set_db_dir(tmp_path)
        measuredb.set_db_enabled(True)
        try:
            requests = [((), (lane,)) for lane in range(4)]
            expected = [_query_scope(request) for request in requests]
            measuredb.reset()
            obs_metrics.DEFAULT.reset()
            runner = ExperimentRunner(preload_scopes=[_SCOPE])
            assert runner.map(_query_scope, requests) == expected
            counters = obs_metrics.DEFAULT.snapshot()["counters"]
            assert counters.get("db.preload", 0) == len(requests)
            assert counters.get("db.miss", 0) == 0
        finally:
            measuredb.set_db_dir(None)
            measuredb.set_db_enabled(False)
            measuredb.reset()
