"""Tests for empirical relative competitiveness."""

import pytest

from repro.cache import CacheConfig
from repro.eval import relative_competitiveness
from repro.workloads import cyclic_loop, random_uniform, zipf


def traces():
    return [
        cyclic_loop(80, 4),
        zipf(100, 3000, seed=1),
        random_uniform(100, 3000, seed=2),
    ]


class TestCompetitiveness:
    def test_self_ratio_is_one(self):
        config = CacheConfig("c", 4096, 4)
        result = relative_competitiveness("lru", "lru", traces(), config)
        assert result.worst_ratio == result.best_ratio == result.geomean_ratio == 1.0

    def test_fifo_vs_lru_bounds(self):
        config = CacheConfig("c", 4096, 4)
        result = relative_competitiveness("fifo", "lru", traces(), config)
        assert result.worst_ratio >= 1.0
        assert result.best_ratio <= result.geomean_ratio <= result.worst_ratio
        assert result.traces_evaluated == 3

    def test_names_recorded(self):
        config = CacheConfig("c", 4096, 4)
        result = relative_competitiveness("plru", "lru", traces(), config)
        assert result.policy == "plru"
        assert result.baseline == "lru"

    def test_cold_misses_always_usable(self):
        # Any non-empty trace gives the baseline at least its cold
        # misses, so a single tiny trace is enough for a defined ratio.
        config = CacheConfig("c", 64 * 1024, 8)
        result = relative_competitiveness("fifo", "lru", [cyclic_loop(4, 2)], config)
        assert result.traces_evaluated == 1

    def test_no_usable_traces_rejected(self):
        config = CacheConfig("c", 4096, 4)
        with pytest.raises(ValueError):
            relative_competitiveness("fifo", "lru", [], config)
