"""Tests for the parallel experiment runner (repro.runner)."""

import os

import pytest

from repro.cache import CacheConfig
from repro.eval import cache_size_sweep, miss_ratio_matrix
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.runner import (
    ExperimentRunner,
    SimCell,
    clear_memo,
    derive_cell_seed,
    memo_size,
    run_sim_cells,
    simulate_cell,
    trace_fingerprint,
)
from repro.util.rng import derive_seed
from repro.workloads import Trace, cyclic_loop, sequential_scan, workload_suite

_PARENT_PID = os.getpid()


def _double(task):
    return task * 2

def _square(task):
    return task * task


def _poisoned_in_worker(task):
    """Succeeds in the parent process, raises in any worker process."""
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("poisoned worker cell")
    return task + 100


def _always_fails(task):
    raise ValueError(f"bad cell {task}")


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


class TestRunnerMap:
    def test_serial_default_preserves_order(self):
        runner = ExperimentRunner()
        assert runner.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert not runner.parallel
        assert [t.source for t in runner.timings] == ["serial"] * 3

    def test_parallel_preserves_order(self):
        runner = ExperimentRunner(jobs=2, chunk_size=2)
        tasks = list(range(11))
        assert runner.map(_square, tasks) == [t * t for t in tasks]
        assert {t.source for t in runner.timings} == {"parallel"}
        assert sorted(t.index for t in runner.timings) == tasks

    def test_single_task_runs_serially_even_with_jobs(self):
        runner = ExperimentRunner(jobs=4)
        assert runner.map(_double, [21]) == [42]
        assert runner.timings[0].source == "serial"

    def test_labels_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner().map(_double, [1, 2], labels=["only-one"])

    def test_progress_hook_sees_every_cell(self):
        seen = []
        runner = ExperimentRunner(progress=seen.append)
        runner.map(_double, [1, 2, 3], labels=["a", "b", "c"])
        assert [t.label for t in seen] == ["a", "b", "c"]

    def test_poisoned_worker_retries_then_falls_back_serially(self):
        runner = ExperimentRunner(jobs=2, chunk_size=1, retries=1)
        assert runner.map(_poisoned_in_worker, [1, 2, 3]) == [101, 102, 103]
        # Every produced value must come from the serial fallback.
        sources = {t.index: t.source for t in runner.timings}
        assert sources == {0: "fallback", 1: "fallback", 2: "fallback"}

    def test_deterministic_task_error_propagates(self):
        runner = ExperimentRunner(jobs=2, retries=0)
        with pytest.raises(ValueError, match="bad cell"):
            runner.map(_always_fails, [1, 2])

    def test_unpicklable_fn_falls_back_serially(self):
        runner = ExperimentRunner(jobs=2, retries=0)
        parent_pid = os.getpid()
        values = runner.map(lambda task: (task, os.getpid()), [1, 2, 3])
        assert [task for task, _pid in values] == [1, 2, 3]
        assert {pid for _task, pid in values} == {parent_pid}


class TestSeedDerivation:
    def test_derive_seed_is_stable(self):
        # Pinned value: the derivation must never depend on PYTHONHASHSEED
        # or the process, or parallel results would diverge from serial.
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert derive_seed(0, "x") != derive_seed(0, "y")
        assert derive_seed(0, "x") != derive_seed(1, "x")
        assert derive_seed(42, "shared") == 3204986149

    def test_derive_cell_seed_multiaxis(self):
        a = derive_cell_seed(7, "noise", 0.01, 3)
        b = derive_cell_seed(7, "noise", 0.01, 4)
        assert a != b
        assert a == derive_cell_seed(7, "noise", 0.01, 3)


class TestSimCells:
    CONFIG = CacheConfig("c", 4096, 4)

    def test_trace_fingerprint_is_content_addressed(self):
        same_a = Trace("a", (64, 128, 192))
        same_b = Trace("b", (64, 128, 192))
        other = Trace("a", (64, 128, 256))
        assert trace_fingerprint(same_a) == trace_fingerprint(same_b)
        assert trace_fingerprint(same_a) != trace_fingerprint(other)

    def test_memoization_hits_on_second_run(self):
        cells = [SimCell.make(cyclic_loop(16, 2), self.CONFIG, "lru")]
        first = run_sim_cells(cells)
        assert memo_size() == 1
        runner = ExperimentRunner()
        second = run_sim_cells(cells, runner=runner)
        assert first == second
        assert [t.source for t in runner.timings] == ["memo"]

    def test_duplicate_cells_run_once(self):
        cell = SimCell.make(cyclic_loop(16, 2), self.CONFIG, "lru")
        runner = ExperimentRunner()
        results = run_sim_cells([cell, cell, cell], runner=runner)
        assert results[0] == results[1] == results[2]
        assert sum(1 for t in runner.timings if t.source == "serial") == 1

    def test_memoize_false_bypasses_cache(self):
        cells = [SimCell.make(cyclic_loop(16, 2), self.CONFIG, "lru")]
        run_sim_cells(cells, memoize=False)
        assert memo_size() == 0

    def test_simulate_cell_matches_direct_simulation(self):
        from repro.eval import simulate_trace

        trace = sequential_scan(64)
        cell = SimCell.make(trace, self.CONFIG, "plru", seed=5)
        assert simulate_cell(cell).stats == simulate_trace(
            trace, self.CONFIG, "plru", seed=5
        )


class TestParallelBitIdentical:
    """The acceptance property: parallel == serial, cell for cell."""

    CONFIG = CacheConfig("L2", 16 * 1024, 8)

    def _traces(self):
        return workload_suite(
            cache_lines=self.CONFIG.num_sets * self.CONFIG.ways, seed=0
        )[:4]

    @pytest.mark.parametrize("policies", [
        ["lru", "fifo", "plru"],           # deterministic
        ["random", "bip", "dip"],          # seeded-random + set-dueling
    ])
    def test_matrix_identical_serial_vs_parallel(self, policies):
        traces = self._traces()
        clear_memo()
        serial = miss_ratio_matrix(traces, self.CONFIG, policies, seed=3)
        clear_memo()
        parallel = miss_ratio_matrix(traces, self.CONFIG, policies, seed=3, jobs=2)
        assert serial == parallel

    def test_sweep_identical_serial_vs_parallel(self):
        trace = cyclic_loop(96, 3)
        serial = cache_size_sweep(trace, [1024, 4096], ["lru", "random"], memoize=False)
        parallel = cache_size_sweep(
            trace, [1024, 4096], ["lru", "random"], jobs=2, memoize=False
        )
        assert serial == parallel


class TestObservabilityMerge:
    """Worker metrics/events are merged back into the parent process."""

    CONFIG = CacheConfig("L2", 16 * 1024, 8)

    def _cells(self):
        traces = workload_suite(
            cache_lines=self.CONFIG.num_sets * self.CONFIG.ways, seed=0
        )[:3]
        return [
            SimCell.make(trace, self.CONFIG, policy, seed=1)
            for policy in ("lru", "plru", "fifo")
            for trace in traces
        ]

    def _run(self, jobs, tracer_include=None):
        obs_metrics.DEFAULT.reset()
        obs_spans.reset()
        clear_memo()
        cells = self._cells()
        labels = [cell.label for cell in cells]
        if tracer_include is not None:
            with obs_trace.tracing(include=tracer_include) as tracer:
                ExperimentRunner(jobs=jobs, chunk_size=2).map(
                    simulate_cell, cells, labels=labels
                )
            events = list(tracer.events)
        else:
            ExperimentRunner(jobs=jobs, chunk_size=2).map(
                simulate_cell, cells, labels=labels
            )
            events = []
        return obs_metrics.DEFAULT.snapshot(), events

    def test_parallel_metrics_equal_serial_modulo_timers(self):
        """The acceptance property: --jobs N counters == jobs=0 counters,
        modulo the runner's own scheduling metrics (cell-source splits,
        pool lifecycle, shm transport) and the kernel cache-warmth split
        — persistent workers keep their in-memory automaton caches
        across maps, so hit/load/miss may split differently than in the
        parent while their total stays exact."""
        serial, _ = self._run(jobs=0)
        parallel, _ = self._run(jobs=3)

        def comparable(snapshot):
            counters = {}
            compile_total = 0
            for key, value in snapshot["counters"].items():
                if key.startswith("runner."):
                    continue
                if key.startswith("kernel.compile."):
                    compile_total += value
                    continue
                counters[key] = value
            counters["kernel.compile.total"] = compile_total
            return counters

        assert comparable(serial) == comparable(parallel)
        assert serial["counters"]["runner.cells.serial"] == len(self._cells())
        assert parallel["counters"]["runner.cells.parallel"] == len(self._cells())

        def observation_counts(snapshot):
            return {
                key: value["count"]
                for key, value in snapshot["observations"].items()
                if not key.startswith("runner.chunk.")
            }

        assert observation_counts(serial) == observation_counts(parallel)
        cells = len(self._cells())
        assert serial["observations"]["runner.cell_seconds"]["count"] == cells
        assert parallel["observations"]["runner.cell_seconds"]["count"] == cells

    def test_parallel_trace_matches_serial_event_mix(self):
        # kernel.* events are cache-warmth dependent (a persistent
        # worker's warm automaton cache skips the load/miss events the
        # parent's cold one would emit), so the mix parity covers the
        # logical event families only.
        include = ("runner.", "span.", "oracle.")
        _, serial_events = self._run(jobs=0, tracer_include=include)
        _, parallel_events = self._run(jobs=3, tracer_include=include)

        def mix(events):
            counts = {}
            for event in events:
                counts[event["kind"]] = counts.get(event["kind"], 0) + 1
            return counts

        assert mix(serial_events) == mix(parallel_events)
        seqs = [event["seq"] for event in parallel_events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_worker_spans_nest_under_the_parent_map_span(self):
        _, events = self._run(jobs=3, tracer_include=("span.",))
        starts = [e for e in events if e["kind"] == "span.start"]
        map_span = next(e for e in starts if e["span"] == "runner.map")
        cell_spans = [e for e in starts if e["span"] == "cell"]
        assert len(cell_spans) == len(self._cells())
        assert all(e["parent"] == map_span["id"] for e in cell_spans)
        assert all(e["id"].startswith(map_span["id"] + ".w") for e in cell_spans)
        assert len({e["id"] for e in cell_spans}) == len(cell_spans)

    def test_trace_shard_dir_keeps_per_chunk_files(self, tmp_path):
        obs_metrics.DEFAULT.reset()
        obs_spans.reset()
        clear_memo()
        cells = self._cells()
        with obs_trace.tracing(include=("runner.", "span.")) as tracer:
            runner = ExperimentRunner(
                jobs=3, chunk_size=2, trace_shard_dir=tmp_path / "shards"
            )
            runner.map(simulate_cell, cells, labels=[c.label for c in cells])
        shards = sorted((tmp_path / "shards").glob("shard-*.jsonl"))
        assert shards, "no shard files written"
        shard_events = [
            event for shard in shards for event in obs_trace.read_jsonl(shard)
        ]
        # runner.cell is recorded parent-side; the shards hold the
        # worker-side view of the same work — one "cell" span per cell.
        def cell_spans(events):
            return [
                e for e in events
                if e["kind"] == "span.start" and e["span"] == "cell"
            ]

        assert len(cell_spans(shard_events)) == len(cells)
        assert len(cell_spans(tracer.events)) == len(cells)

    def test_fallback_path_still_counts_every_cell(self):
        obs_metrics.DEFAULT.reset()
        runner = ExperimentRunner(jobs=2, chunk_size=1, retries=1)
        assert runner.map(_poisoned_in_worker, [1, 2, 3]) == [101, 102, 103]
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters["runner.cells.fallback"] == 3
        assert counters["runner.chunk_retries"] >= 3
