"""Tests for spec derivation, equivalence and canonicalisation."""

import pytest

from repro.core.permutation import (
    canonical_form,
    conjugate_equivalent,
    derive_spec_from_policy,
    equivalent,
    specs_equivalent,
    standard_miss_perm,
)
from repro.policies import (
    BitPlruPolicy,
    FifoPolicy,
    LruPolicy,
    NruPolicy,
    PlruPolicy,
    RandomPolicy,
    SrripPolicy,
    fifo_spec,
    lru_spec,
    make_policy,
)


class TestDerivation:
    def test_lru_derives_to_analytic_spec(self):
        for ways in (2, 3, 4, 6, 8):
            assert derive_spec_from_policy(LruPolicy(ways)) == lru_spec(ways)

    def test_fifo_derives_to_analytic_spec(self):
        for ways in (2, 4, 8):
            assert derive_spec_from_policy(FifoPolicy(ways)) == fifo_spec(ways)

    def test_plru_is_a_permutation_policy(self):
        # The RTAS 2013 lemma, checked computationally.
        for ways in (2, 4, 8, 16):
            assert derive_spec_from_policy(PlruPolicy(ways)) is not None

    def test_plru2_equals_lru2(self):
        assert derive_spec_from_policy(PlruPolicy(2)) == lru_spec(2)

    def test_age_policies_are_not_standard_miss(self):
        for policy in (BitPlruPolicy(4), NruPolicy(4), SrripPolicy(4),
                       make_policy("qlru_h00_m1", 4)):
            assert derive_spec_from_policy(policy) is None

    def test_plru_spec_predicts_plru(self):
        # Round trip through the CacheSet on a fresh random trace.
        import random

        from repro.cache.set import CacheSet
        from repro.policies import PermutationPolicy

        spec = derive_spec_from_policy(PlruPolicy(4))
        rng = random.Random(42)
        reference = CacheSet(4, PlruPolicy(4))
        candidate = CacheSet(4, PermutationPolicy(4, spec))
        # Align through a full thrash + establishment (steady state).
        for block in list(range(100, 104)) + list(range(4)):
            reference.access(block)
            candidate.access(block)
        for _ in range(2000):
            block = rng.randrange(7)
            assert reference.access(block).hit == candidate.access(block).hit


class TestEquivalence:
    def test_reflexive(self):
        assert specs_equivalent(lru_spec(4), lru_spec(4))

    def test_lru_not_fifo(self):
        assert not specs_equivalent(lru_spec(4), fifo_spec(4))
        assert not equivalent(lru_spec(8), fifo_spec(8))

    def test_conjugates_are_equivalent(self):
        spec = lru_spec(4)
        relabeled = spec.conjugate((2, 0, 1, 3))
        assert specs_equivalent(spec, relabeled)
        assert conjugate_equivalent(spec, relabeled)

    def test_different_ways_not_equivalent(self):
        assert not specs_equivalent(lru_spec(2), lru_spec(4))
        assert not equivalent(lru_spec(2), lru_spec(4))

    def test_plru_neither_lru_nor_fifo(self):
        plru = derive_spec_from_policy(PlruPolicy(4))
        assert not specs_equivalent(plru, lru_spec(4))
        assert not specs_equivalent(plru, fifo_spec(4))

    def test_equivalent_uses_fallbacks_for_large_ways(self):
        spec = lru_spec(16)
        relabeled = spec.conjugate(tuple(list(range(14, -1, -1)) + [15]))
        assert equivalent(spec, relabeled)


class TestCanonicalForm:
    def test_idempotent(self):
        spec = lru_spec(4)
        assert canonical_form(canonical_form(spec)) == canonical_form(spec)

    def test_conjugates_share_canonical_form(self):
        spec = derive_spec_from_policy(PlruPolicy(4))
        relabeled = spec.conjugate((1, 2, 0, 3))
        assert canonical_form(spec) == canonical_form(relabeled)

    def test_distinct_policies_distinct_canonical_forms(self):
        assert canonical_form(lru_spec(4)) != canonical_form(fifo_spec(4))

    def test_large_ways_passthrough(self):
        spec = lru_spec(16)
        assert canonical_form(spec) == spec


class TestStandardMissPerm:
    def test_shape(self):
        assert standard_miss_perm(4) == (1, 2, 3, 0)
        assert standard_miss_perm(2) == (1, 0)
