"""Tests for SRRIP / BRRIP / DRRIP."""

from repro.cache.set import CacheSet
from repro.policies import BrripPolicy, DrripPolicy, SrripPolicy
from repro.util.rng import SeededRng


class TestSrrip:
    def test_insertion_is_long_not_distant(self):
        policy = SrripPolicy(4)
        cache_set = CacheSet(4, policy)
        cache_set.access(1)
        assert policy.state_key()[0] == policy.rrpv_max - 1

    def test_hit_promotes_to_zero(self):
        policy = SrripPolicy(4)
        cache_set = CacheSet(4, policy)
        cache_set.access(1)
        cache_set.access(1)
        assert policy.state_key()[0] == 0

    def test_victim_is_leftmost_max(self):
        policy = SrripPolicy(4)
        # Ages: 3, 2, 3, 1 -> victim must be way 0.
        policy._rrpv = [3, 2, 3, 1]
        assert policy.evict() == 0

    def test_aging_when_no_max(self):
        policy = SrripPolicy(4)
        policy._rrpv = [0, 1, 2, 2]
        victim = policy.evict()
        assert victim in (2, 3)
        assert policy._rrpv == [1, 2, 3, 3]

    def test_scan_resistance(self):
        # A resident block with RRPV 0 survives a short scan that a
        # 2-bit SRRIP inserts at RRPV 2.
        policy = SrripPolicy(4)
        cache_set = CacheSet(4, policy)
        cache_set.access(1)
        cache_set.access(1)  # RRPV 0
        for tag in (10, 11, 12, 13, 14):
            cache_set.access(tag)
        assert cache_set.access(1).hit

    def test_configurable_width(self):
        policy = SrripPolicy(4, rrpv_bits=3)
        assert policy.rrpv_max == 7


class TestBrrip:
    def test_epsilon_zero_always_distant(self):
        policy = BrripPolicy(4, rng=SeededRng(0), epsilon=0.0)
        cache_set = CacheSet(4, policy)
        cache_set.access(1)
        assert policy._rrpv[0] == policy.rrpv_max

    def test_epsilon_one_equals_srrip_insertion(self):
        policy = BrripPolicy(4, rng=SeededRng(0), epsilon=1.0)
        cache_set = CacheSet(4, policy)
        cache_set.access(1)
        assert policy._rrpv[0] == policy.rrpv_max - 1

    def test_randomized_flag(self):
        assert BrripPolicy.DETERMINISTIC is False
        assert BrripPolicy(4).state_key() is None


class TestDrrip:
    def test_standalone_runs(self):
        policy = DrripPolicy(4, rng=SeededRng(0))
        cache_set = CacheSet(4, policy)
        for tag in range(30):
            cache_set.access(tag % 7)
        assert len(cache_set.resident_tags()) == 4

    def test_leader_sets_fixed(self):
        shared = DrripPolicy.create_shared(64, SeededRng(0))
        controller = shared.controller
        primaries = [s for s in range(64) if controller.is_primary_leader(s)]
        secondaries = [s for s in range(64) if controller.is_secondary_leader(s)]
        assert primaries and secondaries
        assert not set(primaries) & set(secondaries)

    def test_clone_shares_context(self):
        policy = DrripPolicy(4, rng=SeededRng(0))
        copy = policy.clone()
        assert copy._shared is policy._shared
