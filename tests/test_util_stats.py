"""Tests for repro.util.stats."""

import math

import pytest

from repro.util.stats import geomean, mean, median, stdev, summarize


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestGeomean:
    def test_basic(self):
        assert math.isclose(geomean([1, 4]), 2.0)
        assert math.isclose(geomean([2, 2, 2]), 2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2

    def test_even(self):
        assert median([4, 1, 3, 2]) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])


class TestStdev:
    def test_constant_is_zero(self):
        assert stdev([5, 5, 5]) == 0.0

    def test_short_sequences(self):
        assert stdev([]) == 0.0
        assert stdev([1]) == 0.0

    def test_known_value(self):
        assert math.isclose(stdev([2, 4, 4, 4, 5, 5, 7, 9]), 2.138, rel_tol=1e-3)


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_str_contains_stats(self):
        text = str(summarize([1.0, 2.0]))
        assert "n=2" in text and "mean=" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
