"""Tests for the QLRU family."""

import pytest

from repro.cache.set import CacheSet
from repro.errors import ConfigurationError
from repro.policies import QlruPolicy, SrripPolicy
from repro.policies.qlru import HIT_FUNCTIONS, qlru_variants


class TestConstruction:
    def test_rejects_bad_hit_map(self):
        with pytest.raises(ConfigurationError):
            QlruPolicy(4, hit_map=(0, 1, 2))  # wrong length
        with pytest.raises(ConfigurationError):
            QlruPolicy(4, hit_map=(0, 1, 2, 4))  # out of range

    def test_rejects_bad_insert_age(self):
        with pytest.raises(ConfigurationError):
            QlruPolicy(4, insert_age=5)

    def test_rejects_bad_rules(self):
        with pytest.raises(ConfigurationError):
            QlruPolicy(4, victim_rule="middle")
        with pytest.raises(ConfigurationError):
            QlruPolicy(4, aging_rule="never")

    def test_variant_name(self):
        policy = QlruPolicy(4, hit_map=HIT_FUNCTIONS["h11"], insert_age=1)
        assert policy.variant_name == "qlru_h11_m1_r0_u0"


class TestBehaviour:
    def test_h00_m2_matches_srrip(self):
        # QLRU with hit->0, insert 2, leftmost-max victim and to-max aging
        # is behaviourally identical to 2-bit SRRIP by construction.
        import random

        rng = random.Random(0)
        qlru_set = CacheSet(4, QlruPolicy(4, hit_map=HIT_FUNCTIONS["h00"], insert_age=2))
        srrip_set = CacheSet(4, SrripPolicy(4))
        for _ in range(2000):
            tag = rng.randrange(7)
            assert qlru_set.access(tag).hit == srrip_set.access(tag).hit

    def test_insert_age_changes_behaviour(self):
        import random

        rng = random.Random(0)
        trace = [rng.randrange(7) for _ in range(500)]
        outcomes = []
        for insert_age in (0, 2, 3):
            cache_set = CacheSet(4, QlruPolicy(4, insert_age=insert_age))
            outcomes.append(tuple(cache_set.access(t).hit for t in trace))
        assert len(set(outcomes)) > 1

    def test_hit_function_applies(self):
        policy = QlruPolicy(4, hit_map=HIT_FUNCTIONS["h21"], insert_age=3)
        cache_set = CacheSet(4, policy)
        cache_set.access(1)  # inserted at age 3
        cache_set.access(1)  # hit: age 3 -> 1 under h21
        assert policy.state_key()[0] == 1

    def test_rightmost_victim_rule(self):
        policy = QlruPolicy(4, victim_rule="rightmost")
        policy._ages = [3, 1, 3, 2]
        assert policy.evict() == 2

    def test_single_aging_rule(self):
        policy = QlruPolicy(4, aging_rule="single")
        policy._ages = [0, 1, 1, 0]
        policy.evict()
        assert max(policy._ages) == 3

    def test_reset(self):
        policy = QlruPolicy(4)
        policy.fill(0)
        policy.reset()
        assert policy.state_key() == (3, 3, 3, 3)


class TestVariants:
    def test_registry_presets_constructible(self):
        variants = qlru_variants()
        assert len(variants) == len(HIT_FUNCTIONS) * 4
        for kwargs in variants.values():
            QlruPolicy(4, **kwargs)
