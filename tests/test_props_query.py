"""Property-based tests for the query DSL.

The key property: run_query's per-probe outcomes agree with a direct
simulation of the full access sequence, for random queries and several
policies — the replay semantics must be exactly "the state produced by
the prefix".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set import CacheSet
from repro.core import SimulatedSetOracle
from repro.core.query import parse_query, run_query
from repro.policies import get

policy_names = st.sampled_from(["lru", "fifo", "plru", "bitplru", "srrip"])


@st.composite
def queries(draw):
    length = draw(st.integers(min_value=1, max_value=20))
    tokens = []
    for _ in range(length):
        token = draw(st.sampled_from(["a", "b", "c", "d", "e", "@"]))
        if draw(st.booleans()):
            token += "?"
        tokens.append(token)
    return " ".join(tokens)


@given(name=policy_names, text=queries())
@settings(max_examples=120, deadline=None)
def test_run_query_matches_direct_simulation(name, text):
    query = parse_query(text)
    oracle = SimulatedSetOracle(get(name, 4))
    reported = run_query(oracle, text)

    cache_set = CacheSet(4, get(name, 4))
    expected = []
    for position, block in enumerate(query.blocks):
        hit = cache_set.access(block).hit
        if position in query.probed:
            expected.append((query.names[position], position, hit))
    assert [
        (outcome.name, outcome.position, outcome.hit)
        for outcome in reported.outcomes
    ] == expected
    assert reported.miss_count == sum(1 for _, _, hit in expected if not hit)


@given(text=queries(), count=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_repetition_expansion_length(text, count):
    base = parse_query(text)
    repeated = parse_query(f"{count}*( {text} )")
    assert len(repeated.blocks) == count * len(base.blocks)
