"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import format_markdown_table, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert len({len(line) for line in lines}) <= 2  # consistent widths

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["x", "y"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])
