"""Tests for the simulated platform, counters and noise."""

import pytest

from repro.cache import CacheConfig
from repro.errors import MeasurementError
from repro.hardware import (
    HardwarePlatform,
    LevelSpec,
    NoiseModel,
    ProcessorSpec,
    get_processor,
)


def tiny_processor(noise=NoiseModel()):
    return ProcessorSpec(
        name="tiny",
        description="test-only",
        levels=(
            LevelSpec(CacheConfig("L1", 1024, 2), "lru"),
            LevelSpec(CacheConfig("L2", 4096, 4), "lru"),
        ),
        noise=noise,
    )


class TestPlatform:
    def test_boot_and_load(self):
        platform = HardwarePlatform(tiny_processor())
        buffer = platform.allocate(1 << 16)
        platform.load(buffer.base)
        assert platform.loads_performed == 1
        assert platform.counters.read("L1", "miss") == 1
        platform.load(buffer.base)
        assert platform.counters.read("L1", "hit") == 1

    def test_wbinvd_flushes(self):
        platform = HardwarePlatform(tiny_processor())
        buffer = platform.allocate(1 << 16)
        platform.load(buffer.base)
        platform.wbinvd()
        platform.load(buffer.base)
        assert platform.counters.read("L1", "miss") == 2

    def test_level_configs_published(self):
        platform = HardwarePlatform(tiny_processor())
        assert [c.name for c in platform.level_configs] == ["L1", "L2"]
        assert platform.level_config("L2").ways == 4

    def test_counters_reject_unknown(self):
        platform = HardwarePlatform(tiny_processor())
        with pytest.raises(MeasurementError):
            platform.counters.read("L1", "tlb")
        with pytest.raises(MeasurementError):
            platform.counters.read("L7", "miss")

    def test_snapshot_delta(self):
        platform = HardwarePlatform(tiny_processor())
        buffer = platform.allocate(1 << 16)
        platform.load(buffer.base)
        before = platform.counters.snapshot()
        platform.load(buffer.base + 64)
        assert platform.counters.delta("L1", "miss", before) == 1
        assert platform.counters.delta("L1", "access", before) == 1

    def test_delta_missing_key_raises_measurement_error(self):
        # Regression: a snapshot lacking the (level, event) key used to
        # escape as a raw KeyError, violating the module's contract that
        # measurement failures surface as MeasurementError.
        platform = HardwarePlatform(tiny_processor())
        with pytest.raises(MeasurementError, match="snapshot"):
            platform.counters.delta("L1", "miss", {})
        partial = {("L2", "miss"): 0}
        with pytest.raises(MeasurementError):
            platform.counters.delta("L1", "miss", partial)


class TestNoise:
    def test_counter_noise_overcounts(self):
        noisy = HardwarePlatform(tiny_processor(NoiseModel(counter_noise_rate=0.5)))
        quiet = HardwarePlatform(tiny_processor())
        buffer_noisy = noisy.allocate(1 << 16)
        buffer_quiet = quiet.allocate(1 << 16)
        for i in range(500):
            noisy.load(buffer_noisy.base + (i % 4) * 64)
            quiet.load(buffer_quiet.base + (i % 4) * 64)
        assert noisy.counters.read("L1", "miss") > quiet.counters.read("L1", "miss")

    def test_noise_is_seed_deterministic(self):
        spec = tiny_processor(NoiseModel(counter_noise_rate=0.2))
        readings = []
        for _ in range(2):
            platform = HardwarePlatform(spec, seed=9)
            buffer = platform.allocate(1 << 16)
            for i in range(200):
                platform.load(buffer.base + (i % 8) * 64)
            readings.append(platform.counters.read("L1", "miss"))
        assert readings[0] == readings[1]

    def test_prefetch_noise_issues_extra_accesses(self):
        platform = HardwarePlatform(tiny_processor(NoiseModel(prefetch_rate=1.0)))
        buffer = platform.allocate(1 << 16)
        platform.load(buffer.base)
        # The prefetch touched the next line: accessing it now hits.
        before = platform.counters.snapshot()
        platform.load(buffer.base + 64)
        assert platform.counters.delta("L1", "hit", before) == 1

    def test_noise_model_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            NoiseModel(counter_noise_rate=1.5)
        with pytest.raises(ConfigurationError):
            NoiseModel(prefetch_rate=-0.1)

    def test_silent_property(self):
        assert NoiseModel().silent
        assert not NoiseModel(counter_noise_rate=0.01).silent


class TestCatalog:
    def test_all_processors_boot(self):
        from repro.hardware import PROCESSORS

        for name in PROCESSORS:
            platform = HardwarePlatform(get_processor(name))
            buffer = platform.allocate(1 << 20)
            platform.load(buffer.base)

    def test_ground_truth_exposed(self):
        spec = get_processor("nehalem-like")
        assert spec.ground_truth == {"L1": "plru", "L2": "plru", "L3": "nru"}

    def test_level_lookup(self):
        spec = get_processor("atom-d525-like")
        assert spec.level("L2").policy == "fifo"
        with pytest.raises(KeyError):
            spec.level("L3")

    def test_unknown_processor(self):
        with pytest.raises(KeyError, match="known"):
            get_processor("pentium-pro")


class TestBackgroundNoise:
    def test_background_disturbs_state(self):
        # With heavy background traffic the caches hold lines nobody
        # loaded through the measurement API.
        platform = HardwarePlatform(
            tiny_processor(NoiseModel(background_rate=1.0)), seed=4
        )
        buffer = platform.allocate(1 << 16)
        for i in range(200):
            platform.load(buffer.base + (i % 4) * 64)
        resident = platform.hierarchy.level("L2").resident_addresses()
        loaded = {platform.translate(buffer.base + k * 64) for k in range(4)}
        assert resident - loaded  # foreign lines present

    def test_background_not_counted_as_demand(self):
        platform = HardwarePlatform(
            tiny_processor(NoiseModel(background_rate=1.0)), seed=4
        )
        buffer = platform.allocate(1 << 16)
        for i in range(100):
            platform.load(buffer.base)
        # Exactly our 100 demand accesses are visible in the counters.
        assert platform.counters.read("L1", "access") == 100

    def test_voting_survives_light_background_noise(self):
        from repro.core import VotingOracle, reverse_engineer
        from repro.core.inference import InferenceConfig
        from repro.hardware import HardwareSetOracle

        spec = ProcessorSpec(
            name="bg-noisy",
            description="PLRU L1 with background traffic",
            levels=(LevelSpec(CacheConfig("L1", 4 * 1024, 4), "plru"),),
            noise=NoiseModel(background_rate=0.001),
        )
        platform = HardwarePlatform(spec, seed=5)
        oracle = VotingOracle(
            HardwareSetOracle(platform, "L1", max_blocks=96),
            repetitions=7,
            aggregate="min",
        )
        config = InferenceConfig(verify_sequences=8, verify_length=40, verify_window=4)
        finding = reverse_engineer(oracle, inference_config=config)
        assert finding.policy_name == "plru"
