"""Tests for the evict/fill predictability metrics."""

import pytest

from repro.core.permutation import derive_spec_from_policy
from repro.eval.predictability import (
    collapse_depth_spec,
    evict_metric_policy,
    evict_metric_spec,
    predictability_of_policy,
    predictability_of_spec,
    reachable_full_states,
)
from repro.policies import (
    BitPlruPolicy,
    FifoPolicy,
    LruPolicy,
    NruPolicy,
    PlruPolicy,
    RandomPolicy,
    fifo_spec,
    lru_spec,
)


class TestEvictKnownValues:
    """The literature values (Reineke et al.) as ground truth."""

    @pytest.mark.parametrize("ways", [2, 4, 8])
    def test_lru_is_ways(self, ways):
        assert evict_metric_spec(lru_spec(ways)) == ways

    @pytest.mark.parametrize("ways", [2, 4, 8])
    def test_fifo_is_2k_minus_1(self, ways):
        assert evict_metric_spec(fifo_spec(ways)) == 2 * ways - 1

    @pytest.mark.parametrize("ways,expected", [(2, 2), (4, 5), (8, 13)])
    def test_plru_formula(self, ways, expected):
        # evict(PLRU, k) = (k/2) * log2(k) + 1
        spec = derive_spec_from_policy(PlruPolicy(ways))
        assert evict_metric_spec(spec) == expected

    def test_spec_and_policy_paths_agree(self):
        for policy, spec in ((LruPolicy(4), lru_spec(4)), (FifoPolicy(4), fifo_spec(4))):
            assert evict_metric_policy(policy) == evict_metric_spec(spec)


class TestFill:
    def test_fill_is_evict_plus_ways_for_standard_miss(self):
        result = predictability_of_spec("lru", lru_spec(4))
        assert result.fill == result.evict + 4

    def test_collapse_depth_standard(self):
        assert collapse_depth_spec(lru_spec(8)) == 8

    def test_one_bit_policies_never_collapse(self):
        for policy in (BitPlruPolicy(4), NruPolicy(4)):
            result = predictability_of_policy(policy.NAME, policy)
            assert result.evict is not None
            assert result.fill is None


class TestPolicyPathDispatch:
    def test_permutation_policies_use_spec_path(self):
        # Way-symmetric policies must not be punished by way-labeled
        # collapse: LRU's fill is finite.
        result = predictability_of_policy("lru", LruPolicy(4))
        assert result.fill == 8

    def test_random_is_unbounded(self):
        result = predictability_of_policy("random", RandomPolicy(4))
        assert result.evict is None and result.fill is None


class TestReachableStates:
    def test_lru_reaches_all_orders(self):
        states = reachable_full_states(LruPolicy(3))
        assert len(states) == 6  # 3! recency orders

    def test_plru_reaches_all_bit_patterns(self):
        states = reachable_full_states(PlruPolicy(4))
        assert len(states) == 8  # 2^3 tree-bit patterns

    def test_budget_enforced(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            reachable_full_states(LruPolicy(8), max_states=10)
