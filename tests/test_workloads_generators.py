"""Tests for elementary trace generators."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    cyclic_loop,
    hot_cold,
    pointer_chase,
    random_uniform,
    sequential_scan,
    strided,
    zipf,
)


class TestSequentialScan:
    def test_length_and_footprint(self):
        trace = sequential_scan(10, passes=3)
        assert len(trace) == 30
        assert trace.footprint_lines == 10

    def test_line_granular(self):
        trace = sequential_scan(4)
        assert list(trace) == [0, 64, 128, 192]

    def test_base_offset(self):
        trace = sequential_scan(2, base=1 << 20)
        assert trace.addresses[0] == 1 << 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sequential_scan(0)


class TestCyclicLoop:
    def test_is_repeated_scan(self):
        loop = cyclic_loop(5, iterations=4)
        scan = sequential_scan(5, passes=4)
        assert loop.addresses == scan.addresses


class TestRandomUniform:
    def test_deterministic_by_seed(self):
        assert random_uniform(10, 100, seed=5) == random_uniform(10, 100, seed=5)
        assert random_uniform(10, 100, seed=5) != random_uniform(10, 100, seed=6)

    def test_footprint_bounded(self):
        trace = random_uniform(8, 500)
        assert trace.footprint_lines <= 8


class TestZipf:
    def test_skew(self):
        trace = zipf(100, 5000, alpha=1.2, seed=0)
        from collections import Counter

        counts = Counter(trace.addresses)
        ranked = [count for _, count in counts.most_common()]
        # The most popular line dominates the tail.
        assert ranked[0] > 5 * ranked[-1]

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            zipf(10, 10, alpha=0)


class TestStrided:
    def test_wraps_in_footprint(self):
        trace = strided(3, 10, footprint_lines=7)
        lines = [a // 64 for a in trace]
        assert all(0 <= line < 7 for line in lines)
        assert lines[0] == 0 and lines[1] == 3 and lines[2] == 6 and lines[3] == 2


class TestPointerChase:
    def test_cycle_revisits_every_n(self):
        trace = pointer_chase(10, 40, seed=1)
        lines = [a // 64 for a in trace]
        assert lines[0] == lines[10] == lines[20]
        assert len(set(lines[:10])) == 10  # a full permutation per lap


class TestHotCold:
    def test_hot_set_dominates(self):
        trace = hot_cold(4, 100, 2000, hot_fraction=0.9, seed=0)
        hot_accesses = sum(1 for a in trace if a // 64 < 4)
        assert hot_accesses > 0.8 * len(trace)

    def test_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            hot_cold(4, 10, 10, hot_fraction=1.0)
