"""Unit tests for the compiled policy-automaton kernel (repro.kernels)."""

import pytest

from repro.cache import Cache, CacheConfig
from repro.cache.set import CacheSet
from repro.core import SimulatedSetOracle
from repro.errors import KernelUnsupported
from repro.kernels import (
    DEFAULT_BUDGET,
    clear_compile_cache,
    compile_policy,
    compiled_for,
    compiled_for_factory,
    compiled_for_spec,
    count_misses_kernel,
    count_misses_preloaded,
    kernel_allowed,
    kernel_disabled,
    kernel_enabled,
    mark_factory_unsupported,
    mark_spec_unsupported,
    mark_unsupported,
    sequence_hits,
    set_kernel_enabled,
    simulate_sequence,
    try_simulate_trace,
)
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.policies import LruPolicy, RandomPolicy, lru_spec, make_policy
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Compilation caches are process-global; isolate every test."""
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestCompilePolicy:
    def test_compile_from_instance(self):
        compiled = compile_policy(LruPolicy(4))
        assert compiled.ways == 4
        assert compiled.num_states == 1  # lazy: only the reset state so far

    def test_compile_from_name(self):
        assert compile_policy("fifo", 4).ways == 4

    def test_compile_from_name_needs_ways(self):
        with pytest.raises(KernelUnsupported):
            compile_policy("lru")

    def test_compile_from_spec(self):
        compiled = compile_policy(lru_spec(4))
        assert compiled.ways == 4

    def test_ways_mismatch_rejected(self):
        with pytest.raises(KernelUnsupported):
            compile_policy(LruPolicy(4), ways=8)

    def test_randomized_policy_unsupported(self):
        with pytest.raises(KernelUnsupported):
            compile_policy(RandomPolicy(4))
        with pytest.raises(KernelUnsupported):
            compile_policy("dip", 4)

    def test_expand_all_closes_the_automaton(self):
        # Small closed-form state spaces: LRU reaches every permutation
        # of its recency stack, tree PLRU every setting of ways-1 bits.
        assert compile_policy("lru", 3).expand_all() == 6
        assert compile_policy("plru", 4).expand_all() == 8
        compiled = compile_policy("fifo", 3)
        total = compiled.expand_all()
        assert total == compiled.num_states
        assert all(entry >= 0 for entry in compiled.hit_next)
        assert all(entry >= 0 for entry in compiled.fill_next)
        assert all(entry >= 0 for entry in compiled.miss_victim)
        assert all(entry >= 0 for entry in compiled.miss_next)

    def test_budget_exceeded_raises(self):
        compiled = compile_policy(LruPolicy(4), budget=3)
        with pytest.raises(KernelUnsupported):
            compiled.expand_all()

    def test_default_budget_bounds_lazy_growth(self):
        compiled = compile_policy(LruPolicy(4))
        assert compiled.budget == DEFAULT_BUDGET


class TestCompileCaches:
    def test_instance_cache_returns_same_automaton(self):
        policy = LruPolicy(4)
        first = compiled_for(policy)
        assert first is not None
        assert compiled_for(policy) is first

    def test_instance_cache_none_for_randomized(self):
        policy = RandomPolicy(4)
        assert compiled_for(policy) is None
        # The failed probe is remembered, not retried.
        assert compiled_for(policy) is None

    def test_mark_unsupported_stops_retries(self):
        policy = LruPolicy(4)
        assert compiled_for(policy) is not None
        mark_unsupported(policy)
        assert compiled_for(policy) is None

    def test_factory_cache(self):
        first = compiled_for_factory("plru", (), 8)
        assert first is not None
        assert compiled_for_factory("plru", (), 8) is first
        assert compiled_for_factory("random", (), 8) is None
        mark_factory_unsupported("plru", (), 8)
        assert compiled_for_factory("plru", (), 8) is None

    def test_spec_cache(self):
        spec = lru_spec(4)
        first = compiled_for_spec(spec)
        assert first is not None
        assert compiled_for_spec(spec) is first
        mark_spec_unsupported(spec)
        assert compiled_for_spec(spec) is None

    def test_clear_compile_cache(self):
        policy = LruPolicy(4)
        first = compiled_for(policy)
        clear_compile_cache()
        assert compiled_for(policy) is not first


class TestSingleSetEngine:
    def test_count_misses_matches_oracle(self):
        compiled = compile_policy(LruPolicy(2))
        with kernel_disabled():
            oracle = SimulatedSetOracle(LruPolicy(2))
            assert count_misses_kernel(compiled, [], [1, 2, 1]) == oracle.count_misses(
                [], [1, 2, 1]
            )
            assert count_misses_kernel(compiled, [1, 2], [3, 1]) == oracle.count_misses(
                [1, 2], [3, 1]
            )

    def test_sequence_hits_detail(self):
        compiled = compile_policy(LruPolicy(2))
        assert sequence_hits(compiled, [], [1, 2, 1, 3, 2]) == (
            False,
            False,
            True,
            False,
            False,
        )

    def test_simulate_sequence_matches_cache_set(self):
        blocks = [1, 2, 3, 1, 4, 2, 1, 5, 3]
        compiled = compile_policy("plru", 4)
        cache_set = CacheSet(4, make_policy("plru", 4))
        assert simulate_sequence(compiled, blocks) == [
            cache_set.access(block) for block in blocks
        ]

    def test_preloaded_matches_preloaded_set(self):
        tags = [10, 11, 12, 13]
        probe = [14, 10, 15, 11, 12]
        compiled = compile_policy("srrip", 4)
        cache_set = CacheSet(4, make_policy("srrip", 4))
        cache_set.preload(tags)
        expected = sum(1 for block in probe if not cache_set.access(block).hit)
        assert count_misses_preloaded(compiled, tags, probe) == expected

    def test_preloaded_validates_length(self):
        compiled = compile_policy(LruPolicy(4))
        with pytest.raises(KernelUnsupported):
            count_misses_preloaded(compiled, [1, 2], [3])


class TestRouting:
    CONFIG = CacheConfig("tiny", 2 * 1024, 4)  # 8 sets

    def _trace(self):
        return Trace("t", tuple((i % 96) * 64 for i in range(300)))

    def test_enable_disable_switch(self):
        assert kernel_enabled()
        set_kernel_enabled(False)
        try:
            assert not kernel_enabled()
        finally:
            set_kernel_enabled(True)
        with kernel_disabled():
            assert not kernel_enabled()
        assert kernel_enabled()

    def test_try_simulate_trace_respects_disable(self):
        with kernel_disabled():
            assert try_simulate_trace(self._trace(), self.CONFIG, "lru") is None

    def test_try_simulate_trace_respects_active_tracer(self):
        with tracing():
            assert try_simulate_trace(self._trace(), self.CONFIG, "lru") is None

    def test_try_simulate_trace_matches_interpreter(self):
        trace = self._trace()
        stats = try_simulate_trace(trace, self.CONFIG, "lru")
        assert stats is not None
        cache = Cache(self.CONFIG, "lru")
        for address in trace:
            cache.access(address)
        assert stats == cache.stats

    def test_try_simulate_trace_direct_mode_for_randomized(self):
        # Randomized policies cannot compile, but direct mode still
        # fast-paths them — bit-identically, rng draws included.
        trace = self._trace()
        stats = try_simulate_trace(trace, self.CONFIG, "random", seed=3)
        assert stats is not None
        cache = Cache(self.CONFIG, "random", rng=SeededRng(3))
        for address in trace:
            cache.access(address)
        assert stats == cache.stats

    def test_oracle_routing_is_transparent(self):
        setup = list(range(4))
        probe = [5, 0, 6, 1, 2, 7]
        fast = SimulatedSetOracle(make_policy("plru", 4))
        fast_count = fast.count_misses(setup, probe)
        with kernel_disabled():
            slow = SimulatedSetOracle(make_policy("plru", 4))
            assert slow.count_misses(setup, probe) == fast_count
        # Cost metrics are identical in both paths.
        assert fast.measurements == 1
        assert fast.accesses == len(setup) + len(probe)


class TestKernelCounters:
    CONFIG = CacheConfig("tiny", 2 * 1024, 4)  # 8 sets

    def _trace(self):
        return Trace("t", tuple((i % 96) * 64 for i in range(300)))

    def test_kernel_allowed_with_cold_path_tracer(self):
        """A tracer that does not want cache.* events leaves the kernel
        engaged; only per-access fidelity forces the interpreter."""
        assert kernel_allowed()
        with tracing(include=("runner.", "kernel.")):
            assert kernel_allowed()
        with tracing():  # full fidelity wants cache.*
            assert not kernel_allowed()
        with kernel_disabled():
            assert not kernel_allowed()

    def test_trace_mode_flushes_counters(self):
        obs_metrics.DEFAULT.reset()
        stats = try_simulate_trace(self._trace(), self.CONFIG, "lru")
        assert stats is not None
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters["kernel.calls"] == 1
        assert counters["kernel.calls.trace"] == 1
        assert counters["kernel.accesses"] == stats.accesses
        assert counters["kernel.hits"] == stats.hits
        assert counters["kernel.misses"] == stats.misses
        assert counters["kernel.evictions"] == stats.evictions

    def test_direct_mode_flushes_counters(self):
        obs_metrics.DEFAULT.reset()
        stats = try_simulate_trace(self._trace(), self.CONFIG, "random", seed=3)
        assert stats is not None
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters["kernel.calls"] == 1
        assert counters["kernel.calls.direct"] == 1
        assert counters["kernel.accesses"] == stats.accesses

    def test_kernel_run_event_under_cold_path_tracer(self):
        obs_metrics.DEFAULT.reset()
        with tracing(include=("kernel.",)) as tracer:
            stats = try_simulate_trace(self._trace(), self.CONFIG, "lru")
        assert stats is not None
        (event,) = [e for e in tracer.events if e["kind"] == "kernel.run"]
        assert event["mode"] == "trace"
        assert event["policy"] == "lru"
        assert event["hits"] == stats.hits
        assert event["misses"] == stats.misses
        assert event["states"] >= 1
        # Per-state visit detail rides along only when a tracer asked.
        observations = obs_metrics.DEFAULT.snapshot()["observations"]
        assert observations["kernel.state_visits"]["count"] == event["states"]

    def test_state_visit_detail_skipped_without_tracer(self):
        obs_metrics.DEFAULT.reset()
        assert try_simulate_trace(self._trace(), self.CONFIG, "lru") is not None
        snapshot = obs_metrics.DEFAULT.snapshot()
        assert "kernel.state_visits" not in snapshot["observations"]
        assert "kernel.states_visited" not in snapshot["counters"]


class TestCliFlag:
    def test_kernel_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["evaluate", "--policies", "lru"]).kernel is True
        args = parser.parse_args(["evaluate", "--policies", "lru", "--no-kernel"])
        assert args.kernel is False
        infer = ["infer", "--processor", "ivybridge-like"]
        assert parser.parse_args(infer + ["--kernel"]).kernel is True
        assert parser.parse_args(infer + ["--no-kernel"]).kernel is False
