"""Tests for the policy registry and factories."""

import pytest

from repro.errors import ConfigurationError, UnknownPolicyError
from repro.policies import (
    LruPolicy,
    PolicyFactory,
    available,
    available_policies,
    default_policies,
    get,
    get_entry,
    lru_spec,
    make_policy,
    register,
    unregister,
)
from repro.util.rng import SeededRng


class TestRegistry:
    def test_expected_names_present(self):
        names = available_policies()
        for expected in ("lru", "fifo", "plru", "bitplru", "nru", "random",
                         "lip", "bip", "dip", "srrip", "brrip", "drrip",
                         "qlru_h00_m1", "permutation"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownPolicyError):
            make_policy("clairvoyant", 4)

    def test_error_message_lists_known(self):
        with pytest.raises(UnknownPolicyError, match="lru"):
            PolicyFactory("nope")

    def test_every_policy_constructible(self):
        for name in available_policies():
            if name == "permutation":
                policy = make_policy(name, 4, spec=lru_spec(4))
            elif name == "plru":
                policy = make_policy(name, 4)
            else:
                policy = make_policy(name, 4, rng=SeededRng(0))
            assert policy.ways == 4

    def test_permutation_requires_spec(self):
        with pytest.raises(UnknownPolicyError, match="spec"):
            make_policy("permutation", 4)

    def test_deprecated_aliases_delegate(self):
        assert available_policies() == available()
        assert type(make_policy("lru", 4)) is type(get("lru", 4))


class TestRegisterDecorator:
    def test_decorator_registers_and_builds(self):
        @register(name="_test_lru")
        class ProbePolicy(LruPolicy):
            pass

        try:
            assert "_test_lru" in available()
            policy = get("_test_lru", 4)
            assert isinstance(policy, ProbePolicy)
            assert policy.ways == 4
            assert get_entry("_test_lru").cls is ProbePolicy
        finally:
            unregister("_test_lru")
        assert "_test_lru" not in available()

    def test_duplicate_name_rejected(self):
        @register(name="_test_dup")
        class FirstPolicy(LruPolicy):
            pass

        try:
            with pytest.raises(ConfigurationError, match="duplicate"):

                @register(name="_test_dup")
                class SecondPolicy(LruPolicy):
                    pass

        finally:
            unregister("_test_dup")

    def test_rng_and_dueling_exclusive(self):
        with pytest.raises(ConfigurationError):
            register(rng=True, dueling=True)

    def test_tags_select_and_order(self):
        assert available(tag="default-eval") == sorted(default_policies("eval"))
        # Curated groups keep registration order, lru leading.
        assert default_policies("eval")[0] == "lru"
        assert default_policies("predictability")[0] == "lru"

    def test_default_groups_cover_cli_defaults(self):
        assert default_policies("eval") == [
            "lru", "fifo", "plru", "bitplru", "srrip", "random"
        ]
        assert default_policies("predictability") == [
            "lru", "fifo", "plru", "bitplru", "nru"
        ]

    def test_get_rejects_invalid_geometry(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            get("plru", 6)


class TestPolicyFactory:
    def test_build_per_set(self):
        factory = PolicyFactory("lru")
        shared = factory.create_shared(8, SeededRng(0))
        policies = [factory.build(4, i, shared) for i in range(8)]
        assert all(p.ways == 4 for p in policies)
        policies[0].touch(1)
        assert policies[1].state_key() == (0, 1, 2, 3)  # independent state

    def test_dueling_policies_share_context(self):
        factory = PolicyFactory("dip")
        shared = factory.create_shared(16, SeededRng(0))
        a = factory.build(4, 0, shared)
        b = factory.build(4, 1, shared)
        assert a._shared is b._shared

    def test_deterministic_flag(self):
        assert PolicyFactory("lru").deterministic
        assert not PolicyFactory("random").deterministic

    def test_params_forwarded(self):
        factory = PolicyFactory("srrip", rrpv_bits=3)
        policy = factory.build(4)
        assert policy.rrpv_max == 7
