"""Tests for the policy registry and factories."""

import pytest

from repro.errors import UnknownPolicyError
from repro.policies import (
    PolicyFactory,
    available_policies,
    lru_spec,
    make_policy,
)
from repro.util.rng import SeededRng


class TestRegistry:
    def test_expected_names_present(self):
        names = available_policies()
        for expected in ("lru", "fifo", "plru", "bitplru", "nru", "random",
                         "lip", "bip", "dip", "srrip", "brrip", "drrip",
                         "qlru_h00_m1", "permutation"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownPolicyError):
            make_policy("clairvoyant", 4)

    def test_error_message_lists_known(self):
        with pytest.raises(UnknownPolicyError, match="lru"):
            PolicyFactory("nope")

    def test_every_policy_constructible(self):
        for name in available_policies():
            if name == "permutation":
                policy = make_policy(name, 4, spec=lru_spec(4))
            elif name == "plru":
                policy = make_policy(name, 4)
            else:
                policy = make_policy(name, 4, rng=SeededRng(0))
            assert policy.ways == 4

    def test_permutation_requires_spec(self):
        with pytest.raises(UnknownPolicyError, match="spec"):
            make_policy("permutation", 4)


class TestPolicyFactory:
    def test_build_per_set(self):
        factory = PolicyFactory("lru")
        shared = factory.create_shared(8, SeededRng(0))
        policies = [factory.build(4, i, shared) for i in range(8)]
        assert all(p.ways == 4 for p in policies)
        policies[0].touch(1)
        assert policies[1].state_key() == (0, 1, 2, 3)  # independent state

    def test_dueling_policies_share_context(self):
        factory = PolicyFactory("dip")
        shared = factory.create_shared(16, SeededRng(0))
        a = factory.build(4, 0, shared)
        b = factory.build(4, 1, shared)
        assert a._shared is b._shared

    def test_deterministic_flag(self):
        assert PolicyFactory("lru").deterministic
        assert not PolicyFactory("random").deterministic

    def test_params_forwarded(self):
        factory = PolicyFactory("srrip", rrpv_bits=3)
        policy = factory.build(4)
        assert policy.rrpv_max == 7
